//! Property tests for NetLog's central theorem (paper §3.2): for *any*
//! sequence of state-altering control messages applied inside a
//! transaction on *any* pre-existing network state, aborting the
//! transaction restores the network's forwarding state exactly.

use legosdn_netlog::{NetLog, TxMode};
use legosdn_netsim::{Network, SimDuration, Topology};
use legosdn_openflow::prelude::*;
use legosdn_testkit::{forall, Rng};

/// Semantic forwarding state of the whole network: per switch, the set of
/// (match, priority, actions, idle, send_flow_removed) entries plus port
/// admin state. Counters and install times are excluded — they are the
/// acknowledged-imperfect part, handled by the counter-cache.
fn forwarding_state(net: &Network) -> Vec<(u64, Vec<String>, Vec<bool>)> {
    net.switches()
        .map(|sw| {
            let mut entries: Vec<String> = sw
                .table()
                .iter()
                .map(|e| {
                    format!(
                        "{:?}|{}|{:?}|{}|{}",
                        e.mat, e.priority, e.actions, e.idle_timeout, e.send_flow_removed
                    )
                })
                .collect();
            entries.sort();
            let ports: Vec<bool> = sw.ports().map(|p| p.desc.config_down).collect();
            (sw.dpid().0, entries, ports)
        })
        .collect()
}

// ------------------------------------------------------------------
// strategies: operations over a fixed 3-switch network
// ------------------------------------------------------------------

#[derive(Clone, Debug)]
enum Op {
    Add {
        dpid: u64,
        dst: u64,
        priority: u16,
        port: u16,
        idle: u16,
    },
    AddOverwrite {
        dpid: u64,
        dst: u64,
        priority: u16,
        port: u16,
    },
    DeleteExact {
        dpid: u64,
        dst: u64,
        priority: u16,
    },
    DeleteWild {
        dpid: u64,
    },
    Modify {
        dpid: u64,
        dst: u64,
        priority: u16,
        port: u16,
    },
    PortUpDown {
        dpid: u64,
        port: u16,
        down: bool,
    },
}

fn arb_op(rng: &mut Rng) -> Op {
    let dpid = rng.gen_range_inclusive(1u64..=3);
    let dst = rng.gen_range(1u64..6); // small space to force collisions/overwrites
    let priority = *rng.pick(&[100u16, 200, 300]);
    match rng.gen_range(0u32..6) {
        0 => Op::Add {
            dpid,
            dst,
            priority,
            port: rng.gen_range(1u16..4),
            idle: rng.gen_range(0u16..30),
        },
        1 => Op::AddOverwrite {
            dpid,
            dst,
            priority,
            port: rng.gen_range(1u16..4),
        },
        2 => Op::DeleteExact {
            dpid,
            dst,
            priority,
        },
        3 => Op::DeleteWild { dpid },
        4 => Op::Modify {
            dpid,
            dst,
            priority,
            port: rng.gen_range(1u16..4),
        },
        _ => Op::PortUpDown {
            dpid,
            port: rng.gen_range(1u16..4),
            down: rng.gen_bool(0.5),
        },
    }
}

fn op_to_message(op: &Op, net: &Network) -> (DatapathId, Message) {
    let m = |dst: u64| Match::eth_dst(MacAddr::from_index(dst));
    match op {
        Op::Add {
            dpid,
            dst,
            priority,
            port,
            idle,
        } => (
            DatapathId(*dpid),
            Message::FlowMod(
                FlowMod::add(m(*dst))
                    .priority(*priority)
                    .idle_timeout(*idle)
                    .action(Action::Output(PortNo::Phys(*port)))
                    .notify_removed(),
            ),
        ),
        Op::AddOverwrite {
            dpid,
            dst,
            priority,
            port,
        } => (
            DatapathId(*dpid),
            Message::FlowMod(
                FlowMod::add(m(*dst))
                    .priority(*priority)
                    .action(Action::Output(PortNo::Phys(*port))),
            ),
        ),
        Op::DeleteExact {
            dpid,
            dst,
            priority,
        } => (
            DatapathId(*dpid),
            Message::FlowMod(FlowMod::delete_strict(m(*dst), *priority)),
        ),
        Op::DeleteWild { dpid } => (
            DatapathId(*dpid),
            Message::FlowMod(FlowMod::delete(Match::any())),
        ),
        Op::Modify {
            dpid,
            dst,
            priority,
            port,
        } => {
            let mut fm = FlowMod::add(m(*dst))
                .priority(*priority)
                .action(Action::Output(PortNo::Phys(*port)));
            fm.command = FlowModCommand::ModifyStrict;
            (DatapathId(*dpid), Message::FlowMod(fm))
        }
        Op::PortUpDown { dpid, port, down } => {
            let hw = net
                .switch(DatapathId(*dpid))
                .and_then(|s| s.port(*port))
                .map(|p| p.desc.hw_addr)
                .unwrap_or(MacAddr::from_index(0));
            (
                DatapathId(*dpid),
                Message::PortMod(PortMod {
                    port_no: PortNo::Phys(*port),
                    hw_addr: hw,
                    down: *down,
                }),
            )
        }
    }
}

/// Build a network with some pre-existing (non-transactional) state.
fn seeded_network(pre_ops: &[Op]) -> Network {
    let topo = Topology::linear(3, 1);
    let mut net = Network::new(&topo);
    for op in pre_ops {
        let (dpid, msg) = op_to_message(op, &net);
        let _ = net.apply(dpid, &msg);
    }
    // Age the state a little so remaining-timeout arithmetic is exercised.
    net.tick(SimDuration::from_secs(3));
    let _ = net.poll_events();
    net
}

/// THE rollback theorem: abort after arbitrary ops == never applied.
#[test]
fn abort_restores_forwarding_state() {
    forall(256, |rng| {
        let pre = rng.gen_vec(0..10, arb_op);
        let tx_ops = rng.gen_vec(1..15, arb_op);
        let mut net = seeded_network(&pre);
        let baseline = forwarding_state(&net);

        let mut nl = NetLog::new(TxMode::Immediate);
        let mut tx = nl.begin();
        for op in &tx_ops {
            let (dpid, msg) = op_to_message(op, &net);
            let _ = nl.execute(&mut tx, &mut net, dpid, &msg);
        }
        let report = nl.abort(tx, &mut net).unwrap();
        assert_eq!(report.undo_failures, 0, "undo must never fail");
        assert_eq!(forwarding_state(&net), baseline);
    });
}

/// Buffered abort is trivially clean (nothing ever applied).
#[test]
fn buffered_abort_is_invisible() {
    forall(256, |rng| {
        let pre = rng.gen_vec(0..6, arb_op);
        let tx_ops = rng.gen_vec(1..10, arb_op);
        let mut net = seeded_network(&pre);
        let baseline = forwarding_state(&net);
        let mut nl = NetLog::new(TxMode::Buffered);
        let mut tx = nl.begin();
        for op in &tx_ops {
            let (dpid, msg) = op_to_message(op, &net);
            let _ = nl.execute(&mut tx, &mut net, dpid, &msg);
        }
        assert_eq!(
            forwarding_state(&net),
            baseline.clone(),
            "buffer must not touch the net"
        );
        nl.abort(tx, &mut net).unwrap();
        assert_eq!(forwarding_state(&net), baseline);
    });
}

/// Commit in the two modes converges to the same forwarding state for
/// write-only transactions (reads differ — that's the E9 point).
#[test]
fn modes_commit_to_same_state() {
    forall(256, |rng| {
        let tx_ops = rng.gen_vec(1..12, arb_op);
        let mut net_a = seeded_network(&[]);
        let mut nl = NetLog::new(TxMode::Immediate);
        let mut tx = nl.begin();
        for op in &tx_ops {
            let (dpid, msg) = op_to_message(op, &net_a);
            let _ = nl.execute(&mut tx, &mut net_a, dpid, &msg);
        }
        nl.commit(tx, &mut net_a).unwrap();

        let mut net_b = seeded_network(&[]);
        let mut nl = NetLog::new(TxMode::Buffered);
        let mut tx = nl.begin();
        for op in &tx_ops {
            let (dpid, msg) = op_to_message(op, &net_b);
            let _ = nl.execute(&mut tx, &mut net_b, dpid, &msg);
        }
        nl.commit(tx, &mut net_b).unwrap();

        assert_eq!(forwarding_state(&net_a), forwarding_state(&net_b));
    });
}

/// Abort then replaying the same ops non-transactionally equals having
/// committed in the first place (rollback leaves no hidden residue).
#[test]
fn rollback_then_redo_equals_commit() {
    forall(256, |rng| {
        let tx_ops = rng.gen_vec(1..10, arb_op);
        // Path 1: apply in tx, commit.
        let mut net_commit = seeded_network(&[]);
        let mut nl = NetLog::new(TxMode::Immediate);
        let mut tx = nl.begin();
        for op in &tx_ops {
            let (dpid, msg) = op_to_message(op, &net_commit);
            let _ = nl.execute(&mut tx, &mut net_commit, dpid, &msg);
        }
        nl.commit(tx, &mut net_commit).unwrap();

        // Path 2: apply in tx, abort, then redo raw.
        let mut net_redo = seeded_network(&[]);
        let mut nl = NetLog::new(TxMode::Immediate);
        let mut tx = nl.begin();
        for op in &tx_ops {
            let (dpid, msg) = op_to_message(op, &net_redo);
            let _ = nl.execute(&mut tx, &mut net_redo, dpid, &msg);
        }
        nl.abort(tx, &mut net_redo).unwrap();
        for op in &tx_ops {
            let (dpid, msg) = op_to_message(op, &net_redo);
            let _ = net_redo.apply(dpid, &msg);
        }
        assert_eq!(forwarding_state(&net_commit), forwarding_state(&net_redo));
    });
}
