//! NetLog — the network transaction layer (paper §3.2).
//!
//! Bundles the control messages an app emits while processing one event
//! into an atomic, all-or-nothing network transaction. Built on the
//! insight that every state-altering OpenFlow message is invertible given
//! the pre-state it displaced (`legosdn_openflow::inverse`); the engine
//! records inverses as it applies commands and replays them in reverse on
//! abort.
//!
//! The lossy parts of inversion — flow counters and elapsed timeouts — are
//! handled per the paper: restored entries carry their *remaining* hard
//! timeout, and a [`counter_cache::CounterCache`] rewrites statistics
//! replies so restored flows report continuous counters.

pub mod barrier;
pub mod counter_cache;
pub mod engine;

pub use barrier::{Admission, BarrierStats, CommitBarrier, TxTouch};
pub use counter_cache::CounterCache;
pub use engine::{
    CommitReport, NetLog, NetLogStats, RollbackReport, Transaction, TxError, TxId, TxMode,
    TxRecord, TxState,
};
