//! The counter-cache (paper §3.2).
//!
//! Undoing a flow delete is imperfect: re-adding the entry restores the
//! match, actions, and (remaining) timeouts, but a real switch starts the
//! new entry's counters at zero. NetLog therefore "stores the old counter
//! values in a counter-cache and updates the counter value in messages
//! (viz., statistics reply) to the correct one" — the restored entry's
//! counters as reported to apps are `switch_counters + cached_baseline`.

use legosdn_codec::Codec;
use legosdn_openflow::messages::StatsReply;
use legosdn_openflow::prelude::{DatapathId, Match};
use std::collections::VecDeque;

/// A cached counter baseline for one restored flow.
#[derive(Clone, Debug, PartialEq, Eq, Codec)]
struct CacheEntry {
    dpid: DatapathId,
    mat: Match,
    priority: u16,
    packets: u64,
    bytes: u64,
}

/// FIFO-bounded counter cache.
#[derive(Clone, Debug, Codec)]
pub struct CounterCache {
    entries: VecDeque<CacheEntry>,
    capacity: usize,
    /// Lifetime adjustments applied to stats replies.
    pub adjustments: u64,
}

impl Default for CounterCache {
    fn default() -> Self {
        CounterCache {
            entries: VecDeque::new(),
            capacity: 4096,
            adjustments: 0,
        }
    }
}

impl CounterCache {
    /// A cache bounded at `capacity` entries (oldest evicted first).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        CounterCache {
            capacity,
            ..CounterCache::default()
        }
    }

    /// Number of cached baselines.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the cache empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Record (or accumulate onto) a baseline for a restored flow.
    ///
    /// Accumulation matters for repeated rollbacks: if a flow is restored,
    /// accrues more traffic, is deleted and restored again, the baselines
    /// stack.
    pub fn record(
        &mut self,
        dpid: DatapathId,
        mat: &Match,
        priority: u16,
        packets: u64,
        bytes: u64,
    ) {
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|e| e.dpid == dpid && e.priority == priority && e.mat == *mat)
        {
            e.packets += packets;
            e.bytes += bytes;
            return;
        }
        if self.entries.len() >= self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(CacheEntry {
            dpid,
            mat: mat.clone(),
            priority,
            packets,
            bytes,
        });
    }

    /// The baseline for a flow, if cached.
    #[must_use]
    pub fn baseline(&self, dpid: DatapathId, mat: &Match, priority: u16) -> Option<(u64, u64)> {
        self.entries
            .iter()
            .find(|e| e.dpid == dpid && e.priority == priority && e.mat == *mat)
            .map(|e| (e.packets, e.bytes))
    }

    /// Drop the baseline for a flow (it expired or was deleted for real).
    pub fn invalidate(&mut self, dpid: DatapathId, mat: &Match, priority: u16) {
        self.entries
            .retain(|e| !(e.dpid == dpid && e.priority == priority && e.mat == *mat));
    }

    /// Rewrite a statistics reply from `dpid` so restored flows report
    /// continuous counters.
    pub fn adjust_stats_reply(&mut self, dpid: DatapathId, reply: &mut StatsReply) {
        match reply {
            StatsReply::Flow(flows) => {
                for f in flows {
                    if let Some((p, b)) = self.baseline(dpid, &f.mat, f.priority) {
                        f.packet_count += p;
                        f.byte_count += b;
                        self.adjustments += 1;
                    }
                }
            }
            StatsReply::Aggregate {
                packet_count,
                byte_count,
                ..
            } => {
                // Aggregate replies cover all matching flows; fold in every
                // baseline for the switch (an over-approximation only when
                // the request's filter excluded a cached flow — acceptable
                // for a straw-man, per the paper's "undoing a state change
                // is imperfect").
                let (p, b) = self
                    .entries
                    .iter()
                    .filter(|e| e.dpid == dpid)
                    .fold((0u64, 0u64), |(p, b), e| (p + e.packets, b + e.bytes));
                if p > 0 || b > 0 {
                    *packet_count += p;
                    *byte_count += b;
                    self.adjustments += 1;
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legosdn_openflow::messages::FlowEntrySnapshot;
    use legosdn_openflow::prelude::MacAddr;

    fn mat(i: u64) -> Match {
        Match::eth_dst(MacAddr::from_index(i))
    }

    fn snapshot(m: &Match, priority: u16, packets: u64) -> FlowEntrySnapshot {
        FlowEntrySnapshot {
            mat: m.clone(),
            priority,
            cookie: 0,
            idle_timeout: 0,
            hard_timeout: 0,
            remaining_hard: None,
            duration_sec: 0,
            packet_count: packets,
            byte_count: packets * 100,
            send_flow_removed: false,
            actions: vec![],
        }
    }

    #[test]
    fn record_and_baseline() {
        let mut c = CounterCache::default();
        c.record(DatapathId(1), &mat(1), 5, 10, 1000);
        assert_eq!(c.baseline(DatapathId(1), &mat(1), 5), Some((10, 1000)));
        assert_eq!(c.baseline(DatapathId(1), &mat(1), 6), None);
        assert_eq!(c.baseline(DatapathId(2), &mat(1), 5), None);
    }

    #[test]
    fn repeated_restores_accumulate() {
        let mut c = CounterCache::default();
        c.record(DatapathId(1), &mat(1), 5, 10, 1000);
        c.record(DatapathId(1), &mat(1), 5, 7, 700);
        assert_eq!(c.baseline(DatapathId(1), &mat(1), 5), Some((17, 1700)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut c = CounterCache::with_capacity(2);
        c.record(DatapathId(1), &mat(1), 5, 1, 1);
        c.record(DatapathId(1), &mat(2), 5, 2, 2);
        c.record(DatapathId(1), &mat(3), 5, 3, 3);
        assert_eq!(c.len(), 2);
        assert_eq!(
            c.baseline(DatapathId(1), &mat(1), 5),
            None,
            "oldest evicted"
        );
        assert!(c.baseline(DatapathId(1), &mat(3), 5).is_some());
    }

    #[test]
    fn invalidate_removes() {
        let mut c = CounterCache::default();
        c.record(DatapathId(1), &mat(1), 5, 1, 1);
        c.invalidate(DatapathId(1), &mat(1), 5);
        assert!(c.is_empty());
    }

    #[test]
    fn flow_stats_adjusted() {
        let mut c = CounterCache::default();
        c.record(DatapathId(1), &mat(1), 5, 100, 10_000);
        let mut reply = StatsReply::Flow(vec![
            snapshot(&mat(1), 5, 3),  // restored flow: 3 post-restore packets
            snapshot(&mat(2), 5, 50), // unrelated flow
        ]);
        c.adjust_stats_reply(DatapathId(1), &mut reply);
        match reply {
            StatsReply::Flow(flows) => {
                assert_eq!(flows[0].packet_count, 103);
                assert_eq!(flows[0].byte_count, 10_300);
                assert_eq!(flows[1].packet_count, 50, "unrelated untouched");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(c.adjustments, 1);
    }

    #[test]
    fn wrong_switch_not_adjusted() {
        let mut c = CounterCache::default();
        c.record(DatapathId(1), &mat(1), 5, 100, 10_000);
        let mut reply = StatsReply::Flow(vec![snapshot(&mat(1), 5, 3)]);
        c.adjust_stats_reply(DatapathId(2), &mut reply);
        match reply {
            StatsReply::Flow(flows) => assert_eq!(flows[0].packet_count, 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn aggregate_adjusted() {
        let mut c = CounterCache::default();
        c.record(DatapathId(1), &mat(1), 5, 100, 10_000);
        c.record(DatapathId(1), &mat(2), 5, 50, 5_000);
        c.record(DatapathId(2), &mat(3), 5, 9, 900);
        let mut reply = StatsReply::Aggregate {
            packet_count: 1,
            byte_count: 10,
            flow_count: 2,
        };
        c.adjust_stats_reply(DatapathId(1), &mut reply);
        match reply {
            StatsReply::Aggregate {
                packet_count,
                byte_count,
                ..
            } => {
                assert_eq!(packet_count, 151);
                assert_eq!(byte_count, 15_010);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
