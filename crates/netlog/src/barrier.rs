//! Cross-shard commit barrier (DESIGN.md §13).
//!
//! The worker-sharded runtime partitions apps across N workers, but the
//! network and the NetLog are shared, and the determinism contract says
//! the sharded runtime's output must be bit-identical to the sequential
//! reference. Every commit therefore carries a global *position* — the
//! index it would commit at under the sequential reference — and this
//! barrier admits commits in one of three ways:
//!
//! - **Elided**: the position produced no network transaction at all (the
//!   app was unselected, emitted nothing, or was cancelled). It is marked
//!   done without ever synchronizing.
//! - **Ordered**: the default. The committer waits until the barrier
//!   cursor reaches its position — exactly the sequential order.
//! - **Fastpath**: a commit whose declared *touch* provably cannot be
//!   observed out of order — every command is a plain `FlowMod Add`
//!   (no buffered packet to forward, so nothing is enqueued onto the
//!   controller's event queue) and every earlier not-yet-done position is
//!   declared empty or touches a disjoint switch set. Such a commit goes
//!   ahead of the cursor; the transaction id is position-derived so the
//!   txlog still reads in sequential order.
//!
//! Declarations happen after the (slow) stub collect and before any
//! waiting, so `acquire` at position *p* only ever waits on strictly
//! smaller positions — the wait graph is acyclic and the barrier cannot
//! deadlock.
//!
//! Two hazards disable the fastpath outright:
//!
//! - an invariant [checker] inspects live network state at commit time,
//!   so even disjoint-switch commits become observable out of order —
//!   the runtime constructs the barrier with `fastpath_enabled = false`;
//! - a `FlowMod` with `send_flow_removed` installs notify-on-removal
//!   entries, and a later plain Add that *displaces* such an entry would
//!   enqueue a `FlowRemoved` event. Declaring one poisons the fastpath
//!   for the rest of the cycle, and the runtime keeps the poison sticky
//!   across cycles (table entries outlive the cycle that installed them).
//!
//! [checker]: ../legosdn_invariants/index.html

use legosdn_openflow::prelude::DatapathId;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::{Condvar, Mutex};

/// What a transaction at some position will touch, declared before the
/// committer asks for admission.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TxTouch {
    /// No network transaction at this position.
    Empty,
    /// Flow-table writes confined to `dpids`. `add_only` is true only
    /// when every command is a `FlowMod Add` with no buffered packet and
    /// no `send_flow_removed` flag — the class that provably enqueues no
    /// controller events and is therefore fastpath-eligible.
    Flows {
        dpids: Vec<DatapathId>,
        add_only: bool,
    },
    /// Anything else (PacketOut walks the fabric, stats reads, port
    /// mods): effects are not confined to a switch set, so the commit
    /// must run in order.
    Unknown,
}

impl TxTouch {
    fn dpids(&self) -> Option<&[DatapathId]> {
        match self {
            TxTouch::Flows { dpids, .. } => Some(dpids),
            _ => None,
        }
    }
}

/// How the barrier admitted a commit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Admitted at the cursor — sequential order.
    Ordered,
    /// Admitted ahead of the cursor: disjoint add-only commit.
    Fastpath,
}

/// Barrier counters, exported into obs by the runtime after each cycle.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BarrierStats {
    /// Commits admitted ahead of the cursor.
    pub fastpath_commits: u64,
    /// Commits that waited for (or arrived at) the cursor.
    pub ordered_commits: u64,
    /// Positions finished without a transaction (no synchronization).
    pub elided_positions: u64,
    /// Declarations that touched a switch another worker had already
    /// declared this cycle — the contention the tentpole is about.
    pub shared_switch_conflicts: u64,
}

#[derive(Debug)]
struct Decl {
    /// Declaring worker — carried for debug output on barrier disputes.
    #[allow(dead_code)]
    worker: usize,
    touch: TxTouch,
}

#[derive(Debug, Default)]
struct State {
    /// Next position to commit in sequential order. Everything below is
    /// done.
    cursor: u64,
    /// Positions at or above the cursor that finished out of order.
    done: BTreeSet<u64>,
    /// Declared, not-yet-done positions.
    declared: BTreeMap<u64, Decl>,
    /// First worker to declare each switch this cycle, for conflict
    /// accounting.
    owners: HashMap<DatapathId, usize>,
    /// A notify-on-removal flow was declared: plain Adds can no longer be
    /// proven event-silent, so the fastpath is off for the rest of the
    /// cycle.
    poisoned: bool,
    stats: BarrierStats,
}

/// One cycle's commit-ordering barrier, shared by all worker shards.
#[derive(Debug)]
pub struct CommitBarrier {
    state: Mutex<State>,
    cv: Condvar,
    fastpath_enabled: bool,
}

impl CommitBarrier {
    /// A barrier starting at position 0. `fastpath_enabled` must be false
    /// when an invariant checker observes live network state at commit
    /// time, or when notify-on-removal flow entries may already exist in
    /// the network (see the module docs).
    #[must_use]
    pub fn new(fastpath_enabled: bool) -> Self {
        CommitBarrier {
            state: Mutex::new(State::default()),
            cv: Condvar::new(),
            fastpath_enabled,
        }
    }

    /// Declare what the transaction at `pos` will touch. Must be called
    /// (or [`CommitBarrier::finish_empty`] instead) exactly once per
    /// position, before that position's [`CommitBarrier::acquire`] —
    /// other positions' fastpath eligibility waits on it.
    pub fn declare(&self, pos: u64, worker: usize, touch: TxTouch) {
        let mut st = self.state.lock().unwrap();
        if let Some(dpids) = touch.dpids() {
            let mut conflicted = false;
            for d in dpids {
                match st.owners.get(d) {
                    Some(&w) if w != worker => conflicted = true,
                    Some(_) => {}
                    None => {
                        st.owners.insert(*d, worker);
                    }
                }
            }
            if conflicted {
                st.stats.shared_switch_conflicts += 1;
            }
        }
        st.declared.insert(pos, Decl { worker, touch });
        drop(st);
        self.cv.notify_all();
    }

    /// Poison the fastpath for the rest of the cycle: a declared command
    /// installs notify-on-removal entries, so a later plain Add could
    /// displace one and enqueue a `FlowRemoved` out of order.
    pub fn poison_fastpath(&self) {
        self.state.lock().unwrap().poisoned = true;
        self.cv.notify_all();
    }

    /// True once [`CommitBarrier::poison_fastpath`] has been called — the
    /// runtime keeps this sticky across cycles.
    #[must_use]
    pub fn poisoned(&self) -> bool {
        self.state.lock().unwrap().poisoned
    }

    /// Mark `pos` done without a transaction: declares it [`TxTouch::Empty`]
    /// and completes it in one step. Other workers' fastpath checks and
    /// cursor advances see it immediately; the caller never waits.
    pub fn finish_empty(&self, pos: u64) {
        let mut st = self.state.lock().unwrap();
        st.stats.elided_positions += 1;
        Self::complete(&mut st, pos);
        drop(st);
        self.cv.notify_all();
    }

    /// Block until the commit at `pos` may run. [`Admission::Ordered`]
    /// means the cursor reached `pos`; [`Admission::Fastpath`] means every
    /// earlier unfinished position is declared disjoint with this
    /// position's add-only switch set, so committing now is unobservable.
    ///
    /// The caller must have declared `pos` and must call
    /// [`CommitBarrier::release`] afterwards.
    pub fn acquire(&self, pos: u64) -> Admission {
        let mut st = self.state.lock().unwrap();
        loop {
            if st.cursor == pos {
                st.stats.ordered_commits += 1;
                return Admission::Ordered;
            }
            debug_assert!(st.cursor < pos, "position {pos} acquired twice");
            if self.fastpath_enabled && !st.poisoned && Self::fastpath_ok(&st, pos) {
                st.stats.fastpath_commits += 1;
                return Admission::Fastpath;
            }
            st = self.cv.wait(st).unwrap();
        }
    }

    /// True when `pos` is declared add-only and every position in
    /// `[cursor, pos)` is done, declared empty, or declared on a disjoint
    /// switch set.
    fn fastpath_ok(st: &State, pos: u64) -> bool {
        let Some(decl) = st.declared.get(&pos) else {
            return false;
        };
        let TxTouch::Flows { dpids, add_only } = &decl.touch else {
            return false;
        };
        if !add_only {
            return false;
        }
        for q in st.cursor..pos {
            if st.done.contains(&q) {
                continue;
            }
            match st.declared.get(&q) {
                Some(d) => match &d.touch {
                    TxTouch::Empty => {}
                    TxTouch::Flows { dpids: theirs, .. } => {
                        if theirs.iter().any(|d| dpids.contains(d)) {
                            return false;
                        }
                    }
                    TxTouch::Unknown => return false,
                },
                // Not yet declared: its collect is still in flight and we
                // cannot know what it touches.
                None => return false,
            }
        }
        true
    }

    /// Mark `pos` committed and advance the cursor over every contiguous
    /// finished position.
    pub fn release(&self, pos: u64) {
        let mut st = self.state.lock().unwrap();
        Self::complete(&mut st, pos);
        drop(st);
        self.cv.notify_all();
    }

    fn complete(st: &mut State, pos: u64) {
        st.declared.remove(&pos);
        if pos == st.cursor {
            st.cursor += 1;
            while st.done.remove(&st.cursor) {
                st.cursor += 1;
            }
        } else {
            st.done.insert(pos);
        }
    }

    /// Counters so far (the runtime exports them after each cycle).
    #[must_use]
    pub fn stats(&self) -> BarrierStats {
        self.state.lock().unwrap().stats
    }

    /// The current cursor: every position below it is done. The sharded
    /// runtime's extension loop reads this to learn how far the commit
    /// sweep has drained without blocking.
    #[must_use]
    pub fn cursor(&self) -> u64 {
        self.state.lock().unwrap().cursor
    }

    /// Block until the cursor advances past `prev` (i.e. becomes
    /// `> prev`), returning the new cursor. Completes, releases, and
    /// elisions all notify, so a caller that read `cursor() == prev`,
    /// found no other work, and then waits here cannot miss an advance.
    pub fn wait_cursor_past(&self, prev: u64) -> u64 {
        let mut st = self.state.lock().unwrap();
        while st.cursor <= prev {
            st = self.cv.wait(st).unwrap();
        }
        st.cursor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    fn dp(d: u64) -> DatapathId {
        DatapathId(d)
    }

    fn adds(dpids: &[u64]) -> TxTouch {
        TxTouch::Flows {
            dpids: dpids.iter().copied().map(DatapathId).collect(),
            add_only: true,
        }
    }

    #[test]
    fn ordered_commits_advance_the_cursor_in_sequence() {
        let b = CommitBarrier::new(false);
        for pos in 0..4 {
            b.declare(pos, 0, TxTouch::Unknown);
            assert_eq!(b.acquire(pos), Admission::Ordered);
            b.release(pos);
        }
        let s = b.stats();
        assert_eq!(s.ordered_commits, 4);
        assert_eq!(s.fastpath_commits, 0);
    }

    #[test]
    fn elided_positions_let_later_positions_through() {
        let b = CommitBarrier::new(false);
        b.finish_empty(0);
        b.finish_empty(1);
        b.declare(2, 0, TxTouch::Unknown);
        assert_eq!(b.acquire(2), Admission::Ordered);
        b.release(2);
        assert_eq!(b.stats().elided_positions, 2);
    }

    #[test]
    fn out_of_order_elision_still_advances_the_cursor() {
        let b = CommitBarrier::new(false);
        b.finish_empty(1);
        b.finish_empty(2);
        b.declare(3, 0, TxTouch::Unknown);
        b.finish_empty(0); // cursor jumps 0 → 3
        assert_eq!(b.acquire(3), Admission::Ordered);
        b.release(3);
    }

    #[test]
    fn disjoint_add_only_commit_takes_the_fastpath() {
        let b = CommitBarrier::new(true);
        b.declare(0, 0, adds(&[1]));
        b.declare(1, 1, adds(&[2]));
        // Position 1 may pass position 0: both add-only, disjoint dpids.
        assert_eq!(b.acquire(1), Admission::Fastpath);
        b.release(1);
        assert_eq!(b.acquire(0), Admission::Ordered);
        b.release(0);
        // Cursor swallowed both: position 2 is immediately ordered.
        b.declare(2, 0, adds(&[1]));
        assert_eq!(b.acquire(2), Admission::Ordered);
        let s = b.stats();
        assert_eq!(s.fastpath_commits, 1);
        assert_eq!(s.ordered_commits, 2);
    }

    #[test]
    fn overlapping_switch_sets_block_the_fastpath() {
        let b = Arc::new(CommitBarrier::new(true));
        b.declare(0, 0, adds(&[1, 2]));
        b.declare(1, 1, adds(&[2]));
        let order = Arc::new(AtomicUsize::new(0));
        let committed_second = {
            let (b, order) = (Arc::clone(&b), Arc::clone(&order));
            std::thread::spawn(move || {
                // Same dpid 2 → must wait for position 0 to release.
                assert_eq!(b.acquire(1), Admission::Ordered);
                let seen = order.fetch_add(1, Ordering::SeqCst);
                b.release(1);
                seen
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(b.acquire(0), Admission::Ordered);
        assert_eq!(order.fetch_add(1, Ordering::SeqCst), 0, "0 commits first");
        b.release(0);
        assert_eq!(committed_second.join().unwrap(), 1);
        assert_eq!(b.stats().shared_switch_conflicts, 1);
    }

    #[test]
    fn undeclared_earlier_position_blocks_the_fastpath() {
        let b = Arc::new(CommitBarrier::new(true));
        // Position 0's collect is still in flight: nothing declared.
        b.declare(1, 1, adds(&[9]));
        let waiter = {
            let b = Arc::clone(&b);
            std::thread::spawn(move || {
                let adm = b.acquire(1);
                b.release(1);
                adm
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        assert!(!waiter.is_finished(), "must wait for position 0's declare");
        b.declare(0, 0, adds(&[8]));
        // Now disjoint-and-declared: the waiter unblocks on the fastpath.
        assert_eq!(waiter.join().unwrap(), Admission::Fastpath);
    }

    #[test]
    fn non_add_commands_and_disabled_barriers_stay_ordered() {
        let b = CommitBarrier::new(true);
        b.declare(0, 0, TxTouch::Unknown);
        b.declare(
            1,
            1,
            TxTouch::Flows {
                dpids: vec![dp(9)],
                add_only: false,
            },
        );
        b.declare(2, 1, adds(&[9]));
        // Position 2 overlaps position 1 (not add-only) → ordered; and a
        // fastpath-disabled barrier never admits early regardless.
        assert_eq!(b.acquire(0), Admission::Ordered);
        b.release(0);
        assert_eq!(b.acquire(1), Admission::Ordered);
        b.release(1);
        assert_eq!(b.acquire(2), Admission::Ordered);
        b.release(2);

        let off = CommitBarrier::new(false);
        off.declare(0, 0, adds(&[1]));
        off.declare(1, 1, adds(&[2]));
        let t = {
            let done = Arc::new(AtomicUsize::new(0));
            let d2 = Arc::clone(&done);
            let off = Arc::new(off);
            let o2 = Arc::clone(&off);
            let h = std::thread::spawn(move || {
                o2.acquire(1);
                d2.store(1, Ordering::SeqCst);
                o2.release(1);
            });
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(done.load(Ordering::SeqCst), 0, "fastpath disabled");
            off.acquire(0);
            off.release(0);
            h
        };
        t.join().unwrap();
    }

    #[test]
    fn poison_turns_the_fastpath_off_for_the_cycle() {
        let b = CommitBarrier::new(true);
        b.declare(0, 0, adds(&[1]));
        b.declare(1, 1, adds(&[2]));
        b.poison_fastpath();
        assert!(b.poisoned());
        let b = Arc::new(b);
        let waiter = {
            let b = Arc::clone(&b);
            std::thread::spawn(move || {
                let adm = b.acquire(1);
                b.release(1);
                adm
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        assert!(
            !waiter.is_finished(),
            "poisoned barrier admits in order only"
        );
        b.acquire(0);
        b.release(0);
        assert_eq!(waiter.join().unwrap(), Admission::Ordered);
    }

    #[test]
    fn threaded_shards_commit_every_position_exactly_once() {
        // 4 workers × 32 positions each, interleaved ownership, every 3rd
        // position elided, shared dpid every 8th: the cursor must reach
        // the end and admissions must sum to the position count.
        let b = Arc::new(CommitBarrier::new(true));
        let total = 128u64;
        let workers = 4u64;
        let mut handles = Vec::new();
        for w in 0..workers {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                for pos in (w..total).step_by(workers as usize) {
                    if pos % 3 == 0 {
                        b.finish_empty(pos);
                        continue;
                    }
                    let dpid = if pos % 8 == 0 { 1 } else { 100 + pos };
                    b.declare(
                        pos,
                        w as usize,
                        TxTouch::Flows {
                            dpids: vec![DatapathId(dpid)],
                            add_only: true,
                        },
                    );
                    b.acquire(pos);
                    b.release(pos);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = b.stats();
        assert_eq!(
            s.elided_positions + s.ordered_commits + s.fastpath_commits,
            total
        );
        // The cursor consumed everything: the next position is ordered
        // immediately.
        b.declare(total, 0, TxTouch::Unknown);
        assert_eq!(b.acquire(total), Admission::Ordered);
    }
}
