//! Indexed ≡ linear flow-table equivalence (DESIGN.md §14).
//!
//! Drives seeded random flow-mod/packet/expire sequences through the
//! two-tier indexed [`FlowTable`] and the retained [`LinearFlowTable`]
//! reference, asserting after every operation that both report identical
//! outcomes, lookups, stats, expirations, and snapshot filters — and that
//! equal logical state still encodes to byte-identical `Codec` output that
//! survives a decode/re-encode round-trip through the index rebuild.
//!
//! The generators deliberately use tiny value universes so exact matches
//! collide with wildcards, prefixes mask the same networks at different
//! lengths, and same-priority ties exercise the insertion-seq tiebreak.

use legosdn_netsim::{FlowTable, LinearFlowTable, SimDuration, SimTime};
use legosdn_openflow::prelude::{
    Action, EtherType, FlowMod, FlowModCommand, Ipv4Addr, MacAddr, Match, Packet, PortNo, VlanId,
};
use legosdn_testkit::Rng;

fn mac(rng: &mut Rng) -> MacAddr {
    MacAddr::from_index(rng.gen_range(1..5u64))
}

fn ip(rng: &mut Rng) -> Ipv4Addr {
    Ipv4Addr::from_index(rng.gen_range(1..5u32))
}

fn port(rng: &mut Rng) -> PortNo {
    PortNo::Phys(rng.gen_range(1..5u16))
}

fn tport(rng: &mut Rng) -> u16 {
    *rng.pick(&[80, 443, 4000])
}

fn packet(rng: &mut Rng) -> Packet {
    match rng.gen_range(0..5u32) {
        0 => Packet::ethernet(mac(rng), mac(rng)),
        1 => Packet::arp(mac(rng), mac(rng), ip(rng), ip(rng)),
        2 => Packet::icmp(mac(rng), mac(rng), ip(rng), ip(rng)),
        3 => Packet::udp(mac(rng), mac(rng), ip(rng), ip(rng), tport(rng), tport(rng)),
        _ => Packet::tcp(mac(rng), mac(rng), ip(rng), ip(rng), tport(rng), tport(rng)),
    }
}

/// A match drawn to stress both tiers: sometimes a packet's own
/// fully-concrete fingerprint, sometimes that fingerprint with one field
/// widened (dropped or prefix-shortened) so it lands in the wildcard tier
/// while still overlapping the exact population, sometimes sparse.
fn gen_match(rng: &mut Rng) -> Match {
    match rng.gen_range(0..4u32) {
        0 => {
            // Fully concrete (exact tier whenever the packet is TCP/UDP).
            Match::from_packet(&packet(rng), port(rng))
        }
        1 => {
            // Concrete, then widened along one axis.
            let mut m = Match::from_packet(&packet(rng), port(rng));
            match rng.gen_range(0..6u32) {
                0 => m.in_port = None,
                1 => m.eth_src = None,
                2 => m.tp_src = None,
                3 => m.ip_src = m.ip_src.map(|(n, _)| (n, *rng.pick(&[8, 16, 24]))),
                4 => m.ip_dst = m.ip_dst.map(|(n, _)| (n, *rng.pick(&[24, 40]))),
                _ => m.vlan_pcp = None,
            }
            m
        }
        2 => Match::any(),
        _ => {
            // Sparse random fields.
            let mut m = Match::any();
            if rng.gen_bool(0.5) {
                m.eth_dst = Some(mac(rng));
            }
            if rng.gen_bool(0.3) {
                m.in_port = Some(port(rng));
            }
            if rng.gen_bool(0.3) {
                m.eth_type = Some(EtherType::Ipv4);
                m.ip_dst = Some((ip(rng), *rng.pick(&[16, 24, 32])));
            }
            if rng.gen_bool(0.2) {
                m.vlan = Some(*rng.pick(&[VlanId::NONE, VlanId(10)]));
            }
            m
        }
    }
}

fn gen_flow_mod(rng: &mut Rng) -> FlowMod {
    let mut fm = FlowMod::add(gen_match(rng));
    fm.command = *rng.pick(&[
        FlowModCommand::Add,
        FlowModCommand::Add,
        FlowModCommand::Add,
        FlowModCommand::Add,
        FlowModCommand::Modify,
        FlowModCommand::ModifyStrict,
        FlowModCommand::Delete,
        FlowModCommand::DeleteStrict,
    ]);
    fm.priority = *rng.pick(&[1, 5, 5, 9, 100]);
    fm.cookie = rng.gen_range(0..8u64);
    if rng.gen_bool(0.3) {
        fm.idle_timeout = rng.gen_range(1..6u16);
    }
    if rng.gen_bool(0.3) {
        fm.hard_timeout = rng.gen_range(1..10u16);
    }
    fm.send_flow_removed = rng.gen_bool(0.3);
    if matches!(fm.command, FlowModCommand::Add) {
        fm.check_overlap = rng.gen_bool(0.2);
    }
    if matches!(
        fm.command,
        FlowModCommand::Delete | FlowModCommand::DeleteStrict
    ) && rng.gen_bool(0.3)
    {
        fm.out_port = port(rng);
    }
    fm.actions = vec![Action::Output(port(rng))];
    fm
}

fn assert_same_state(indexed: &FlowTable, linear: &LinearFlowTable, ctx: &str) {
    assert_eq!(indexed.len(), linear.len(), "{ctx}: len");
    assert_eq!(indexed.stats(), linear.stats(), "{ctx}: stats");
    let a: Vec<_> = indexed.iter().cloned().collect();
    let b: Vec<_> = linear.iter().cloned().collect();
    assert_eq!(a, b, "{ctx}: entries in table order");
    let ab = legosdn_codec::to_bytes(indexed).unwrap();
    let bb = legosdn_codec::to_bytes(linear).unwrap();
    assert_eq!(ab, bb, "{ctx}: encodings");
    // The index rebuilt from the wire bytes must re-encode identically.
    let back: FlowTable = legosdn_codec::from_bytes(&ab).unwrap();
    assert_eq!(
        legosdn_codec::to_bytes(&back).unwrap(),
        ab,
        "{ctx}: re-encode"
    );
}

fn run_sequence(seed: u64, ops: usize) {
    let mut rng = Rng::seed_from_u64(seed);
    let cap = if rng.gen_bool(0.5) { 0 } else { 24 };
    let mut indexed = FlowTable::with_capacity(cap);
    let mut linear = LinearFlowTable::with_capacity(cap);
    let mut now = SimTime::ZERO;
    for op in 0..ops {
        let ctx = format!("seed {seed} op {op}");
        match rng.gen_range(0..10u32) {
            0..=3 => {
                let fm = gen_flow_mod(&mut rng);
                let a = indexed.apply(&fm, now);
                let b = linear.apply(&fm, now);
                assert_eq!(a, b, "{ctx}: apply {fm:?}");
            }
            4..=6 => {
                let p = packet(&mut rng);
                let in_port = port(&mut rng);
                assert_eq!(
                    indexed.peek(&p, in_port).cloned(),
                    linear.peek(&p, in_port).cloned(),
                    "{ctx}: peek"
                );
                assert_eq!(
                    indexed.lookup(&p, in_port, now).cloned(),
                    linear.lookup(&p, in_port, now).cloned(),
                    "{ctx}: lookup"
                );
            }
            7 => {
                now += SimDuration::from_micros(rng.gen_range(1..3_000_000u64));
                assert_eq!(indexed.expire(now), linear.expire(now), "{ctx}: expire");
            }
            8 => {
                let m = gen_match(&mut rng);
                let op_filter = if rng.gen_bool(0.3) {
                    port(&mut rng)
                } else {
                    PortNo::None
                };
                assert_eq!(
                    indexed.snapshot_matching(&m, op_filter, now),
                    linear.snapshot_matching(&m, op_filter, now),
                    "{ctx}: snapshot_matching"
                );
            }
            _ => {
                let m = gen_match(&mut rng);
                let pri = *rng.pick(&[1, 5, 9, 100]);
                assert_eq!(
                    indexed.restore_counters(&m, pri, 11, 1100),
                    linear.restore_counters(&m, pri, 11, 1100),
                    "{ctx}: restore_counters"
                );
            }
        }
        if op % 25 == 0 || op + 1 == ops {
            assert_same_state(&indexed, &linear, &ctx);
        }
    }
}

#[test]
fn indexed_equals_linear_across_seeds() {
    for seed in 0..32 {
        run_sequence(seed, 400);
    }
}

#[test]
fn indexed_equals_linear_long_haul() {
    // Fewer seeds, longer sequences: deeper tables, more expiry churn.
    for seed in 100..104 {
        run_sequence(seed, 2000);
    }
}
