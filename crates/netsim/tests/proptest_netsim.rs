//! Property tests for the simulator: flow-table laws, dataplane sanity,
//! and determinism.

use legosdn_netsim::{FlowTable, Network, SimDuration, SimTime, Topology};
use legosdn_openflow::prelude::*;
use proptest::prelude::*;

fn arb_match() -> impl Strategy<Value = Match> {
    (proptest::option::of(1u64..6), proptest::option::of(1u64..6), proptest::option::of(1u16..4))
        .prop_map(|(src, dst, in_port)| Match {
            eth_src: src.map(MacAddr::from_index),
            eth_dst: dst.map(MacAddr::from_index),
            in_port: in_port.map(PortNo::Phys),
            ..Match::default()
        })
}

fn arb_flowmod() -> impl Strategy<Value = FlowMod> {
    (
        arb_match(),
        prop_oneof![
            Just(FlowModCommand::Add),
            Just(FlowModCommand::Modify),
            Just(FlowModCommand::ModifyStrict),
            Just(FlowModCommand::Delete),
            Just(FlowModCommand::DeleteStrict),
        ],
        0u16..4,
        0u16..20,
        0u16..20,
        1u16..4,
    )
        .prop_map(|(mat, command, priority, idle, hard, port)| {
            let mut fm = FlowMod::add(mat)
                .priority(priority * 100)
                .idle_timeout(idle)
                .hard_timeout(hard)
                .action(Action::Output(PortNo::Phys(port)));
            fm.command = command;
            fm
        })
}

fn arb_packet() -> impl Strategy<Value = Packet> {
    (1u64..6, 1u64..6).prop_map(|(s, d)| {
        Packet::ethernet(MacAddr::from_index(s), MacAddr::from_index(d))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Table entries stay sorted by priority descending.
    #[test]
    fn table_priority_order_invariant(mods in proptest::collection::vec(arb_flowmod(), 0..30)) {
        let mut t = FlowTable::default();
        for fm in &mods {
            let _ = t.apply(fm, SimTime::ZERO);
        }
        let priorities: Vec<u16> = t.iter().map(|e| e.priority).collect();
        let mut sorted = priorities.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        prop_assert_eq!(priorities, sorted);
    }

    /// No two entries ever share (match, priority) — adds replace.
    #[test]
    fn table_identity_uniqueness(mods in proptest::collection::vec(arb_flowmod(), 0..30)) {
        let mut t = FlowTable::default();
        for fm in &mods {
            let _ = t.apply(fm, SimTime::ZERO);
        }
        let mut seen = std::collections::HashSet::new();
        for e in t.iter() {
            let key = (format!("{:?}", e.mat), e.priority);
            let fresh = seen.insert(key);
            prop_assert!(fresh, "duplicate (match, priority) entry");
        }
    }

    /// The matched entry is always the first (highest-priority) match.
    #[test]
    fn lookup_returns_highest_priority_match(
        mods in proptest::collection::vec(arb_flowmod(), 0..20),
        pkt in arb_packet(),
        in_port in 1u16..4,
    ) {
        let mut t = FlowTable::default();
        for fm in &mods {
            let _ = t.apply(fm, SimTime::ZERO);
        }
        let expected_priority = t
            .iter()
            .filter(|e| e.mat.matches(&pkt, PortNo::Phys(in_port)))
            .map(|e| e.priority)
            .max();
        let got = t.lookup(&pkt, PortNo::Phys(in_port), SimTime::ZERO).map(|e| e.priority);
        prop_assert_eq!(got, expected_priority);
    }

    /// Wildcard delete leaves the table empty; the outcome reports exactly
    /// what was there.
    #[test]
    fn delete_all_is_total(mods in proptest::collection::vec(arb_flowmod(), 0..20)) {
        let mut t = FlowTable::default();
        for fm in &mods {
            let _ = t.apply(fm, SimTime::ZERO);
        }
        let before = t.len();
        let out = t.apply(&FlowMod::delete(Match::any()), SimTime::ZERO).unwrap();
        prop_assert_eq!(out.displaced.len(), before);
        prop_assert_eq!(t.len(), 0);
    }

    /// Expiry is monotone: once a time-advance expires entries, re-running
    /// at the same time expires nothing more.
    #[test]
    fn expiry_is_idempotent(
        mods in proptest::collection::vec(arb_flowmod(), 0..20),
        advance in 0u64..40,
    ) {
        let mut t = FlowTable::default();
        for fm in &mods {
            let _ = t.apply(fm, SimTime::ZERO);
        }
        let now = SimTime::from_secs(advance);
        let _ = t.expire(now);
        let second = t.expire(now);
        prop_assert!(second.is_empty());
        // Everything left genuinely has time remaining (or no timeout).
        for e in t.iter() {
            if e.hard_timeout > 0 {
                prop_assert!(u64::from(e.hard_timeout) > advance);
            }
        }
    }

    /// peek and lookup agree on which entry matches.
    #[test]
    fn peek_lookup_agree(
        mods in proptest::collection::vec(arb_flowmod(), 0..20),
        pkt in arb_packet(),
    ) {
        let mut t = FlowTable::default();
        for fm in &mods {
            let _ = t.apply(fm, SimTime::ZERO);
        }
        let peeked = t.peek(&pkt, PortNo::Phys(1)).map(|e| (e.mat.clone(), e.priority));
        let looked = t.lookup(&pkt, PortNo::Phys(1), SimTime::ZERO).map(|e| (e.mat.clone(), e.priority));
        prop_assert_eq!(peeked, looked);
    }

    /// Dataplane conservation: a unicast injection is delivered at most
    /// once per host, and deliveries+drops never exceed the flood fan-out
    /// bound.
    #[test]
    fn dataplane_no_duplication(
        seed in 0u64..1000,
        n_pkts in 1usize..10,
    ) {
        let topo = Topology::random(4, 2, 1, seed);
        let mut net = Network::new(&topo);
        // Exact forwarding toward each host from its own switch only.
        for h in &topo.hosts {
            let fm = FlowMod::add(Match::eth_dst(h.mac))
                .action(Action::Output(PortNo::Phys(h.attach.port)));
            net.apply(h.attach.dpid, &Message::FlowMod(fm)).unwrap();
        }
        for i in 0..n_pkts {
            let src = &topo.hosts[i % topo.hosts.len()];
            let dst = &topo.hosts[(i + 1) % topo.hosts.len()];
            let trace = net.inject(src.mac, Packet::ethernet(src.mac, dst.mac)).unwrap();
            // At most one delivery to the destination per injection.
            let copies =
                trace.delivered.iter().filter(|(m, _)| *m == dst.mac).count();
            prop_assert!(copies <= 1, "duplicated delivery: {:?}", trace);
            prop_assert!(!trace.loop_detected);
        }
    }

    /// Determinism: identical seeds give identical networks and traces.
    #[test]
    fn network_runs_are_deterministic(seed in 0u64..500) {
        let run = || {
            let topo = Topology::random(5, 2, 1, seed);
            let mut net = Network::new(&topo);
            for sw in topo.switches.keys() {
                let fm = FlowMod::add(Match::any()).action(Action::Output(PortNo::Flood));
                net.apply(*sw, &Message::FlowMod(fm)).unwrap();
            }
            let src = topo.hosts[0].mac;
            let dst = topo.hosts[1].mac;
            let trace = net.inject(src, Packet::ethernet(src, dst)).unwrap();
            net.tick(SimDuration::from_secs(5));
            (format!("{trace:?}"), net.delivery_counters())
        };
        prop_assert_eq!(run(), run());
    }
}
