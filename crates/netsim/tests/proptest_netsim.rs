//! Property tests for the simulator: flow-table laws, dataplane sanity,
//! and determinism.

use legosdn_netsim::{FlowTable, Network, SimDuration, SimTime, Topology};
use legosdn_openflow::prelude::*;
use legosdn_testkit::{forall, Rng};

fn arb_match(rng: &mut Rng) -> Match {
    Match {
        eth_src: rng
            .gen_option(|r| r.gen_range(1u64..6))
            .map(MacAddr::from_index),
        eth_dst: rng
            .gen_option(|r| r.gen_range(1u64..6))
            .map(MacAddr::from_index),
        in_port: rng.gen_option(|r| r.gen_range(1u16..4)).map(PortNo::Phys),
        ..Match::default()
    }
}

fn arb_flowmod(rng: &mut Rng) -> FlowMod {
    let command = *rng.pick(&[
        FlowModCommand::Add,
        FlowModCommand::Modify,
        FlowModCommand::ModifyStrict,
        FlowModCommand::Delete,
        FlowModCommand::DeleteStrict,
    ]);
    let mat = arb_match(rng);
    let mut fm = FlowMod::add(mat)
        .priority(rng.gen_range(0u16..4) * 100)
        .idle_timeout(rng.gen_range(0u16..20))
        .hard_timeout(rng.gen_range(0u16..20))
        .action(Action::Output(PortNo::Phys(rng.gen_range(1u16..4))));
    fm.command = command;
    fm
}

fn arb_packet(rng: &mut Rng) -> Packet {
    Packet::ethernet(
        MacAddr::from_index(rng.gen_range(1u64..6)),
        MacAddr::from_index(rng.gen_range(1u64..6)),
    )
}

/// Table entries stay sorted by priority descending.
#[test]
fn table_priority_order_invariant() {
    forall(256, |rng| {
        let mods = rng.gen_vec(0..30, arb_flowmod);
        let mut t = FlowTable::default();
        for fm in &mods {
            let _ = t.apply(fm, SimTime::ZERO);
        }
        let priorities: Vec<u16> = t.iter().map(|e| e.priority).collect();
        let mut sorted = priorities.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(priorities, sorted);
    });
}

/// No two entries ever share (match, priority) — adds replace.
#[test]
fn table_identity_uniqueness() {
    forall(256, |rng| {
        let mods = rng.gen_vec(0..30, arb_flowmod);
        let mut t = FlowTable::default();
        for fm in &mods {
            let _ = t.apply(fm, SimTime::ZERO);
        }
        let mut seen = std::collections::HashSet::new();
        for e in t.iter() {
            let key = (format!("{:?}", e.mat), e.priority);
            assert!(seen.insert(key), "duplicate (match, priority) entry");
        }
    });
}

/// The matched entry is always the first (highest-priority) match.
#[test]
fn lookup_returns_highest_priority_match() {
    forall(256, |rng| {
        let mods = rng.gen_vec(0..20, arb_flowmod);
        let pkt = arb_packet(rng);
        let in_port = rng.gen_range(1u16..4);
        let mut t = FlowTable::default();
        for fm in &mods {
            let _ = t.apply(fm, SimTime::ZERO);
        }
        let expected_priority = t
            .iter()
            .filter(|e| e.mat.matches(&pkt, PortNo::Phys(in_port)))
            .map(|e| e.priority)
            .max();
        let got = t
            .lookup(&pkt, PortNo::Phys(in_port), SimTime::ZERO)
            .map(|e| e.priority);
        assert_eq!(got, expected_priority);
    });
}

/// Wildcard delete leaves the table empty; the outcome reports exactly
/// what was there.
#[test]
fn delete_all_is_total() {
    forall(256, |rng| {
        let mods = rng.gen_vec(0..20, arb_flowmod);
        let mut t = FlowTable::default();
        for fm in &mods {
            let _ = t.apply(fm, SimTime::ZERO);
        }
        let before = t.len();
        let out = t
            .apply(&FlowMod::delete(Match::any()), SimTime::ZERO)
            .unwrap();
        assert_eq!(out.displaced.len(), before);
        assert_eq!(t.len(), 0);
    });
}

/// Expiry is monotone: once a time-advance expires entries, re-running
/// at the same time expires nothing more.
#[test]
fn expiry_is_idempotent() {
    forall(256, |rng| {
        let mods = rng.gen_vec(0..20, arb_flowmod);
        let advance = rng.gen_range(0u64..40);
        let mut t = FlowTable::default();
        for fm in &mods {
            let _ = t.apply(fm, SimTime::ZERO);
        }
        let now = SimTime::from_secs(advance);
        let _ = t.expire(now);
        let second = t.expire(now);
        assert!(second.is_empty());
        // Everything left genuinely has time remaining (or no timeout).
        for e in t.iter() {
            if e.hard_timeout > 0 {
                assert!(u64::from(e.hard_timeout) > advance);
            }
        }
    });
}

/// peek and lookup agree on which entry matches.
#[test]
fn peek_lookup_agree() {
    forall(256, |rng| {
        let mods = rng.gen_vec(0..20, arb_flowmod);
        let pkt = arb_packet(rng);
        let mut t = FlowTable::default();
        for fm in &mods {
            let _ = t.apply(fm, SimTime::ZERO);
        }
        let peeked = t
            .peek(&pkt, PortNo::Phys(1))
            .map(|e| (e.mat.clone(), e.priority));
        let looked = t
            .lookup(&pkt, PortNo::Phys(1), SimTime::ZERO)
            .map(|e| (e.mat.clone(), e.priority));
        assert_eq!(peeked, looked);
    });
}

/// Dataplane conservation: a unicast injection is delivered at most
/// once per host, and deliveries+drops never exceed the flood fan-out
/// bound.
#[test]
fn dataplane_no_duplication() {
    forall(256, |rng| {
        let seed = rng.gen_range(0u64..1000);
        let n_pkts = rng.gen_range(1usize..10);
        let topo = Topology::random(4, 2, 1, seed);
        let mut net = Network::new(&topo);
        // Exact forwarding toward each host from its own switch only.
        for h in &topo.hosts {
            let fm = FlowMod::add(Match::eth_dst(h.mac))
                .action(Action::Output(PortNo::Phys(h.attach.port)));
            net.apply(h.attach.dpid, &Message::FlowMod(fm)).unwrap();
        }
        for i in 0..n_pkts {
            let src = &topo.hosts[i % topo.hosts.len()];
            let dst = &topo.hosts[(i + 1) % topo.hosts.len()];
            let trace = net
                .inject(src.mac, Packet::ethernet(src.mac, dst.mac))
                .unwrap();
            // At most one delivery to the destination per injection.
            let copies = trace
                .delivered
                .iter()
                .filter(|(m, _)| *m == dst.mac)
                .count();
            assert!(copies <= 1, "duplicated delivery: {trace:?}");
            assert!(!trace.loop_detected);
        }
    });
}

/// Determinism: identical seeds give identical networks and traces.
#[test]
fn network_runs_are_deterministic() {
    forall(128, |rng| {
        let seed = rng.gen_range(0u64..500);
        let run = || {
            let topo = Topology::random(5, 2, 1, seed);
            let mut net = Network::new(&topo);
            for sw in topo.switches.keys() {
                let fm = FlowMod::add(Match::any()).action(Action::Output(PortNo::Flood));
                net.apply(*sw, &Message::FlowMod(fm)).unwrap();
            }
            let src = topo.hosts[0].mac;
            let dst = topo.hosts[1].mac;
            let trace = net.inject(src, Packet::ethernet(src, dst)).unwrap();
            net.tick(SimDuration::from_secs(5));
            (format!("{trace:?}"), net.delivery_counters())
        };
        assert_eq!(run(), run());
    });
}
