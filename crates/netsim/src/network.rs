//! The live network: switches wired by links, hosts at the edge, a virtual
//! clock, and an event queue toward the controller.
//!
//! The network is the system of record for the state NetLog must be able to
//! roll back. [`Network::apply`] therefore returns, with every
//! state-altering message, the [`PreState`] the message displaced.
//!
//! Packets move synchronously: injecting a packet (or emitting one via
//! packet-out) walks it through flow tables hop by hop until it is
//! delivered, dropped, punted to the controller, or found to be looping.
//! The walk is recorded in a [`DataplaneTrace`] — the ground truth for the
//! black-hole and loop invariants.

use crate::clock::{SimDuration, SimTime};
use crate::switch::Switch;
use crate::topology::{Endpoint, HostSpec, LinkSpec, Topology};
use legosdn_openflow::inverse::PreState;
use legosdn_openflow::prelude::{DatapathId, MacAddr, Message, Packet};
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashSet, VecDeque};
use std::fmt;
use std::hash::{Hash, Hasher};

/// Maximum dataplane hops before a walk is declared a loop.
pub const HOP_LIMIT: usize = 64;

/// An asynchronous event toward the controller.
#[derive(Clone, Debug, PartialEq)]
pub enum NetEvent {
    /// An asynchronous switch→controller message (packet-in, flow-removed,
    /// port-status, error).
    FromSwitch(DatapathId, Message),
    /// A switch (re)connected to the control channel.
    SwitchConnected(DatapathId),
    /// A switch disconnected (powered off / control channel lost).
    SwitchDisconnected(DatapathId),
}

/// Errors from control operations against the network.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetError {
    UnknownSwitch(DatapathId),
    UnknownHost(MacAddr),
    SwitchDown(DatapathId),
    UnknownLink,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownSwitch(d) => write!(f, "unknown switch {d}"),
            NetError::UnknownHost(m) => write!(f, "unknown host {m}"),
            NetError::SwitchDown(d) => write!(f, "switch {d} is down"),
            NetError::UnknownLink => write!(f, "unknown link"),
        }
    }
}

impl std::error::Error for NetError {}

/// Result of applying a controller message to a switch.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ApplyOutcome {
    /// Synchronous replies (echo/stats/barrier replies, errors).
    pub replies: Vec<Message>,
    /// Pre-state displaced by a state-altering message (for inversion).
    pub pre_state: Option<PreState>,
    /// Dataplane activity triggered by the message (packet-outs).
    pub trace: DataplaneTrace,
}

/// Record of one packet's walk through the dataplane.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DataplaneTrace {
    /// `(dpid, in_port)` hops in visit order.
    pub path: Vec<Endpoint>,
    /// Hosts the packet reached, with the packet as delivered.
    pub delivered: Vec<(MacAddr, Packet)>,
    /// Packet-ins generated during the walk.
    pub packet_ins: usize,
    /// Packets that died on a dead port/link or a drop rule.
    pub drops: usize,
    /// The walk exceeded [`HOP_LIMIT`] or revisited a state — a forwarding
    /// loop.
    pub loop_detected: bool,
}

impl DataplaneTrace {
    /// Was the packet delivered to exactly the given host?
    #[must_use]
    pub fn delivered_to(&self, mac: MacAddr) -> bool {
        self.delivered.iter().any(|(m, _)| *m == mac)
    }

    fn merge(&mut self, other: DataplaneTrace) {
        self.path.extend(other.path);
        self.delivered.extend(other.delivered);
        self.packet_ins += other.packet_ins;
        self.drops += other.drops;
        self.loop_detected |= other.loop_detected;
    }
}

#[derive(Clone, Debug)]
struct Link {
    spec: LinkSpec,
    up: bool,
}

/// The simulated network.
///
/// `Clone` is deliberate: invariant gates (NetLog pre-commit checks) verify
/// candidate rule-sets against a scratch copy before touching the real
/// network.
#[derive(Clone, Debug)]
pub struct Network {
    now: SimTime,
    switches: BTreeMap<DatapathId, Switch>,
    links: Vec<Link>,
    hosts: Vec<HostSpec>,
    events: VecDeque<NetEvent>,
    /// Lifetime delivery/drop counters for availability experiments.
    total_delivered: u64,
    total_dropped: u64,
}

impl Network {
    /// Materialize a topology. All switches and links start up; a
    /// `SwitchConnected` event is queued per switch (the initial handshake).
    #[must_use]
    pub fn new(topology: &Topology) -> Self {
        let mut switches = BTreeMap::new();
        for (&dpid, &n_ports) in &topology.switches {
            switches.insert(dpid, Switch::new(dpid, n_ports));
        }
        let mut events = VecDeque::new();
        for &dpid in switches.keys() {
            events.push_back(NetEvent::SwitchConnected(dpid));
        }
        Network {
            now: SimTime::ZERO,
            switches,
            links: topology
                .links
                .iter()
                .map(|&spec| Link { spec, up: true })
                .collect(),
            hosts: topology.hosts.clone(),
            events,
            total_delivered: 0,
            total_dropped: 0,
        }
    }

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Read a switch.
    #[must_use]
    pub fn switch(&self, dpid: DatapathId) -> Option<&Switch> {
        self.switches.get(&dpid)
    }

    /// Mutable switch access (test setup, counter restoration).
    pub fn switch_mut(&mut self, dpid: DatapathId) -> Option<&mut Switch> {
        self.switches.get_mut(&dpid)
    }

    /// All switches, ascending by dpid.
    pub fn switches(&self) -> impl Iterator<Item = &Switch> {
        self.switches.values()
    }

    /// All hosts.
    #[must_use]
    pub fn hosts(&self) -> &[HostSpec] {
        &self.hosts
    }

    /// All links with their current status.
    pub fn links(&self) -> impl Iterator<Item = (&LinkSpec, bool)> {
        self.links.iter().map(|l| (&l.spec, l.up))
    }

    /// Find a host by MAC.
    #[must_use]
    pub fn host_by_mac(&self, mac: MacAddr) -> Option<&HostSpec> {
        self.hosts.iter().find(|h| h.mac == mac)
    }

    /// The host attached at `(dpid, port)`, if any.
    #[must_use]
    pub fn host_at(&self, at: Endpoint) -> Option<&HostSpec> {
        self.hosts.iter().find(|h| h.attach == at)
    }

    /// The far end of the up link at `(dpid, port)`, if any.
    #[must_use]
    pub fn link_peer(&self, at: Endpoint) -> Option<Endpoint> {
        self.links.iter().filter(|l| l.up).find_map(|l| {
            if l.spec.a == at {
                Some(l.spec.b)
            } else if l.spec.b == at {
                Some(l.spec.a)
            } else {
                None
            }
        })
    }

    /// Like [`Self::link_peer`] but ignoring link status — the wiring, not
    /// the weather.
    #[must_use]
    pub fn wired_peer(&self, at: Endpoint) -> Option<Endpoint> {
        self.links.iter().find_map(|l| {
            if l.spec.a == at {
                Some(l.spec.b)
            } else if l.spec.b == at {
                Some(l.spec.a)
            } else {
                None
            }
        })
    }

    /// Lifetime `(delivered, dropped)` dataplane counters.
    #[must_use]
    pub fn delivery_counters(&self) -> (u64, u64) {
        (self.total_delivered, self.total_dropped)
    }

    /// Drain pending controller-bound events.
    pub fn poll_events(&mut self) -> Vec<NetEvent> {
        self.events.drain(..).collect()
    }

    /// Peek the oldest pending controller-bound event without draining.
    /// The windowed runtime's cross-cycle extension inspects the queue
    /// head to decide whether the event can be consumed incrementally.
    #[must_use]
    pub fn peek_event(&self) -> Option<&NetEvent> {
        self.events.front()
    }

    /// Pop the oldest pending controller-bound event.
    pub fn pop_event(&mut self) -> Option<NetEvent> {
        self.events.pop_front()
    }

    /// Apply a controller→switch message.
    pub fn apply(&mut self, dpid: DatapathId, msg: &Message) -> Result<ApplyOutcome, NetError> {
        let now = self.now;
        let sw = self
            .switches
            .get_mut(&dpid)
            .ok_or(NetError::UnknownSwitch(dpid))?;
        if !sw.is_up() {
            return Err(NetError::SwitchDown(dpid));
        }
        let out = sw.handle_message(msg, now);
        for n in out.notifications {
            self.events.push_back(NetEvent::FromSwitch(dpid, n));
        }
        let mut trace = DataplaneTrace::default();
        for (port, pkt) in out.emissions {
            if let Some(p) = port.phys() {
                trace.merge(self.propagate(Endpoint::new(dpid, p), pkt));
            }
        }
        Ok(ApplyOutcome {
            replies: out.replies,
            pre_state: out.pre_state,
            trace,
        })
    }

    /// Inject a packet from a host into the network.
    pub fn inject(&mut self, src: MacAddr, pkt: Packet) -> Result<DataplaneTrace, NetError> {
        let host = self.host_by_mac(src).ok_or(NetError::UnknownHost(src))?;
        let attach = host.attach;
        Ok(self.deliver_into(attach, pkt))
    }

    /// Walk a packet that arrives *into* a switch port (from a host).
    fn deliver_into(&mut self, at: Endpoint, pkt: Packet) -> DataplaneTrace {
        let mut trace = DataplaneTrace::default();
        let mut queue: VecDeque<(Endpoint, Packet)> = VecDeque::new();
        let mut visited: HashSet<(DatapathId, u16, u64)> = HashSet::new();
        queue.push_back((at, pkt));
        self.walk(&mut queue, &mut visited, &mut trace);
        trace
    }

    /// Walk a packet that leaves a switch port (packet-out emission).
    fn propagate(&mut self, from: Endpoint, pkt: Packet) -> DataplaneTrace {
        let mut trace = DataplaneTrace::default();
        let mut queue: VecDeque<(Endpoint, Packet)> = VecDeque::new();
        let mut visited: HashSet<(DatapathId, u16, u64)> = HashSet::new();
        self.route_emission(from, pkt, &mut queue, &mut trace);
        self.walk(&mut queue, &mut visited, &mut trace);
        trace
    }

    fn walk(
        &mut self,
        queue: &mut VecDeque<(Endpoint, Packet)>,
        visited: &mut HashSet<(DatapathId, u16, u64)>,
        trace: &mut DataplaneTrace,
    ) {
        let mut hops = 0usize;
        while let Some((at, pkt)) = queue.pop_front() {
            hops += 1;
            if hops > HOP_LIMIT {
                trace.loop_detected = true;
                break;
            }
            if !visited.insert((at.dpid, at.port, hash_packet(&pkt))) {
                // Same packet re-entering the same port: a forwarding loop.
                trace.loop_detected = true;
                continue;
            }
            trace.path.push(at);
            let now = self.now;
            let Some(sw) = self.switches.get_mut(&at.dpid) else {
                trace.drops += 1;
                self.total_dropped += 1;
                continue;
            };
            let out = sw.receive_packet(at.port, &pkt, now);
            for n in out.notifications {
                if matches!(n, Message::PacketIn(_)) {
                    trace.packet_ins += 1;
                }
                self.events.push_back(NetEvent::FromSwitch(at.dpid, n));
            }
            for (port, emitted) in out.emissions {
                if let Some(p) = port.phys() {
                    self.route_emission(Endpoint::new(at.dpid, p), emitted, queue, trace);
                }
            }
        }
    }

    /// Decide where a packet leaving `(dpid, port)` lands: a host, the far
    /// end of a live link, or nowhere.
    fn route_emission(
        &mut self,
        from: Endpoint,
        pkt: Packet,
        queue: &mut VecDeque<(Endpoint, Packet)>,
        trace: &mut DataplaneTrace,
    ) {
        if let Some(host) = self.host_at(from) {
            trace.delivered.push((host.mac, pkt));
            self.total_delivered += 1;
            return;
        }
        match self.link_peer(from) {
            Some(peer) => {
                let peer_up = self
                    .switches
                    .get(&peer.dpid)
                    .map(Switch::is_up)
                    .unwrap_or(false);
                if peer_up {
                    queue.push_back((peer, pkt));
                } else {
                    trace.drops += 1;
                    self.total_dropped += 1;
                }
            }
            None => {
                // Dangling port or downed link.
                trace.drops += 1;
                self.total_dropped += 1;
            }
        }
    }

    /// Advance the clock, expiring flow timeouts.
    pub fn tick(&mut self, delta: SimDuration) {
        self.now += delta;
        let now = self.now;
        let dpids: Vec<_> = self.switches.keys().copied().collect();
        for dpid in dpids {
            let removed = {
                let sw = self.switches.get_mut(&dpid).unwrap();
                if !sw.is_up() {
                    continue;
                }
                sw.expire_flows(now)
            };
            for msg in removed {
                self.events.push_back(NetEvent::FromSwitch(dpid, msg));
            }
        }
    }

    /// Take the `idx`-th link up or down. Both endpoint switches observe the
    /// change and emit port-status notifications.
    pub fn set_link_up(&mut self, idx: usize, up: bool) -> Result<(), NetError> {
        let link = self.links.get_mut(idx).ok_or(NetError::UnknownLink)?;
        if link.up == up {
            return Ok(());
        }
        link.up = up;
        let spec = link.spec;
        for ep in [spec.a, spec.b] {
            if let Some(sw) = self.switches.get_mut(&ep.dpid) {
                if let Some(msg) = sw.set_link_down(ep.port, !up) {
                    if sw.is_up() {
                        self.events.push_back(NetEvent::FromSwitch(ep.dpid, msg));
                    }
                }
            }
        }
        Ok(())
    }

    /// Find the index of the link between two switches (first match).
    #[must_use]
    pub fn find_link(&self, a: DatapathId, b: DatapathId) -> Option<usize> {
        self.links.iter().position(|l| {
            (l.spec.a.dpid == a && l.spec.b.dpid == b) || (l.spec.a.dpid == b && l.spec.b.dpid == a)
        })
    }

    /// Power a switch on or off. Powering off drops its flow state, takes
    /// down the far end of each of its links, and emits
    /// `SwitchDisconnected`; powering on emits `SwitchConnected`.
    pub fn set_switch_up(&mut self, dpid: DatapathId, up: bool) -> Result<(), NetError> {
        let sw = self
            .switches
            .get_mut(&dpid)
            .ok_or(NetError::UnknownSwitch(dpid))?;
        if sw.is_up() == up {
            return Ok(());
        }
        sw.set_up(up);
        self.events.push_back(if up {
            NetEvent::SwitchConnected(dpid)
        } else {
            NetEvent::SwitchDisconnected(dpid)
        });
        // Peers see their link to this switch flap.
        let affected: Vec<(usize, Endpoint)> = self
            .links
            .iter()
            .enumerate()
            .filter_map(|(i, l)| {
                if l.spec.a.dpid == dpid {
                    Some((i, l.spec.b))
                } else if l.spec.b.dpid == dpid {
                    Some((i, l.spec.a))
                } else {
                    None
                }
            })
            .collect();
        for (idx, peer) in affected {
            self.links[idx].up = up;
            if let Some(psw) = self.switches.get_mut(&peer.dpid) {
                if let Some(msg) = psw.set_link_down(peer.port, !up) {
                    if psw.is_up() {
                        self.events.push_back(NetEvent::FromSwitch(peer.dpid, msg));
                    }
                }
            }
        }
        Ok(())
    }
}

fn hash_packet(pkt: &Packet) -> u64 {
    let mut h = DefaultHasher::new();
    pkt.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use legosdn_openflow::prelude::{Action, FlowMod, Match, PacketOut, PortNo};
    use legosdn_openflow::types::BufferId;

    /// s1(p2) -- (p2)s2, host A on s1:p1... wait, linear() allocates link
    /// ports first. Build and discover.
    fn two_switch() -> (Network, MacAddr, MacAddr) {
        let topo = Topology::linear(2, 1);
        let net = Network::new(&topo);
        let a = topo.hosts[0].mac;
        let b = topo.hosts[1].mac;
        (net, a, b)
    }

    /// Install L2 forwarding toward `dst` on every switch using the path
    /// out-ports discovered from the topology (for 2-switch linear only).
    fn install_path(net: &mut Network, dst: MacAddr) {
        let host = net.host_by_mac(dst).unwrap().clone();
        // On the attachment switch, forward to the host port.
        let fm = FlowMod::add(Match::eth_dst(dst))
            .action(Action::Output(PortNo::Phys(host.attach.port)));
        net.apply(host.attach.dpid, &Message::FlowMod(fm)).unwrap();
        // On every other switch, forward toward the attachment switch.
        let others: Vec<_> = net
            .switches()
            .map(|s| s.dpid())
            .filter(|d| *d != host.attach.dpid)
            .collect();
        for d in others {
            // Find the port on d that links toward host.attach.dpid.
            let port = net
                .links()
                .find_map(|(l, _)| {
                    if l.a.dpid == d && l.b.dpid == host.attach.dpid {
                        Some(l.a.port)
                    } else if l.b.dpid == d && l.a.dpid == host.attach.dpid {
                        Some(l.b.port)
                    } else {
                        None
                    }
                })
                .expect("adjacent in linear(2)");
            let fm = FlowMod::add(Match::eth_dst(dst)).action(Action::Output(PortNo::Phys(port)));
            net.apply(d, &Message::FlowMod(fm)).unwrap();
        }
    }

    #[test]
    fn startup_emits_switch_connected() {
        let (mut net, _, _) = two_switch();
        let evs = net.poll_events();
        assert_eq!(
            evs.iter()
                .filter(|e| matches!(e, NetEvent::SwitchConnected(_)))
                .count(),
            2
        );
        assert!(net.poll_events().is_empty());
    }

    #[test]
    fn inject_without_rules_punts_to_controller() {
        let (mut net, a, b) = two_switch();
        net.poll_events();
        let pkt = Packet::ethernet(a, b);
        let trace = net.inject(a, pkt).unwrap();
        assert_eq!(trace.packet_ins, 1);
        assert!(trace.delivered.is_empty());
        let evs = net.poll_events();
        assert!(evs
            .iter()
            .any(|e| matches!(e, NetEvent::FromSwitch(_, Message::PacketIn(_)))));
    }

    #[test]
    fn end_to_end_delivery_across_switches() {
        let (mut net, a, b) = two_switch();
        install_path(&mut net, b);
        let trace = net.inject(a, Packet::ethernet(a, b)).unwrap();
        assert!(trace.delivered_to(b), "trace: {trace:?}");
        assert_eq!(trace.path.len(), 2, "must traverse both switches");
        assert_eq!(net.delivery_counters().0, 1);
    }

    #[test]
    fn unknown_host_and_switch_error() {
        let (mut net, a, _) = two_switch();
        assert_eq!(
            net.inject(MacAddr::from_index(99), Packet::ethernet(a, a)),
            Err(NetError::UnknownHost(MacAddr::from_index(99)))
        );
        assert_eq!(
            net.apply(DatapathId(99), &Message::Hello).unwrap_err(),
            NetError::UnknownSwitch(DatapathId(99))
        );
    }

    #[test]
    fn packet_out_reaches_dataplane() {
        let (mut net, a, b) = two_switch();
        let host_b = net.host_by_mac(b).unwrap().clone();
        let po = PacketOut {
            buffer_id: BufferId::NONE,
            in_port: PortNo::None,
            actions: vec![Action::Output(PortNo::Phys(host_b.attach.port))],
            packet: Some(Packet::ethernet(a, b)),
        };
        let out = net
            .apply(host_b.attach.dpid, &Message::PacketOut(po))
            .unwrap();
        assert!(out.trace.delivered_to(b));
    }

    #[test]
    fn link_down_blackholes_and_notifies() {
        let (mut net, a, b) = two_switch();
        install_path(&mut net, b);
        net.poll_events();
        net.set_link_up(0, false).unwrap();
        let evs = net.poll_events();
        assert_eq!(
            evs.iter()
                .filter(|e| matches!(e, NetEvent::FromSwitch(_, Message::PortStatus(_))))
                .count(),
            2,
            "both endpoints must report the flap"
        );
        let trace = net.inject(a, Packet::ethernet(a, b)).unwrap();
        assert!(!trace.delivered_to(b));
        // The egress port is link-down, so the switch swallowed the packet.
        assert_eq!(trace.path.len(), 1, "packet must not cross the dead link");
        let first = net.host_by_mac(a).unwrap().attach.dpid;
        let tx_dropped: u64 = net
            .switch(first)
            .unwrap()
            .ports()
            .map(|p| p.stats.tx_dropped)
            .sum();
        assert!(tx_dropped > 0);
        // Bring it back.
        net.set_link_up(0, true).unwrap();
        let trace = net.inject(a, Packet::ethernet(a, b)).unwrap();
        assert!(trace.delivered_to(b));
    }

    #[test]
    fn switch_down_disconnects_and_flaps_peer_links() {
        let (mut net, a, b) = two_switch();
        install_path(&mut net, b);
        net.poll_events();
        let dpid_b = net.host_by_mac(b).unwrap().attach.dpid;
        net.set_switch_up(dpid_b, false).unwrap();
        let evs = net.poll_events();
        assert!(evs
            .iter()
            .any(|e| matches!(e, NetEvent::SwitchDisconnected(d) if *d == dpid_b)));
        assert!(evs
            .iter()
            .any(|e| matches!(e, NetEvent::FromSwitch(d, Message::PortStatus(_)) if *d != dpid_b)));
        let trace = net.inject(a, Packet::ethernet(a, b)).unwrap();
        assert!(!trace.delivered_to(b));
        // Recovery: switch returns with empty tables.
        net.set_switch_up(dpid_b, true).unwrap();
        assert!(net.switch(dpid_b).unwrap().table().is_empty());
        let evs = net.poll_events();
        assert!(evs
            .iter()
            .any(|e| matches!(e, NetEvent::SwitchConnected(d) if *d == dpid_b)));
    }

    #[test]
    fn forwarding_loop_is_detected() {
        // Two switches each forwarding everything to the other.
        let (mut net, a, b) = two_switch();
        let dpids: Vec<_> = net.switches().map(Switch::dpid).collect();
        for (i, &d) in dpids.iter().enumerate() {
            let other = dpids[1 - i];
            let port = net
                .links()
                .find_map(|(l, _)| {
                    if l.a.dpid == d && l.b.dpid == other {
                        Some(l.a.port)
                    } else if l.b.dpid == d && l.a.dpid == other {
                        Some(l.b.port)
                    } else {
                        None
                    }
                })
                .unwrap();
            let fm = FlowMod::add(Match::any()).action(Action::Output(PortNo::Phys(port)));
            net.apply(d, &Message::FlowMod(fm)).unwrap();
        }
        let trace = net.inject(a, Packet::ethernet(a, b)).unwrap();
        assert!(trace.loop_detected);
        assert!(!trace.delivered_to(b));
    }

    #[test]
    fn tick_expires_and_notifies() {
        let (mut net, _, b) = two_switch();
        let host_b = net.host_by_mac(b).unwrap().clone();
        let fm = FlowMod::add(Match::eth_dst(b))
            .hard_timeout(3)
            .action(Action::Output(PortNo::Phys(host_b.attach.port)))
            .notify_removed();
        net.apply(host_b.attach.dpid, &Message::FlowMod(fm))
            .unwrap();
        net.poll_events();
        net.tick(SimDuration::from_secs(2));
        assert!(net.poll_events().is_empty());
        net.tick(SimDuration::from_secs(1));
        let evs = net.poll_events();
        assert!(evs
            .iter()
            .any(|e| matches!(e, NetEvent::FromSwitch(_, Message::FlowRemoved(_)))));
        assert_eq!(net.now(), SimTime::from_secs(3));
    }

    #[test]
    fn apply_to_down_switch_errors() {
        let (mut net, _, _) = two_switch();
        let d = net.switches().next().unwrap().dpid();
        net.set_switch_up(d, false).unwrap();
        assert_eq!(
            net.apply(d, &Message::Hello).unwrap_err(),
            NetError::SwitchDown(d)
        );
    }

    #[test]
    fn flood_crosses_the_network() {
        let (mut net, a, b) = two_switch();
        // Flood on both switches delivers to every host except the sender.
        let dpids: Vec<_> = net.switches().map(Switch::dpid).collect();
        for d in dpids {
            let fm = FlowMod::add(Match::any()).action(Action::Output(PortNo::Flood));
            net.apply(d, &Message::FlowMod(fm)).unwrap();
        }
        let trace = net
            .inject(a, Packet::ethernet(a, MacAddr::BROADCAST))
            .unwrap();
        assert!(trace.delivered_to(b));
        // The sender's own host must not receive a copy (flood excludes the
        // ingress port).
        assert!(!trace.delivered_to(a));
    }

    #[test]
    fn pre_state_flows_through_apply() {
        let (mut net, _, b) = two_switch();
        let host_b = net.host_by_mac(b).unwrap().clone();
        let fm = FlowMod::add(Match::eth_dst(b)).action(Action::Output(PortNo::Phys(1)));
        let out = net
            .apply(host_b.attach.dpid, &Message::FlowMod(fm))
            .unwrap();
        assert_eq!(out.pre_state, Some(PreState::DisplacedFlows(vec![])));
    }
}
