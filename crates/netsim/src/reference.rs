//! The retained linear-scan flow table.
//!
//! [`LinearFlowTable`] is the pre-index implementation of
//! [`FlowTable`](crate::FlowTable), kept verbatim as an executable
//! specification: every operation is a straight scan over the
//! priority-sorted `Vec<FlowEntry>`, with no tiers, no hash index, and no
//! expiry watermark. Two things depend on it staying alive:
//!
//! - the equivalence property suite (`tests/flow_table_equivalence.rs`)
//!   drives random flow-mod/packet/expire sequences through both tables and
//!   asserts identical lookups, outcomes, stats, expirations, and encodings;
//! - the `e16_table_scale` bench uses it as the baseline the indexed table's
//!   speedup is measured against.
//!
//! It shares [`FlowEntry`], [`FlowModOutcome`], and [`ExpiredFlow`] with the
//! indexed table, and its `#[derive(Codec)]` emits the same five fields in
//! the same order as the indexed table's manual impl, so equal logical state
//! produces byte-identical encodings.

use crate::clock::SimTime;
use crate::flow_table::{ExpiredFlow, FlowEntry, FlowModOutcome};
use legosdn_codec::Codec;
use legosdn_openflow::error::{ErrorCode, ErrorType};
use legosdn_openflow::messages::{
    ErrorMsg, FlowEntrySnapshot, FlowMod, FlowModCommand, FlowRemovedReason, TableStats,
};
use legosdn_openflow::prelude::{Match, Packet, PortNo};

/// A single-table OpenFlow 1.0 flow table, linear-scan edition.
#[derive(Clone, Debug, Default, Codec)]
pub struct LinearFlowTable {
    entries: Vec<FlowEntry>,
    next_seq: u64,
    max_entries: usize,
    lookup_count: u64,
    matched_count: u64,
}

impl LinearFlowTable {
    /// A table bounded at `max_entries` (0 means unbounded).
    #[must_use]
    pub fn with_capacity(max_entries: usize) -> Self {
        LinearFlowTable {
            max_entries,
            ..LinearFlowTable::default()
        }
    }

    /// Number of installed entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are installed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over installed entries (highest priority first).
    pub fn iter(&self) -> impl Iterator<Item = &FlowEntry> {
        self.entries.iter()
    }

    /// Table summary counters.
    #[must_use]
    pub fn stats(&self) -> TableStats {
        TableStats {
            active_count: self.entries.len() as u32,
            lookup_count: self.lookup_count,
            matched_count: self.matched_count,
            max_entries: if self.max_entries == 0 {
                u32::MAX
            } else {
                self.max_entries as u32
            },
        }
    }

    /// Apply a flow-mod. Returns what was displaced, or the OpenFlow error
    /// the switch would send (table full, overlap).
    pub fn apply(&mut self, fm: &FlowMod, now: SimTime) -> Result<FlowModOutcome, ErrorMsg> {
        match fm.command {
            FlowModCommand::Add => self.add(fm, now),
            FlowModCommand::Modify => self.modify(fm, now, false),
            FlowModCommand::ModifyStrict => self.modify(fm, now, true),
            FlowModCommand::Delete => Ok(self.delete(fm, now, false)),
            FlowModCommand::DeleteStrict => Ok(self.delete(fm, now, true)),
        }
    }

    fn add(&mut self, fm: &FlowMod, now: SimTime) -> Result<FlowModOutcome, ErrorMsg> {
        if fm.check_overlap
            && self.entries.iter().any(|e| {
                e.priority == fm.priority
                    && e.mat != fm.mat
                    && (e.mat.subsumes(&fm.mat) || fm.mat.subsumes(&e.mat))
            })
        {
            return Err(ErrorMsg {
                err_type: ErrorType::FlowModFailed,
                code: ErrorCode::Overlap,
                data: Vec::new(),
            });
        }
        let mut outcome = FlowModOutcome::default();
        // An add replaces an identical match+priority entry without
        // generating a flow-removed (OF 1.0 §4.6).
        if let Some(pos) = self
            .entries
            .iter()
            .position(|e| e.priority == fm.priority && e.mat == fm.mat)
        {
            let old = self.entries.remove(pos);
            outcome.displaced.push(old.snapshot(now));
        } else if self.max_entries > 0 && self.entries.len() >= self.max_entries {
            return Err(ErrorMsg {
                err_type: ErrorType::FlowModFailed,
                code: ErrorCode::TablesFull,
                data: Vec::new(),
            });
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = FlowEntry {
            mat: fm.mat.clone(),
            priority: fm.priority,
            cookie: fm.cookie,
            idle_timeout: fm.idle_timeout,
            hard_timeout: fm.hard_timeout,
            send_flow_removed: fm.send_flow_removed,
            actions: fm.actions.clone(),
            installed_at: now,
            last_matched: now,
            packet_count: 0,
            byte_count: 0,
            seq,
        };
        // Keep sorted: priority desc, then insertion order.
        let pos = self
            .entries
            .iter()
            .position(|e| e.priority < entry.priority)
            .unwrap_or(self.entries.len());
        self.entries.insert(pos, entry);
        Ok(outcome)
    }

    fn modify(
        &mut self,
        fm: &FlowMod,
        now: SimTime,
        strict: bool,
    ) -> Result<FlowModOutcome, ErrorMsg> {
        let mut outcome = FlowModOutcome::default();
        let mut touched = false;
        for e in &mut self.entries {
            let hit = if strict {
                e.priority == fm.priority && e.mat == fm.mat
            } else {
                fm.mat.subsumes(&e.mat)
            };
            if hit {
                outcome.displaced.push(e.snapshot(now));
                e.actions = fm.actions.clone();
                e.cookie = fm.cookie;
                touched = true;
            }
        }
        if !touched {
            // OF 1.0: a modify that matches nothing behaves like an add.
            return self.add(fm, now);
        }
        Ok(outcome)
    }

    fn delete(&mut self, fm: &FlowMod, now: SimTime, strict: bool) -> FlowModOutcome {
        let mut outcome = FlowModOutcome::default();
        let out_port = fm.out_port;
        self.entries.retain(|e| {
            let hit = if strict {
                e.priority == fm.priority && e.mat == fm.mat
            } else {
                fm.mat.subsumes(&e.mat)
            };
            let hit = hit && (out_port == PortNo::None || e.outputs_to(out_port));
            if hit {
                let snap = e.snapshot(now);
                if e.send_flow_removed {
                    outcome.notify_removed.push(snap.clone());
                }
                outcome.displaced.push(snap);
            }
            !hit
        });
        outcome
    }

    /// Match `pkt` arriving on `in_port`, updating counters on hit.
    pub fn lookup(&mut self, pkt: &Packet, in_port: PortNo, now: SimTime) -> Option<&FlowEntry> {
        self.lookup_count += 1;
        let wire_len = u64::from(pkt.wire_len());
        for e in &mut self.entries {
            if e.mat.matches(pkt, in_port) {
                e.packet_count += 1;
                e.byte_count += wire_len;
                e.last_matched = now;
                self.matched_count += 1;
                return Some(e);
            }
        }
        None
    }

    /// Match without mutating counters.
    #[must_use]
    pub fn peek(&self, pkt: &Packet, in_port: PortNo) -> Option<&FlowEntry> {
        self.entries.iter().find(|e| e.mat.matches(pkt, in_port))
    }

    /// Expire idle and hard timeouts as of `now` — always a full scan.
    pub fn expire(&mut self, now: SimTime) -> Vec<ExpiredFlow> {
        let mut expired = Vec::new();
        self.entries.retain(|e| {
            let hard_hit = e.hard_timeout > 0
                && now.since(e.installed_at).as_secs() >= u64::from(e.hard_timeout);
            let idle_hit = e.idle_timeout > 0
                && now.since(e.last_matched).as_secs() >= u64::from(e.idle_timeout);
            if hard_hit || idle_hit {
                expired.push(ExpiredFlow {
                    snapshot: e.snapshot(now),
                    reason: if hard_hit {
                        FlowRemovedReason::HardTimeout
                    } else {
                        FlowRemovedReason::IdleTimeout
                    },
                    notify: e.send_flow_removed,
                });
                false
            } else {
                true
            }
        });
        expired
    }

    /// Snapshot entries subsumed by `mat` (and forwarding to `out_port`, if
    /// not `None`).
    #[must_use]
    pub fn snapshot_matching(
        &self,
        mat: &Match,
        out_port: PortNo,
        now: SimTime,
    ) -> Vec<FlowEntrySnapshot> {
        self.entries
            .iter()
            .filter(|e| mat.subsumes(&e.mat))
            .filter(|e| out_port == PortNo::None || e.outputs_to(out_port))
            .map(|e| e.snapshot(now))
            .collect()
    }

    /// Restore counters onto an entry.
    pub fn restore_counters(
        &mut self,
        mat: &Match,
        priority: u16,
        packets: u64,
        bytes: u64,
    ) -> bool {
        for e in &mut self.entries {
            if e.priority == priority && e.mat == *mat {
                e.packet_count = packets;
                e.byte_count = bytes;
                return true;
            }
        }
        false
    }
}
