//! Virtual time.
//!
//! The simulator is a deterministic discrete-event system: nothing in it
//! reads wall-clock time. All timeouts (flow idle/hard expiry, heartbeat
//! deadlines, detection latencies) are expressed in [`SimTime`] and advance
//! only when the harness calls `Network::tick`.

use legosdn_codec::Codec;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, measured in microseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Codec)]
pub struct SimTime(pub u64);

/// A span of virtual time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Debug, Codec)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// Seconds → time.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Milliseconds → time.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Microseconds → time.
    #[must_use]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Whole seconds elapsed since simulation start.
    #[must_use]
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Time since `earlier`, saturating at zero if `earlier` is later.
    #[must_use]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Seconds → duration.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Milliseconds → duration.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Microseconds → duration.
    #[must_use]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Whole seconds in this span.
    #[must_use]
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional seconds in this span.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}us", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0 as f64 / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_secs(2).0, 2_000_000);
        assert_eq!(SimTime::from_millis(3).0, 3_000);
        assert_eq!(SimTime::from_micros(7).0, 7);
        assert_eq!(SimTime::from_secs(5).as_secs(), 5);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(3);
        assert_eq!(b.since(a), SimDuration::from_secs(2));
        assert_eq!(a.since(b), SimDuration::ZERO);
        assert_eq!(b - a, SimDuration::from_secs(2));
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(1500);
        assert_eq!(t.as_secs(), 1);
        let mut t2 = t;
        t2 += SimDuration::from_millis(500);
        assert_eq!(t2.as_secs(), 2);
        assert_eq!(
            SimDuration::from_secs(1) + SimDuration::from_millis(500),
            SimDuration::from_millis(1500)
        );
    }

    #[test]
    fn duration_float_seconds() {
        assert!((SimDuration::from_millis(2500).as_secs_f64() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
        assert_eq!(format!("{:?}", SimTime::from_micros(5)), "t+5us");
    }
}
