//! Topology specifications and generators.
//!
//! A [`Topology`] is a pure description — switches, inter-switch links, and
//! host attachment points — consumed by `Network::new`. Generators cover the
//! shapes used across the experiment suite: linear chains, rings, stars,
//! k-ary trees, fat-trees, and seeded random graphs.

use legosdn_codec::Codec;
use legosdn_openflow::prelude::{DatapathId, Ipv4Addr, MacAddr};
use legosdn_testkit::Rng;
use std::collections::BTreeMap;

/// One end of an inter-switch link.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Codec)]
pub struct Endpoint {
    pub dpid: DatapathId,
    pub port: u16,
}

impl Endpoint {
    /// Construct an endpoint.
    #[must_use]
    pub fn new(dpid: DatapathId, port: u16) -> Self {
        Endpoint { dpid, port }
    }
}

/// A bidirectional inter-switch link.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Codec)]
pub struct LinkSpec {
    pub a: Endpoint,
    pub b: Endpoint,
}

/// A host attachment.
#[derive(Clone, Debug, PartialEq, Eq, Codec)]
pub struct HostSpec {
    pub mac: MacAddr,
    pub ip: Ipv4Addr,
    pub attach: Endpoint,
}

/// A full topology description.
#[derive(Clone, Debug, Default, PartialEq, Eq, Codec)]
pub struct Topology {
    /// Switch → number of ports.
    pub switches: BTreeMap<DatapathId, u16>,
    pub links: Vec<LinkSpec>,
    pub hosts: Vec<HostSpec>,
}

impl Topology {
    /// An empty topology to build up by hand.
    #[must_use]
    pub fn new() -> Self {
        Topology::default()
    }

    /// Add a switch with `n_ports` ports (or widen an existing one).
    pub fn add_switch(&mut self, dpid: DatapathId, n_ports: u16) {
        let e = self.switches.entry(dpid).or_insert(0);
        *e = (*e).max(n_ports);
    }

    /// The next free port on `dpid`, growing the switch.
    fn alloc_port(&mut self, dpid: DatapathId) -> u16 {
        let used = self
            .links
            .iter()
            .flat_map(|l| [l.a, l.b])
            .chain(self.hosts.iter().map(|h| h.attach))
            .filter(|e| e.dpid == dpid)
            .map(|e| e.port)
            .max()
            .unwrap_or(0);
        let port = used + 1;
        self.add_switch(dpid, port);
        port
    }

    /// Link two switches on fresh ports; returns the link.
    pub fn connect(&mut self, a: DatapathId, b: DatapathId) -> LinkSpec {
        let pa = self.alloc_port(a);
        let pb = self.alloc_port(b);
        let link = LinkSpec {
            a: Endpoint::new(a, pa),
            b: Endpoint::new(b, pb),
        };
        self.links.push(link);
        link
    }

    /// Attach a numbered host to `dpid` on a fresh port.
    pub fn attach_host(&mut self, dpid: DatapathId, host_idx: u64) -> HostSpec {
        let port = self.alloc_port(dpid);
        let host = HostSpec {
            mac: MacAddr::from_index(host_idx),
            ip: Ipv4Addr::from_index(host_idx as u32),
            attach: Endpoint::new(dpid, port),
        };
        self.hosts.push(host.clone());
        host
    }

    /// Number of switches.
    #[must_use]
    pub fn n_switches(&self) -> usize {
        self.switches.len()
    }

    /// All switch ids, ascending.
    #[must_use]
    pub fn dpids(&self) -> Vec<DatapathId> {
        self.switches.keys().copied().collect()
    }

    /// Is the switch-level graph connected (ignoring hosts)?
    #[must_use]
    pub fn is_connected(&self) -> bool {
        let Some(&start) = self.switches.keys().next() else {
            return true;
        };
        let mut seen = std::collections::BTreeSet::new();
        let mut stack = vec![start];
        while let Some(d) = stack.pop() {
            if !seen.insert(d) {
                continue;
            }
            for l in &self.links {
                if l.a.dpid == d && !seen.contains(&l.b.dpid) {
                    stack.push(l.b.dpid);
                }
                if l.b.dpid == d && !seen.contains(&l.a.dpid) {
                    stack.push(l.a.dpid);
                }
            }
        }
        seen.len() == self.switches.len()
    }

    // ---------------------------------------------------------------
    // generators
    // ---------------------------------------------------------------

    /// `n` switches in a chain, `hosts_per_switch` hosts on each.
    #[must_use]
    pub fn linear(n: usize, hosts_per_switch: usize) -> Self {
        let mut t = Topology::new();
        let mut host_idx = 1u64;
        for i in 0..n {
            t.add_switch(DatapathId(i as u64 + 1), 0);
        }
        for i in 1..n {
            t.connect(DatapathId(i as u64), DatapathId(i as u64 + 1));
        }
        for i in 0..n {
            for _ in 0..hosts_per_switch {
                t.attach_host(DatapathId(i as u64 + 1), host_idx);
                host_idx += 1;
            }
        }
        t
    }

    /// `n` switches in a cycle (contains a topological loop — exercises the
    /// loop-invariant checker), `hosts_per_switch` hosts each.
    #[must_use]
    pub fn ring(n: usize, hosts_per_switch: usize) -> Self {
        let mut t = Self::linear(n, hosts_per_switch);
        if n > 2 {
            t.connect(DatapathId(n as u64), DatapathId(1));
        }
        t
    }

    /// A core switch with `leaves` edge switches, hosts on the edges only.
    #[must_use]
    pub fn star(leaves: usize, hosts_per_leaf: usize) -> Self {
        let mut t = Topology::new();
        let core = DatapathId(1);
        t.add_switch(core, 0);
        let mut host_idx = 1u64;
        for i in 0..leaves {
            let leaf = DatapathId(i as u64 + 2);
            t.add_switch(leaf, 0);
            t.connect(core, leaf);
            for _ in 0..hosts_per_leaf {
                t.attach_host(leaf, host_idx);
                host_idx += 1;
            }
        }
        t
    }

    /// A complete `fanout`-ary tree of the given `depth` (depth 1 == a
    /// single root). Hosts attach to the leaf tier.
    #[must_use]
    pub fn tree(fanout: usize, depth: usize, hosts_per_leaf: usize) -> Self {
        let mut t = Topology::new();
        let mut next_dpid = 1u64;
        let mut host_idx = 1u64;
        let root = DatapathId(next_dpid);
        next_dpid += 1;
        t.add_switch(root, 0);
        let mut frontier = vec![root];
        for level in 1..depth {
            let mut next_frontier = Vec::new();
            for &parent in &frontier {
                for _ in 0..fanout {
                    let child = DatapathId(next_dpid);
                    next_dpid += 1;
                    t.add_switch(child, 0);
                    t.connect(parent, child);
                    next_frontier.push(child);
                }
            }
            frontier = next_frontier;
            let _ = level;
        }
        for &leaf in &frontier {
            for _ in 0..hosts_per_leaf {
                t.attach_host(leaf, host_idx);
                host_idx += 1;
            }
        }
        t
    }

    /// A k-ary fat-tree (k even): `(k/2)^2` core switches, `k` pods of
    /// `k/2` aggregation + `k/2` edge switches, `k/2` hosts per edge switch.
    ///
    /// # Panics
    /// If `k` is odd or zero.
    #[must_use]
    pub fn fat_tree(k: usize) -> Self {
        assert!(
            k >= 2 && k.is_multiple_of(2),
            "fat-tree requires even k >= 2"
        );
        let half = k / 2;
        let mut t = Topology::new();
        let mut next = 1u64;
        let mut alloc = |t: &mut Topology| {
            let d = DatapathId(next);
            next += 1;
            t.add_switch(d, 0);
            d
        };
        let cores: Vec<_> = (0..half * half).map(|_| alloc(&mut t)).collect();
        let mut host_idx = 1u64;
        for _pod in 0..k {
            let aggs: Vec<_> = (0..half).map(|_| alloc(&mut t)).collect();
            let edges: Vec<_> = (0..half).map(|_| alloc(&mut t)).collect();
            // Each aggregation switch connects to `half` cores.
            for (i, &agg) in aggs.iter().enumerate() {
                for j in 0..half {
                    t.connect(agg, cores[i * half + j]);
                }
            }
            // Full bipartite agg <-> edge within the pod.
            for &agg in &aggs {
                for &edge in &edges {
                    t.connect(agg, edge);
                }
            }
            for &edge in &edges {
                for _ in 0..half {
                    t.attach_host(edge, host_idx);
                    host_idx += 1;
                }
            }
        }
        t
    }

    /// A connected random topology: a random spanning tree plus
    /// `extra_links` random extra edges. Deterministic in `seed`.
    #[must_use]
    pub fn random(n: usize, extra_links: usize, hosts_per_switch: usize, seed: u64) -> Self {
        let mut rng = Rng::seed_from_u64(seed);
        let mut t = Topology::new();
        for i in 0..n {
            t.add_switch(DatapathId(i as u64 + 1), 0);
        }
        // Random spanning tree: connect each new node to a random earlier one.
        for i in 1..n {
            let j = rng.gen_range(0..i);
            t.connect(DatapathId(j as u64 + 1), DatapathId(i as u64 + 1));
        }
        let mut added = 0;
        let mut attempts = 0;
        while added < extra_links && attempts < extra_links * 20 {
            attempts += 1;
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a == b {
                continue;
            }
            let (da, db) = (DatapathId(a as u64 + 1), DatapathId(b as u64 + 1));
            let dup = t
                .links
                .iter()
                .any(|l| (l.a.dpid == da && l.b.dpid == db) || (l.a.dpid == db && l.b.dpid == da));
            if dup {
                continue;
            }
            t.connect(da, db);
            added += 1;
        }
        let mut host_idx = 1u64;
        for i in 0..n {
            for _ in 0..hosts_per_switch {
                t.attach_host(DatapathId(i as u64 + 1), host_idx);
                host_idx += 1;
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_shape() {
        let t = Topology::linear(4, 2);
        assert_eq!(t.n_switches(), 4);
        assert_eq!(t.links.len(), 3);
        assert_eq!(t.hosts.len(), 8);
        assert!(t.is_connected());
    }

    #[test]
    fn ring_closes_the_loop() {
        let t = Topology::ring(5, 1);
        assert_eq!(t.links.len(), 5);
        assert!(t.is_connected());
        // Degenerate rings don't double-link.
        assert_eq!(Topology::ring(2, 0).links.len(), 1);
    }

    #[test]
    fn star_shape() {
        let t = Topology::star(6, 2);
        assert_eq!(t.n_switches(), 7);
        assert_eq!(t.links.len(), 6);
        assert_eq!(t.hosts.len(), 12);
        // All links touch the core.
        assert!(t
            .links
            .iter()
            .all(|l| l.a.dpid == DatapathId(1) || l.b.dpid == DatapathId(1)));
    }

    #[test]
    fn tree_shape() {
        let t = Topology::tree(2, 3, 1);
        // 1 + 2 + 4 switches, hosts only on the 4 leaves.
        assert_eq!(t.n_switches(), 7);
        assert_eq!(t.links.len(), 6);
        assert_eq!(t.hosts.len(), 4);
        assert!(t.is_connected());
        // Depth 1: a lone root that is also the leaf tier.
        let single = Topology::tree(3, 1, 2);
        assert_eq!(single.n_switches(), 1);
        assert_eq!(single.hosts.len(), 2);
    }

    #[test]
    fn fat_tree_k4_dimensions() {
        let t = Topology::fat_tree(4);
        // 4 cores + 4 pods * (2 agg + 2 edge) = 20 switches.
        assert_eq!(t.n_switches(), 20);
        // Hosts: 4 pods * 2 edges * 2 = 16.
        assert_eq!(t.hosts.len(), 16);
        // Links: agg-core 4*2*2=16, agg-edge 4*2*2=16.
        assert_eq!(t.links.len(), 32);
        assert!(t.is_connected());
    }

    #[test]
    #[should_panic(expected = "even k")]
    fn fat_tree_rejects_odd_k() {
        let _ = Topology::fat_tree(3);
    }

    #[test]
    fn random_is_connected_and_deterministic() {
        let a = Topology::random(12, 5, 1, 42);
        let b = Topology::random(12, 5, 1, 42);
        assert_eq!(a, b);
        assert!(a.is_connected());
        assert!(a.links.len() >= 11);
        let c = Topology::random(12, 5, 1, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn ports_never_collide() {
        let t = Topology::fat_tree(4);
        let mut used = std::collections::BTreeSet::new();
        for e in t
            .links
            .iter()
            .flat_map(|l| [l.a, l.b])
            .chain(t.hosts.iter().map(|h| h.attach))
        {
            assert!(used.insert((e.dpid, e.port)), "port collision at {e:?}");
        }
    }

    #[test]
    fn hosts_have_unique_addresses() {
        let t = Topology::fat_tree(4);
        let mut macs = std::collections::BTreeSet::new();
        for h in &t.hosts {
            assert!(macs.insert(h.mac));
        }
    }

    #[test]
    fn empty_topology_is_connected() {
        assert!(Topology::new().is_connected());
    }

    #[test]
    fn disconnected_detected() {
        let mut t = Topology::new();
        t.add_switch(DatapathId(1), 2);
        t.add_switch(DatapathId(2), 2);
        assert!(!t.is_connected());
        t.connect(DatapathId(1), DatapathId(2));
        assert!(t.is_connected());
    }
}
