//! A single OpenFlow 1.0 flow table with priorities, wildcards, timeouts,
//! and per-flow counters.
//!
//! The table is the unit of state NetLog must be able to roll back, so every
//! mutation reports exactly what it displaced (as [`FlowEntrySnapshot`]s).
//!
//! # Index structure (DESIGN.md §14)
//!
//! Entries live in `entries`, always sorted by `(priority desc, seq asc)` —
//! the canonical table order that iteration, displaced-snapshot ordering, and
//! the codec all observe. On top sit two derived tiers:
//!
//! - `exact`: a hash index from [`ExactKey`] (the fully-concrete 12-tuple
//!   fingerprint) to the candidates carrying that exact match. Keyed with a
//!   deterministic FNV-1a + splitmix64-avalanche hasher (the `stable_shard`
//!   recipe) so behaviour never depends on std's per-process SipHash seeds.
//! - `wild`: the candidates whose match wildcards at least one field, in
//!   table order.
//!
//! A lookup probes the exact tier once with the packet's own key, then scans
//! only the wildcard tier, stopping as soon as the remaining wildcard
//! candidates rank below the exact hit. Candidates are `(priority, seq)`
//! pairs — unique, and locating one in `entries` is a binary search — so the
//! index never stores positions that an insert or remove would invalidate.
//!
//! The tiers and the expiry watermark are *derived* state: they are rebuilt
//! from `entries` on decode and never encoded, keeping the wire format
//! byte-identical to the historical flat `Vec<FlowEntry>` representation
//! (see [`reference::LinearFlowTable`](crate::reference::LinearFlowTable),
//! the retained linear implementation the equivalence suite checks against).

use crate::clock::{SimDuration, SimTime};
use legosdn_codec::{Codec, CodecError, Reader};
use legosdn_openflow::error::{ErrorCode, ErrorType};
use legosdn_openflow::messages::{
    ErrorMsg, FlowEntrySnapshot, FlowMod, FlowModCommand, FlowRemovedReason, TableStats,
};
use legosdn_openflow::prelude::{Action, ExactKey, Match, Packet, PortNo};
use std::cmp::Reverse;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// An installed flow entry.
#[derive(Clone, Debug, PartialEq, Eq, Codec)]
pub struct FlowEntry {
    pub mat: Match,
    pub priority: u16,
    pub cookie: u64,
    pub idle_timeout: u16,
    pub hard_timeout: u16,
    pub send_flow_removed: bool,
    pub actions: Vec<Action>,
    pub installed_at: SimTime,
    pub last_matched: SimTime,
    pub packet_count: u64,
    pub byte_count: u64,
    /// Monotone insertion sequence; breaks priority ties deterministically.
    pub(crate) seq: u64,
}

impl FlowEntry {
    /// Snapshot this entry for stats replies or NetLog's undo log.
    #[must_use]
    pub fn snapshot(&self, now: SimTime) -> FlowEntrySnapshot {
        let elapsed = now.since(self.installed_at).as_secs();
        // Durations saturate into the 32-bit OpenFlow counters rather than
        // silently truncating once the clock passes u32::MAX seconds.
        let elapsed_sec = u32::try_from(elapsed).unwrap_or(u32::MAX);
        let remaining_hard = if self.hard_timeout > 0 {
            Some(u32::from(self.hard_timeout).saturating_sub(elapsed_sec))
        } else {
            None
        };
        FlowEntrySnapshot {
            mat: self.mat.clone(),
            priority: self.priority,
            cookie: self.cookie,
            idle_timeout: self.idle_timeout,
            hard_timeout: self.hard_timeout,
            remaining_hard,
            duration_sec: elapsed_sec,
            packet_count: self.packet_count,
            byte_count: self.byte_count,
            send_flow_removed: self.send_flow_removed,
            actions: self.actions.clone(),
        }
    }

    /// Does this entry forward out `port`? (The OF 1.0 delete `out_port`
    /// filter semantics.)
    #[must_use]
    pub fn outputs_to(&self, port: PortNo) -> bool {
        self.actions
            .iter()
            .any(|a| matches!(a, Action::Output(p) if *p == port))
    }

    /// The earliest instant at which this entry could expire, if it has any
    /// timeout at all. Idle deadlines move later on every match, so a cached
    /// minimum over these is a conservative (never-late) watermark.
    fn deadline(&self) -> Option<SimTime> {
        let hard = (self.hard_timeout > 0)
            .then(|| self.installed_at + SimDuration::from_secs(u64::from(self.hard_timeout)));
        let idle = (self.idle_timeout > 0)
            .then(|| self.last_matched + SimDuration::from_secs(u64::from(self.idle_timeout)));
        match (hard, idle) {
            (Some(h), Some(i)) => Some(h.min(i)),
            (h, None) => h,
            (None, i) => i,
        }
    }
}

/// What a flow-mod did to the table — the pre-state NetLog records.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FlowModOutcome {
    /// Entries removed or overwritten by the command, snapshotted as of
    /// application time.
    pub displaced: Vec<FlowEntrySnapshot>,
    /// Of the displaced entries, those that requested flow-removed
    /// notifications (deletes only, per OF 1.0).
    pub notify_removed: Vec<FlowEntrySnapshot>,
}

/// A flow expired by the clock.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExpiredFlow {
    pub snapshot: FlowEntrySnapshot,
    pub reason: FlowRemovedReason,
    /// Whether the entry asked for a flow-removed notification.
    pub notify: bool,
}

/// FNV-1a accumulation with a splitmix64 avalanche finisher — the same
/// recipe as `stable_shard` in `legosdn-core`. Deterministic across runs
/// and platforms, unlike std's randomly-seeded SipHash.
#[derive(Clone)]
pub(crate) struct FnvSplitHasher(u64);

impl Default for FnvSplitHasher {
    fn default() -> Self {
        FnvSplitHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for FnvSplitHasher {
    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
        self.0 = h;
    }

    fn finish(&self) -> u64 {
        let mut h = self.0;
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^ (h >> 31)
    }
}

type BuildFnvSplit = BuildHasherDefault<FnvSplitHasher>;

/// A reference to an installed entry that survives inserts and removals:
/// `(priority, seq)` is unique and binary-searchable in the sorted store.
type Cand = (u16, u64);

/// Sort key implementing the table order: priority desc, insertion seq asc.
fn rank(c: Cand) -> (Reverse<u16>, u64) {
    (Reverse(c.0), c.1)
}

/// A single-table OpenFlow 1.0 flow table.
#[derive(Clone, Debug, Default)]
pub struct FlowTable {
    /// Canonical store, sorted by `(priority desc, seq asc)`.
    entries: Vec<FlowEntry>,
    next_seq: u64,
    max_entries: usize,
    lookup_count: u64,
    matched_count: u64,
    /// Exact-match tier: candidates per fully-concrete 12-tuple, each bucket
    /// in table order. Derived from `entries`; never encoded.
    exact: HashMap<ExactKey, Vec<Cand>, BuildFnvSplit>,
    /// Wildcard tier: candidates without an exact key, in table order, each
    /// carrying a copy of its match so the lookup/filter fast paths never
    /// chase back into `entries` for losers. Safe to copy because an
    /// entry's match is immutable from install to removal (modify rewrites
    /// only actions and cookie). Derived from `entries`; never encoded.
    wild: Vec<(Cand, Match)>,
    /// Conservative minimum over entry deadlines: `expire(now)` is a no-op
    /// whenever `now` precedes it. `None` means nothing can ever expire.
    earliest_deadline: Option<SimTime>,
}

impl FlowTable {
    /// A table bounded at `max_entries` (0 means unbounded).
    #[must_use]
    pub fn with_capacity(max_entries: usize) -> Self {
        FlowTable {
            max_entries,
            ..FlowTable::default()
        }
    }

    /// Number of installed entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are installed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over installed entries (highest priority first).
    pub fn iter(&self) -> impl Iterator<Item = &FlowEntry> {
        self.entries.iter()
    }

    /// Table summary counters.
    #[must_use]
    pub fn stats(&self) -> TableStats {
        TableStats {
            active_count: self.entries.len() as u32,
            lookup_count: self.lookup_count,
            matched_count: self.matched_count,
            max_entries: if self.max_entries == 0 {
                u32::MAX
            } else {
                self.max_entries as u32
            },
        }
    }

    /// Position of an indexed candidate in the sorted store.
    fn position_of(&self, c: Cand) -> usize {
        self.entries
            .binary_search_by_key(&rank(c), |e| rank((e.priority, e.seq)))
            .expect("indexed candidate present in entries")
    }

    /// Rebuild both tiers from `entries` (which must already be sorted).
    fn rebuild_tiers(&mut self) {
        self.exact.clear();
        self.wild.clear();
        for e in &self.entries {
            let cand = (e.priority, e.seq);
            match e.mat.exact_key() {
                Some(k) => self.exact.entry(k).or_default().push(cand),
                None => self.wild.push((cand, e.mat.clone())),
            }
        }
    }

    /// Recompute the expiry watermark from the live entries.
    fn recompute_deadline(&mut self) {
        self.earliest_deadline = self.entries.iter().filter_map(FlowEntry::deadline).min();
    }

    /// Insert a fresh entry into the store and its tier, maintaining order
    /// and the watermark.
    fn insert_entry(&mut self, entry: FlowEntry) {
        let cand = (entry.priority, entry.seq);
        if let Some(d) = entry.deadline() {
            self.earliest_deadline = Some(match self.earliest_deadline {
                Some(w) => w.min(d),
                None => d,
            });
        }
        let key = entry.mat.exact_key();
        let mat = entry.mat.clone();
        let pos = self
            .entries
            .partition_point(|e| rank((e.priority, e.seq)) < rank(cand));
        self.entries.insert(pos, entry);
        match key {
            Some(k) => {
                let bucket = self.exact.entry(k).or_default();
                let p = bucket.partition_point(|&c| rank(c) < rank(cand));
                bucket.insert(p, cand);
            }
            None => {
                let p = self.wild.partition_point(|(c, _)| rank(*c) < rank(cand));
                self.wild.insert(p, (cand, mat));
            }
        }
    }

    /// Remove one indexed candidate from the store and its tier. The
    /// watermark is left untouched: removal can only raise the true minimum,
    /// so the cached value stays conservative.
    fn remove_entry(&mut self, cand: Cand) -> FlowEntry {
        let pos = self.position_of(cand);
        let e = self.entries.remove(pos);
        match e.mat.exact_key() {
            Some(k) => {
                let bucket = self.exact.get_mut(&k).expect("tier bucket for entry");
                let i = bucket
                    .iter()
                    .position(|&c| c == cand)
                    .expect("candidate in bucket");
                bucket.remove(i);
                if bucket.is_empty() {
                    self.exact.remove(&k);
                }
            }
            None => {
                let i = self
                    .wild
                    .iter()
                    .position(|(c, _)| *c == cand)
                    .expect("candidate in wild tier");
                self.wild.remove(i);
            }
        }
        e
    }

    /// The unique entry with exactly this `(mat, priority)`, if installed —
    /// the add-replace / strict-modify / strict-delete target.
    fn strict_target(&self, mat: &Match, priority: u16) -> Option<Cand> {
        match mat.exact_key() {
            // Bucket members carry this identical match (the key is
            // injective), so only the priority needs checking.
            Some(k) => self
                .exact
                .get(&k)
                .and_then(|b| b.iter().find(|c| c.0 == priority).copied()),
            // A match without a key can only equal wildcard-tier entries.
            None => self
                .wild
                .iter()
                .find(|(c, m)| c.0 == priority && m == mat)
                .map(|(c, _)| *c),
        }
    }

    /// All candidates whose match `mat` subsumes, in table order — the
    /// non-strict modify/delete and flow-stats filter set.
    fn subsumed_candidates(&self, mat: &Match) -> Vec<Cand> {
        match mat.exact_key() {
            Some(k) => {
                // The exact bucket holds the identical matches. An exact
                // outer can additionally subsume a handful of wildcard-tier
                // entries (non-/32 prefixes masking the same network, PCP
                // presence quirks), so the small wild tier is still scanned;
                // the two sorted runs merge back into table order.
                let bucket: &[Cand] = self.exact.get(&k).map_or(&[], Vec::as_slice);
                let wilds: Vec<Cand> = self
                    .wild
                    .iter()
                    .filter(|(_, m)| mat.subsumes(m))
                    .map(|(c, _)| *c)
                    .collect();
                let mut out = Vec::with_capacity(bucket.len() + wilds.len());
                let (mut i, mut j) = (0, 0);
                while i < bucket.len() && j < wilds.len() {
                    if rank(bucket[i]) < rank(wilds[j]) {
                        out.push(bucket[i]);
                        i += 1;
                    } else {
                        out.push(wilds[j]);
                        j += 1;
                    }
                }
                out.extend_from_slice(&bucket[i..]);
                out.extend_from_slice(&wilds[j..]);
                out
            }
            None => {
                let class = mat.wildcard_class();
                self.entries
                    .iter()
                    .filter(|e| class.could_subsume(e.mat.wildcard_class()) && mat.subsumes(&e.mat))
                    .map(|e| (e.priority, e.seq))
                    .collect()
            }
        }
    }

    /// True when an installed entry at `fm.priority` overlaps `fm.mat`
    /// without being identical to it — the `OFPFF_CHECK_OVERLAP` test,
    /// answered from the tiers instead of a full-table scan.
    fn has_overlap(&self, fm: &FlowMod) -> bool {
        match fm.mat.exact_key() {
            // An exact outer is *identical* to every same-key bucket member
            // (the key is injective) and can neither subsume nor be subsumed
            // by a concrete match with a different key, so distinct-match
            // overlap can only involve the wildcard tier — in either
            // subsumption direction (the non-/32-prefix oddities make even
            // exact-subsumes-wild possible).
            Some(_) => self
                .wild
                .iter()
                .any(|(c, m)| c.0 == fm.priority && (fm.mat.subsumes(m) || m.subsumes(&fm.mat))),
            None => {
                let class = fm.mat.wildcard_class();
                // Wildcard-tier peers at the priority, class-gated on both
                // directions before the field-by-field subsumption test.
                if self.wild.iter().any(|(c, m)| {
                    c.0 == fm.priority
                        && *m != fm.mat
                        && ((class.could_subsume(m.wildcard_class()) && fm.mat.subsumes(m))
                            || (m.wildcard_class().could_subsume(class) && m.subsumes(&fm.mat)))
                }) {
                    return true;
                }
                // Exact-tier entries the wildcard overlaps. A concrete match
                // is never equal to a keyless one, so no identity filter is
                // needed; both directions still apply (see above).
                self.exact.values().flatten().any(|&cand| {
                    if cand.0 != fm.priority {
                        return false;
                    }
                    let e = &self.entries[self.position_of(cand)];
                    fm.mat.subsumes(&e.mat) || e.mat.subsumes(&fm.mat)
                })
            }
        }
    }

    /// Apply a flow-mod. Returns what was displaced, or the OpenFlow error
    /// the switch would send (table full, overlap).
    pub fn apply(&mut self, fm: &FlowMod, now: SimTime) -> Result<FlowModOutcome, ErrorMsg> {
        match fm.command {
            FlowModCommand::Add => self.add(fm, now),
            FlowModCommand::Modify => self.modify(fm, now, false),
            FlowModCommand::ModifyStrict => self.modify(fm, now, true),
            FlowModCommand::Delete => Ok(self.delete(fm, now, false)),
            FlowModCommand::DeleteStrict => Ok(self.delete(fm, now, true)),
        }
    }

    fn add(&mut self, fm: &FlowMod, now: SimTime) -> Result<FlowModOutcome, ErrorMsg> {
        if fm.check_overlap && self.has_overlap(fm) {
            return Err(ErrorMsg {
                err_type: ErrorType::FlowModFailed,
                code: ErrorCode::Overlap,
                data: Vec::new(),
            });
        }
        let mut outcome = FlowModOutcome::default();
        // An add replaces an identical match+priority entry without
        // generating a flow-removed (OF 1.0 §4.6).
        if let Some(cand) = self.strict_target(&fm.mat, fm.priority) {
            let old = self.remove_entry(cand);
            outcome.displaced.push(old.snapshot(now));
        } else if self.max_entries > 0 && self.entries.len() >= self.max_entries {
            return Err(ErrorMsg {
                err_type: ErrorType::FlowModFailed,
                code: ErrorCode::TablesFull,
                data: Vec::new(),
            });
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.insert_entry(FlowEntry {
            mat: fm.mat.clone(),
            priority: fm.priority,
            cookie: fm.cookie,
            idle_timeout: fm.idle_timeout,
            hard_timeout: fm.hard_timeout,
            send_flow_removed: fm.send_flow_removed,
            actions: fm.actions.clone(),
            installed_at: now,
            last_matched: now,
            packet_count: 0,
            byte_count: 0,
            seq,
        });
        Ok(outcome)
    }

    fn modify(
        &mut self,
        fm: &FlowMod,
        now: SimTime,
        strict: bool,
    ) -> Result<FlowModOutcome, ErrorMsg> {
        let mut outcome = FlowModOutcome::default();
        let targets: Vec<Cand> = if strict {
            self.strict_target(&fm.mat, fm.priority)
                .into_iter()
                .collect()
        } else {
            self.subsumed_candidates(&fm.mat)
        };
        for cand in &targets {
            let pos = self.position_of(*cand);
            let e = &mut self.entries[pos];
            outcome.displaced.push(e.snapshot(now));
            e.actions = fm.actions.clone();
            e.cookie = fm.cookie;
        }
        if targets.is_empty() {
            // OF 1.0: a modify that matches nothing behaves like an add.
            return self.add(fm, now);
        }
        Ok(outcome)
    }

    fn delete(&mut self, fm: &FlowMod, now: SimTime, strict: bool) -> FlowModOutcome {
        let mut outcome = FlowModOutcome::default();
        let out_port = fm.out_port;
        let targets: Vec<Cand> = if strict {
            self.strict_target(&fm.mat, fm.priority)
                .into_iter()
                .collect()
        } else {
            self.subsumed_candidates(&fm.mat)
        };
        for cand in targets {
            if out_port != PortNo::None
                && !self.entries[self.position_of(cand)].outputs_to(out_port)
            {
                continue;
            }
            let e = self.remove_entry(cand);
            let snap = e.snapshot(now);
            if e.send_flow_removed {
                outcome.notify_removed.push(snap.clone());
            }
            outcome.displaced.push(snap);
        }
        outcome
    }

    /// The winning candidate for `pkt` on `in_port`: the highest-priority
    /// (earliest-seq on ties) matching entry, found by one exact-tier probe
    /// plus a wildcard-tier scan that stops as soon as the remaining
    /// wildcard candidates rank below the exact hit.
    fn find_best(&self, pkt: &Packet, in_port: PortNo) -> Option<Cand> {
        let exact_best = ExactKey::of_packet(pkt, in_port)
            .and_then(|k| self.exact.get(&k))
            .and_then(|b| b.first().copied());
        for (cand, m) in &self.wild {
            if let Some(best) = exact_best {
                if rank(*cand) >= rank(best) {
                    break;
                }
            }
            if m.matches(pkt, in_port) {
                return Some(*cand);
            }
        }
        exact_best
    }

    /// Match `pkt` arriving on `in_port`, updating counters on hit.
    ///
    /// Highest priority wins; ties break by insertion order, matching the
    /// deterministic behaviour of software switches.
    pub fn lookup(&mut self, pkt: &Packet, in_port: PortNo, now: SimTime) -> Option<&FlowEntry> {
        self.lookup_count += 1;
        let winner = self.find_best(pkt, in_port)?;
        let wire_len = u64::from(pkt.wire_len());
        let pos = self.position_of(winner);
        {
            // The idle deadline only moves later here, so the cached expiry
            // watermark stays conservative without an update.
            let e = &mut self.entries[pos];
            e.packet_count += 1;
            e.byte_count += wire_len;
            e.last_matched = now;
        }
        self.matched_count += 1;
        Some(&self.entries[pos])
    }

    /// Match without mutating counters (used by invariant checkers).
    #[must_use]
    pub fn peek(&self, pkt: &Packet, in_port: PortNo) -> Option<&FlowEntry> {
        self.find_best(pkt, in_port)
            .map(|c| &self.entries[self.position_of(c)])
    }

    /// Expire idle and hard timeouts as of `now`. Returns immediately —
    /// without scanning — while `now` precedes the earliest possible
    /// deadline.
    pub fn expire(&mut self, now: SimTime) -> Vec<ExpiredFlow> {
        match self.earliest_deadline {
            Some(watermark) if now >= watermark => {}
            _ => return Vec::new(),
        }
        let mut expired = Vec::new();
        self.entries.retain(|e| {
            let hard_hit = e.hard_timeout > 0
                && now.since(e.installed_at).as_secs() >= u64::from(e.hard_timeout);
            let idle_hit = e.idle_timeout > 0
                && now.since(e.last_matched).as_secs() >= u64::from(e.idle_timeout);
            if hard_hit || idle_hit {
                expired.push(ExpiredFlow {
                    snapshot: e.snapshot(now),
                    reason: if hard_hit {
                        FlowRemovedReason::HardTimeout
                    } else {
                        FlowRemovedReason::IdleTimeout
                    },
                    notify: e.send_flow_removed,
                });
                false
            } else {
                true
            }
        });
        if !expired.is_empty() {
            self.rebuild_tiers();
        }
        // The watermark may have been stale-early (idle deadlines moved by
        // traffic); recompute from the survivors either way.
        self.recompute_deadline();
        expired
    }

    /// Snapshot entries subsumed by `mat` (and forwarding to `out_port`, if
    /// not `None`) — the flow-stats request filter.
    #[must_use]
    pub fn snapshot_matching(
        &self,
        mat: &Match,
        out_port: PortNo,
        now: SimTime,
    ) -> Vec<FlowEntrySnapshot> {
        self.subsumed_candidates(mat)
            .into_iter()
            .map(|c| &self.entries[self.position_of(c)])
            .filter(|e| out_port == PortNo::None || e.outputs_to(out_port))
            .map(|e| e.snapshot(now))
            .collect()
    }

    /// Restore counters onto an entry (NetLog's counter-cache uses this when
    /// reinstalling a rolled-back entry).
    pub fn restore_counters(
        &mut self,
        mat: &Match,
        priority: u16,
        packets: u64,
        bytes: u64,
    ) -> bool {
        match self.strict_target(mat, priority) {
            Some(cand) => {
                let pos = self.position_of(cand);
                let e = &mut self.entries[pos];
                e.packet_count = packets;
                e.byte_count = bytes;
                true
            }
            None => false,
        }
    }
}

// Manual impl: only the five logical fields travel, in the same order the
// historical `#[derive(Codec)]` on the flat representation emitted them, so
// snapshots and NetLog undo records stay byte-identical across the index
// refactor. The tiers and watermark are rebuilt from the entries on decode.
impl Codec for FlowTable {
    fn encode(&self, out: &mut Vec<u8>) {
        self.entries.encode(out);
        self.next_seq.encode(out);
        self.max_entries.encode(out);
        self.lookup_count.encode(out);
        self.matched_count.encode(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let mut t = FlowTable {
            entries: Vec::<FlowEntry>::decode(r)?,
            next_seq: u64::decode(r)?,
            max_entries: usize::decode(r)?,
            lookup_count: u64::decode(r)?,
            matched_count: u64::decode(r)?,
            ..FlowTable::default()
        };
        // Defensive against hand-built input: canonical order is part of the
        // determinism contract, and `next_seq` must stay ahead of every
        // installed entry. A well-formed encoding is already sorted (the
        // stable sort is then a no-op pass).
        t.entries.sort_by_key(|e| (Reverse(e.priority), e.seq));
        if let Some(max_seq) = t.entries.iter().map(|e| e.seq).max() {
            t.next_seq = t.next_seq.max(max_seq + 1);
        }
        t.rebuild_tiers();
        t.recompute_deadline();
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legosdn_openflow::prelude::{Ipv4Addr, MacAddr};

    fn pkt_to(dst: u64) -> Packet {
        Packet::ethernet(MacAddr::from_index(1), MacAddr::from_index(dst))
    }

    fn add(mat: Match, priority: u16, port: u16) -> FlowMod {
        FlowMod::add(mat)
            .priority(priority)
            .action(Action::Output(PortNo::Phys(port)))
    }

    #[test]
    fn empty_table_misses() {
        let mut t = FlowTable::default();
        assert!(t
            .lookup(&pkt_to(2), PortNo::Phys(1), SimTime::ZERO)
            .is_none());
        assert_eq!(t.stats().lookup_count, 1);
        assert_eq!(t.stats().matched_count, 0);
    }

    #[test]
    fn add_and_match_updates_counters() {
        let mut t = FlowTable::default();
        let m = Match::eth_dst(MacAddr::from_index(2));
        t.apply(&add(m, 10, 3), SimTime::ZERO).unwrap();
        let p = pkt_to(2);
        let hit = t
            .lookup(&p, PortNo::Phys(1), SimTime::from_secs(1))
            .unwrap();
        assert_eq!(hit.packet_count, 1);
        assert_eq!(hit.byte_count, u64::from(p.wire_len()));
        assert_eq!(hit.last_matched, SimTime::from_secs(1));
    }

    #[test]
    fn priority_order_wins() {
        let mut t = FlowTable::default();
        t.apply(&add(Match::any(), 1, 1), SimTime::ZERO).unwrap();
        t.apply(
            &add(Match::eth_dst(MacAddr::from_index(2)), 100, 2),
            SimTime::ZERO,
        )
        .unwrap();
        let hit = t
            .lookup(&pkt_to(2), PortNo::Phys(9), SimTime::ZERO)
            .unwrap();
        assert_eq!(hit.priority, 100);
        // A packet to someone else falls to the low-priority catch-all.
        let hit = t
            .lookup(&pkt_to(3), PortNo::Phys(9), SimTime::ZERO)
            .unwrap();
        assert_eq!(hit.priority, 1);
    }

    #[test]
    fn equal_priority_ties_break_by_insertion() {
        let mut t = FlowTable::default();
        t.apply(&add(Match::any(), 5, 1), SimTime::ZERO).unwrap();
        t.apply(
            &add(Match::eth_dst(MacAddr::from_index(2)), 5, 2),
            SimTime::ZERO,
        )
        .unwrap();
        let hit = t
            .lookup(&pkt_to(2), PortNo::Phys(9), SimTime::ZERO)
            .unwrap();
        assert_eq!(hit.actions, vec![Action::Output(PortNo::Phys(1))]);
    }

    #[test]
    fn add_replaces_identical_match_priority() {
        let mut t = FlowTable::default();
        let m = Match::eth_dst(MacAddr::from_index(2));
        t.apply(&add(m.clone(), 5, 1), SimTime::ZERO).unwrap();
        let out = t
            .apply(&add(m.clone(), 5, 9), SimTime::from_secs(2))
            .unwrap();
        assert_eq!(out.displaced.len(), 1);
        assert_eq!(
            out.displaced[0].actions,
            vec![Action::Output(PortNo::Phys(1))]
        );
        assert_eq!(t.len(), 1);
        let hit = t
            .lookup(&pkt_to(2), PortNo::Phys(1), SimTime::ZERO)
            .unwrap();
        assert_eq!(hit.actions, vec![Action::Output(PortNo::Phys(9))]);
    }

    #[test]
    fn table_full_errors() {
        let mut t = FlowTable::with_capacity(2);
        t.apply(
            &add(Match::eth_dst(MacAddr::from_index(1)), 5, 1),
            SimTime::ZERO,
        )
        .unwrap();
        t.apply(
            &add(Match::eth_dst(MacAddr::from_index(2)), 5, 1),
            SimTime::ZERO,
        )
        .unwrap();
        let err = t.apply(
            &add(Match::eth_dst(MacAddr::from_index(3)), 5, 1),
            SimTime::ZERO,
        );
        assert_eq!(err.unwrap_err().code, ErrorCode::TablesFull);
        // Replacing an existing entry still works at capacity.
        assert!(t
            .apply(
                &add(Match::eth_dst(MacAddr::from_index(2)), 5, 7),
                SimTime::ZERO
            )
            .is_ok());
    }

    #[test]
    fn check_overlap_rejects_overlapping_same_priority() {
        let mut t = FlowTable::default();
        t.apply(
            &add(Match::eth_dst(MacAddr::from_index(2)), 5, 1),
            SimTime::ZERO,
        )
        .unwrap();
        let mut fm = add(Match::any(), 5, 2);
        fm.check_overlap = true;
        assert_eq!(
            t.apply(&fm, SimTime::ZERO).unwrap_err().code,
            ErrorCode::Overlap
        );
        // Different priority: fine.
        let mut fm = add(Match::any(), 6, 2);
        fm.check_overlap = true;
        assert!(t.apply(&fm, SimTime::ZERO).is_ok());
    }

    #[test]
    fn non_strict_delete_subsumes() {
        let mut t = FlowTable::default();
        t.apply(
            &add(Match::eth_dst(MacAddr::from_index(2)), 5, 1),
            SimTime::ZERO,
        )
        .unwrap();
        t.apply(
            &add(Match::eth_dst(MacAddr::from_index(3)), 9, 1),
            SimTime::ZERO,
        )
        .unwrap();
        let out = t
            .apply(&FlowMod::delete(Match::any()), SimTime::ZERO)
            .unwrap();
        assert_eq!(out.displaced.len(), 2);
        assert!(t.is_empty());
    }

    #[test]
    fn strict_delete_requires_exact() {
        let mut t = FlowTable::default();
        let m = Match::eth_dst(MacAddr::from_index(2));
        t.apply(&add(m.clone(), 5, 1), SimTime::ZERO).unwrap();
        // Wrong priority: no-op.
        let out = t
            .apply(&FlowMod::delete_strict(m.clone(), 6), SimTime::ZERO)
            .unwrap();
        assert!(out.displaced.is_empty());
        assert_eq!(t.len(), 1);
        let out = t
            .apply(&FlowMod::delete_strict(m, 5), SimTime::ZERO)
            .unwrap();
        assert_eq!(out.displaced.len(), 1);
        assert!(t.is_empty());
    }

    #[test]
    fn delete_filters_by_out_port() {
        let mut t = FlowTable::default();
        t.apply(
            &add(Match::eth_dst(MacAddr::from_index(2)), 5, 1),
            SimTime::ZERO,
        )
        .unwrap();
        t.apply(
            &add(Match::eth_dst(MacAddr::from_index(3)), 5, 2),
            SimTime::ZERO,
        )
        .unwrap();
        let mut del = FlowMod::delete(Match::any());
        del.out_port = PortNo::Phys(2);
        let out = t.apply(&del, SimTime::ZERO).unwrap();
        assert_eq!(out.displaced.len(), 1);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn delete_notifies_when_requested() {
        let mut t = FlowTable::default();
        let fm = add(Match::any(), 5, 1).notify_removed();
        t.apply(&fm, SimTime::ZERO).unwrap();
        let out = t
            .apply(&FlowMod::delete(Match::any()), SimTime::ZERO)
            .unwrap();
        assert_eq!(out.notify_removed.len(), 1);
    }

    #[test]
    fn modify_rewrites_actions_preserving_counters() {
        let mut t = FlowTable::default();
        let m = Match::eth_dst(MacAddr::from_index(2));
        t.apply(&add(m.clone(), 5, 1), SimTime::ZERO).unwrap();
        t.lookup(&pkt_to(2), PortNo::Phys(1), SimTime::ZERO)
            .unwrap();
        let mut fm = add(m, 5, 9);
        fm.command = FlowModCommand::ModifyStrict;
        let out = t.apply(&fm, SimTime::ZERO).unwrap();
        assert_eq!(out.displaced.len(), 1);
        let e = t.iter().next().unwrap();
        assert_eq!(e.actions, vec![Action::Output(PortNo::Phys(9))]);
        assert_eq!(e.packet_count, 1, "modify must not reset counters");
    }

    #[test]
    fn modify_of_nothing_adds() {
        let mut t = FlowTable::default();
        let mut fm = add(Match::any(), 5, 1);
        fm.command = FlowModCommand::Modify;
        t.apply(&fm, SimTime::ZERO).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn hard_timeout_expires() {
        let mut t = FlowTable::default();
        let fm = add(Match::any(), 5, 1).hard_timeout(10).notify_removed();
        t.apply(&fm, SimTime::ZERO).unwrap();
        assert!(t.expire(SimTime::from_secs(9)).is_empty());
        let exp = t.expire(SimTime::from_secs(10));
        assert_eq!(exp.len(), 1);
        assert_eq!(exp[0].reason, FlowRemovedReason::HardTimeout);
        assert!(exp[0].notify);
        assert!(t.is_empty());
    }

    #[test]
    fn idle_timeout_resets_on_match() {
        let mut t = FlowTable::default();
        let fm = add(Match::any(), 5, 1).idle_timeout(5);
        t.apply(&fm, SimTime::ZERO).unwrap();
        // Traffic at t=4 pushes expiry to t=9.
        t.lookup(&pkt_to(2), PortNo::Phys(1), SimTime::from_secs(4));
        assert!(t.expire(SimTime::from_secs(8)).is_empty());
        let exp = t.expire(SimTime::from_secs(9));
        assert_eq!(exp.len(), 1);
        assert_eq!(exp[0].reason, FlowRemovedReason::IdleTimeout);
    }

    #[test]
    fn snapshot_remaining_hard_counts_down() {
        let mut t = FlowTable::default();
        t.apply(&add(Match::any(), 5, 1).hard_timeout(60), SimTime::ZERO)
            .unwrap();
        let snaps = t.snapshot_matching(&Match::any(), PortNo::None, SimTime::from_secs(18));
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].remaining_hard, Some(42));
        assert_eq!(snaps[0].duration_sec, 18);
    }

    #[test]
    fn snapshot_matching_filters() {
        let mut t = FlowTable::default();
        t.apply(
            &add(Match::eth_dst(MacAddr::from_index(2)), 5, 1),
            SimTime::ZERO,
        )
        .unwrap();
        t.apply(
            &add(Match::eth_dst(MacAddr::from_index(3)), 5, 2),
            SimTime::ZERO,
        )
        .unwrap();
        let all = t.snapshot_matching(&Match::any(), PortNo::None, SimTime::ZERO);
        assert_eq!(all.len(), 2);
        let one = t.snapshot_matching(&Match::any(), PortNo::Phys(2), SimTime::ZERO);
        assert_eq!(one.len(), 1);
        let narrow = t.snapshot_matching(
            &Match::eth_dst(MacAddr::from_index(3)),
            PortNo::None,
            SimTime::ZERO,
        );
        assert_eq!(narrow.len(), 1);
    }

    #[test]
    fn restore_counters_targets_exact_entry() {
        let mut t = FlowTable::default();
        let m = Match::eth_dst(MacAddr::from_index(2));
        t.apply(&add(m.clone(), 5, 1), SimTime::ZERO).unwrap();
        assert!(t.restore_counters(&m, 5, 77, 7700));
        assert!(!t.restore_counters(&m, 6, 0, 0));
        let e = t.iter().next().unwrap();
        assert_eq!((e.packet_count, e.byte_count), (77, 7700));
    }

    #[test]
    fn peek_does_not_count() {
        let mut t = FlowTable::default();
        t.apply(&add(Match::any(), 5, 1), SimTime::ZERO).unwrap();
        assert!(t.peek(&pkt_to(2), PortNo::Phys(1)).is_some());
        assert_eq!(t.stats().lookup_count, 0);
        assert_eq!(t.iter().next().unwrap().packet_count, 0);
    }

    fn tcp_pkt(src: u64, dst: u64, sport: u16, dport: u16) -> Packet {
        Packet::tcp(
            MacAddr::from_index(src),
            MacAddr::from_index(dst),
            Ipv4Addr::from_index(src as u32),
            Ipv4Addr::from_index(dst as u32),
            sport,
            dport,
        )
    }

    #[test]
    fn exact_tier_and_wildcard_tier_agree_on_priority() {
        let mut t = FlowTable::default();
        let p = tcp_pkt(1, 2, 4000, 80);
        // Exact entry at priority 10, overlapping wildcard at 50: wildcard
        // must win even though the exact tier probes first.
        t.apply(
            &add(Match::from_packet(&p, PortNo::Phys(1)), 10, 3),
            SimTime::ZERO,
        )
        .unwrap();
        t.apply(
            &add(Match::eth_dst(MacAddr::from_index(2)), 50, 4),
            SimTime::ZERO,
        )
        .unwrap();
        let hit = t.lookup(&p, PortNo::Phys(1), SimTime::ZERO).unwrap();
        assert_eq!(hit.priority, 50);
        // Drop the wildcard: the exact entry takes over.
        t.apply(
            &FlowMod::delete_strict(Match::eth_dst(MacAddr::from_index(2)), 50),
            SimTime::ZERO,
        )
        .unwrap();
        let hit = t.lookup(&p, PortNo::Phys(1), SimTime::ZERO).unwrap();
        assert_eq!(hit.priority, 10);
        // A same-priority wildcard inserted later loses the seq tiebreak.
        t.apply(
            &add(Match::eth_dst(MacAddr::from_index(2)), 10, 5),
            SimTime::ZERO,
        )
        .unwrap();
        let hit = t.lookup(&p, PortNo::Phys(1), SimTime::ZERO).unwrap();
        assert_eq!(hit.actions, vec![Action::Output(PortNo::Phys(3))]);
    }

    #[test]
    fn snapshot_saturates_past_u32_max_seconds() {
        // Regression: `duration_sec` and the `remaining_hard` subtrahend
        // used to truncate with `as u32` once the sim clock passed
        // u32::MAX seconds, wrapping durations back toward zero.
        let mut t = FlowTable::default();
        t.apply(&add(Match::any(), 5, 1).hard_timeout(60), SimTime::ZERO)
            .unwrap();
        let far = SimTime::from_secs(u64::from(u32::MAX) + 100);
        let snaps = t.snapshot_matching(&Match::any(), PortNo::None, far);
        assert_eq!(snaps[0].duration_sec, u32::MAX, "saturates, not wraps");
        assert_eq!(snaps[0].remaining_hard, Some(0));
    }

    #[test]
    fn expire_early_returns_before_watermark() {
        let mut t = FlowTable::default();
        // No timeouts anywhere: no deadline, expire never scans.
        t.apply(&add(Match::any(), 5, 1), SimTime::ZERO).unwrap();
        assert!(t.expire(SimTime::from_secs(1_000_000)).is_empty());
        assert_eq!(t.len(), 1);
        // A timeout sets the watermark; traffic moves the true idle deadline
        // later than the stale watermark, which must still never expire the
        // entry early.
        t.apply(&add(Match::any(), 9, 1).idle_timeout(10), SimTime::ZERO)
            .unwrap();
        t.lookup(&pkt_to(2), PortNo::Phys(1), SimTime::from_secs(8));
        assert!(t.expire(SimTime::from_secs(12)).is_empty());
        assert_eq!(t.len(), 2);
        let exp = t.expire(SimTime::from_secs(18));
        assert_eq!(exp.len(), 1);
        assert_eq!(exp[0].reason, FlowRemovedReason::IdleTimeout);
    }

    #[test]
    fn codec_roundtrip_preserves_behaviour_and_bytes() {
        let mut t = FlowTable::with_capacity(100);
        let p = tcp_pkt(1, 2, 4000, 80);
        t.apply(
            &add(Match::from_packet(&p, PortNo::Phys(1)), 10, 3).idle_timeout(30),
            SimTime::ZERO,
        )
        .unwrap();
        t.apply(
            &add(Match::eth_dst(MacAddr::from_index(7)), 5, 2),
            SimTime::ZERO,
        )
        .unwrap();
        t.lookup(&p, PortNo::Phys(1), SimTime::from_secs(1));
        let bytes = legosdn_codec::to_bytes(&t).unwrap();
        let mut back: FlowTable = legosdn_codec::from_bytes(&bytes).unwrap();
        // The rebuilt index must encode identically and behave identically.
        assert_eq!(legosdn_codec::to_bytes(&back).unwrap(), bytes);
        assert_eq!(back.len(), t.len());
        assert_eq!(back.stats(), t.stats());
        let (a, b) = (
            t.lookup(&p, PortNo::Phys(1), SimTime::from_secs(2))
                .cloned(),
            back.lookup(&p, PortNo::Phys(1), SimTime::from_secs(2))
                .cloned(),
        );
        assert_eq!(a, b);
        // Adds after decode continue the seq stream, not restart it.
        t.apply(&add(Match::any(), 5, 9), SimTime::ZERO).unwrap();
        back.apply(&add(Match::any(), 5, 9), SimTime::ZERO).unwrap();
        assert_eq!(
            legosdn_codec::to_bytes(&t).unwrap(),
            legosdn_codec::to_bytes(&back).unwrap()
        );
    }

    #[test]
    fn exact_delete_still_catches_subsumed_wildcard_oddities() {
        // An exact match subsumes a same-network non-/32-prefix entry; the
        // indexed fast path must not lose it to the wildcard tier.
        let mut t = FlowTable::default();
        let p = tcp_pkt(1, 2, 4000, 80);
        let exact = Match::from_packet(&p, PortNo::Phys(1));
        let mut odd = exact.clone();
        odd.ip_dst = odd.ip_dst.map(|(net, _)| (net, 40)); // masks like /32
        assert!(odd.exact_key().is_none());
        assert!(exact.subsumes(&odd));
        t.apply(&add(exact.clone(), 5, 1), SimTime::ZERO).unwrap();
        t.apply(&add(odd, 7, 2), SimTime::ZERO).unwrap();
        let out = t
            .apply(&FlowMod::delete(exact.clone()), SimTime::ZERO)
            .unwrap();
        assert_eq!(out.displaced.len(), 2, "both tiers displaced");
        // Displaced snapshots arrive in table order: priority 7 first.
        assert_eq!(out.displaced[0].priority, 7);
        assert_eq!(out.displaced[1].priority, 5);
        assert!(t.is_empty());
    }
}
