//! A single OpenFlow 1.0 flow table with priorities, wildcards, timeouts,
//! and per-flow counters.
//!
//! The table is the unit of state NetLog must be able to roll back, so every
//! mutation reports exactly what it displaced (as [`FlowEntrySnapshot`]s).

use crate::clock::SimTime;
use legosdn_codec::Codec;
use legosdn_openflow::error::{ErrorCode, ErrorType};
use legosdn_openflow::messages::{
    ErrorMsg, FlowEntrySnapshot, FlowMod, FlowModCommand, FlowRemovedReason, TableStats,
};
use legosdn_openflow::prelude::{Action, Match, Packet, PortNo};

/// An installed flow entry.
#[derive(Clone, Debug, PartialEq, Eq, Codec)]
pub struct FlowEntry {
    pub mat: Match,
    pub priority: u16,
    pub cookie: u64,
    pub idle_timeout: u16,
    pub hard_timeout: u16,
    pub send_flow_removed: bool,
    pub actions: Vec<Action>,
    pub installed_at: SimTime,
    pub last_matched: SimTime,
    pub packet_count: u64,
    pub byte_count: u64,
    /// Monotone insertion sequence; breaks priority ties deterministically.
    seq: u64,
}

impl FlowEntry {
    /// Snapshot this entry for stats replies or NetLog's undo log.
    #[must_use]
    pub fn snapshot(&self, now: SimTime) -> FlowEntrySnapshot {
        let elapsed = now.since(self.installed_at).as_secs();
        let remaining_hard = if self.hard_timeout > 0 {
            Some(u32::from(self.hard_timeout).saturating_sub(elapsed as u32))
        } else {
            None
        };
        FlowEntrySnapshot {
            mat: self.mat.clone(),
            priority: self.priority,
            cookie: self.cookie,
            idle_timeout: self.idle_timeout,
            hard_timeout: self.hard_timeout,
            remaining_hard,
            duration_sec: elapsed as u32,
            packet_count: self.packet_count,
            byte_count: self.byte_count,
            send_flow_removed: self.send_flow_removed,
            actions: self.actions.clone(),
        }
    }

    /// Does this entry forward out `port`? (The OF 1.0 delete `out_port`
    /// filter semantics.)
    #[must_use]
    pub fn outputs_to(&self, port: PortNo) -> bool {
        self.actions
            .iter()
            .any(|a| matches!(a, Action::Output(p) if *p == port))
    }
}

/// What a flow-mod did to the table — the pre-state NetLog records.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FlowModOutcome {
    /// Entries removed or overwritten by the command, snapshotted as of
    /// application time.
    pub displaced: Vec<FlowEntrySnapshot>,
    /// Of the displaced entries, those that requested flow-removed
    /// notifications (deletes only, per OF 1.0).
    pub notify_removed: Vec<FlowEntrySnapshot>,
}

/// A flow expired by the clock.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExpiredFlow {
    pub snapshot: FlowEntrySnapshot,
    pub reason: FlowRemovedReason,
    /// Whether the entry asked for a flow-removed notification.
    pub notify: bool,
}

/// A single-table OpenFlow 1.0 flow table.
#[derive(Clone, Debug, Default, Codec)]
pub struct FlowTable {
    entries: Vec<FlowEntry>,
    next_seq: u64,
    max_entries: usize,
    lookup_count: u64,
    matched_count: u64,
}

impl FlowTable {
    /// A table bounded at `max_entries` (0 means unbounded).
    #[must_use]
    pub fn with_capacity(max_entries: usize) -> Self {
        FlowTable {
            max_entries,
            ..FlowTable::default()
        }
    }

    /// Number of installed entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are installed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over installed entries (highest priority first).
    pub fn iter(&self) -> impl Iterator<Item = &FlowEntry> {
        self.entries.iter()
    }

    /// Table summary counters.
    #[must_use]
    pub fn stats(&self) -> TableStats {
        TableStats {
            active_count: self.entries.len() as u32,
            lookup_count: self.lookup_count,
            matched_count: self.matched_count,
            max_entries: if self.max_entries == 0 {
                u32::MAX
            } else {
                self.max_entries as u32
            },
        }
    }

    /// Apply a flow-mod. Returns what was displaced, or the OpenFlow error
    /// the switch would send (table full, overlap).
    pub fn apply(&mut self, fm: &FlowMod, now: SimTime) -> Result<FlowModOutcome, ErrorMsg> {
        match fm.command {
            FlowModCommand::Add => self.add(fm, now),
            FlowModCommand::Modify => self.modify(fm, now, false),
            FlowModCommand::ModifyStrict => self.modify(fm, now, true),
            FlowModCommand::Delete => Ok(self.delete(fm, now, false)),
            FlowModCommand::DeleteStrict => Ok(self.delete(fm, now, true)),
        }
    }

    fn add(&mut self, fm: &FlowMod, now: SimTime) -> Result<FlowModOutcome, ErrorMsg> {
        if fm.check_overlap
            && self.entries.iter().any(|e| {
                e.priority == fm.priority
                    && e.mat != fm.mat
                    && (e.mat.subsumes(&fm.mat) || fm.mat.subsumes(&e.mat))
            })
        {
            return Err(ErrorMsg {
                err_type: ErrorType::FlowModFailed,
                code: ErrorCode::Overlap,
                data: Vec::new(),
            });
        }
        let mut outcome = FlowModOutcome::default();
        // An add replaces an identical match+priority entry without
        // generating a flow-removed (OF 1.0 §4.6).
        if let Some(pos) = self
            .entries
            .iter()
            .position(|e| e.priority == fm.priority && e.mat == fm.mat)
        {
            let old = self.entries.remove(pos);
            outcome.displaced.push(old.snapshot(now));
        } else if self.max_entries > 0 && self.entries.len() >= self.max_entries {
            return Err(ErrorMsg {
                err_type: ErrorType::FlowModFailed,
                code: ErrorCode::TablesFull,
                data: Vec::new(),
            });
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = FlowEntry {
            mat: fm.mat.clone(),
            priority: fm.priority,
            cookie: fm.cookie,
            idle_timeout: fm.idle_timeout,
            hard_timeout: fm.hard_timeout,
            send_flow_removed: fm.send_flow_removed,
            actions: fm.actions.clone(),
            installed_at: now,
            last_matched: now,
            packet_count: 0,
            byte_count: 0,
            seq,
        };
        // Keep sorted: priority desc, then insertion order.
        let pos = self
            .entries
            .iter()
            .position(|e| e.priority < entry.priority)
            .unwrap_or(self.entries.len());
        self.entries.insert(pos, entry);
        Ok(outcome)
    }

    fn modify(
        &mut self,
        fm: &FlowMod,
        now: SimTime,
        strict: bool,
    ) -> Result<FlowModOutcome, ErrorMsg> {
        let mut outcome = FlowModOutcome::default();
        let mut touched = false;
        for e in &mut self.entries {
            let hit = if strict {
                e.priority == fm.priority && e.mat == fm.mat
            } else {
                fm.mat.subsumes(&e.mat)
            };
            if hit {
                outcome.displaced.push(e.snapshot(now));
                e.actions = fm.actions.clone();
                e.cookie = fm.cookie;
                touched = true;
            }
        }
        if !touched {
            // OF 1.0: a modify that matches nothing behaves like an add.
            return self.add(fm, now);
        }
        Ok(outcome)
    }

    fn delete(&mut self, fm: &FlowMod, now: SimTime, strict: bool) -> FlowModOutcome {
        let mut outcome = FlowModOutcome::default();
        let out_port = fm.out_port;
        self.entries.retain(|e| {
            let hit = if strict {
                e.priority == fm.priority && e.mat == fm.mat
            } else {
                fm.mat.subsumes(&e.mat)
            };
            let hit = hit && (out_port == PortNo::None || e.outputs_to(out_port));
            if hit {
                let snap = e.snapshot(now);
                if e.send_flow_removed {
                    outcome.notify_removed.push(snap.clone());
                }
                outcome.displaced.push(snap);
            }
            !hit
        });
        outcome
    }

    /// Match `pkt` arriving on `in_port`, updating counters on hit.
    ///
    /// Highest priority wins; ties break by insertion order, matching the
    /// deterministic behaviour of software switches.
    pub fn lookup(&mut self, pkt: &Packet, in_port: PortNo, now: SimTime) -> Option<&FlowEntry> {
        self.lookup_count += 1;
        let wire_len = u64::from(pkt.wire_len());
        for e in &mut self.entries {
            if e.mat.matches(pkt, in_port) {
                e.packet_count += 1;
                e.byte_count += wire_len;
                e.last_matched = now;
                self.matched_count += 1;
                return Some(e);
            }
        }
        None
    }

    /// Match without mutating counters (used by invariant checkers).
    #[must_use]
    pub fn peek(&self, pkt: &Packet, in_port: PortNo) -> Option<&FlowEntry> {
        self.entries.iter().find(|e| e.mat.matches(pkt, in_port))
    }

    /// Expire idle and hard timeouts as of `now`.
    pub fn expire(&mut self, now: SimTime) -> Vec<ExpiredFlow> {
        let mut expired = Vec::new();
        self.entries.retain(|e| {
            let hard_hit = e.hard_timeout > 0
                && now.since(e.installed_at).as_secs() >= u64::from(e.hard_timeout);
            let idle_hit = e.idle_timeout > 0
                && now.since(e.last_matched).as_secs() >= u64::from(e.idle_timeout);
            if hard_hit || idle_hit {
                expired.push(ExpiredFlow {
                    snapshot: e.snapshot(now),
                    reason: if hard_hit {
                        FlowRemovedReason::HardTimeout
                    } else {
                        FlowRemovedReason::IdleTimeout
                    },
                    notify: e.send_flow_removed,
                });
                false
            } else {
                true
            }
        });
        expired
    }

    /// Snapshot entries subsumed by `mat` (and forwarding to `out_port`, if
    /// not `None`) — the flow-stats request filter.
    #[must_use]
    pub fn snapshot_matching(
        &self,
        mat: &Match,
        out_port: PortNo,
        now: SimTime,
    ) -> Vec<FlowEntrySnapshot> {
        self.entries
            .iter()
            .filter(|e| mat.subsumes(&e.mat))
            .filter(|e| out_port == PortNo::None || e.outputs_to(out_port))
            .map(|e| e.snapshot(now))
            .collect()
    }

    /// Restore counters onto an entry (NetLog's counter-cache uses this when
    /// reinstalling a rolled-back entry).
    pub fn restore_counters(
        &mut self,
        mat: &Match,
        priority: u16,
        packets: u64,
        bytes: u64,
    ) -> bool {
        for e in &mut self.entries {
            if e.priority == priority && e.mat == *mat {
                e.packet_count = packets;
                e.byte_count = bytes;
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legosdn_openflow::prelude::MacAddr;

    fn pkt_to(dst: u64) -> Packet {
        Packet::ethernet(MacAddr::from_index(1), MacAddr::from_index(dst))
    }

    fn add(mat: Match, priority: u16, port: u16) -> FlowMod {
        FlowMod::add(mat)
            .priority(priority)
            .action(Action::Output(PortNo::Phys(port)))
    }

    #[test]
    fn empty_table_misses() {
        let mut t = FlowTable::default();
        assert!(t
            .lookup(&pkt_to(2), PortNo::Phys(1), SimTime::ZERO)
            .is_none());
        assert_eq!(t.stats().lookup_count, 1);
        assert_eq!(t.stats().matched_count, 0);
    }

    #[test]
    fn add_and_match_updates_counters() {
        let mut t = FlowTable::default();
        let m = Match::eth_dst(MacAddr::from_index(2));
        t.apply(&add(m, 10, 3), SimTime::ZERO).unwrap();
        let p = pkt_to(2);
        let hit = t
            .lookup(&p, PortNo::Phys(1), SimTime::from_secs(1))
            .unwrap();
        assert_eq!(hit.packet_count, 1);
        assert_eq!(hit.byte_count, u64::from(p.wire_len()));
        assert_eq!(hit.last_matched, SimTime::from_secs(1));
    }

    #[test]
    fn priority_order_wins() {
        let mut t = FlowTable::default();
        t.apply(&add(Match::any(), 1, 1), SimTime::ZERO).unwrap();
        t.apply(
            &add(Match::eth_dst(MacAddr::from_index(2)), 100, 2),
            SimTime::ZERO,
        )
        .unwrap();
        let hit = t
            .lookup(&pkt_to(2), PortNo::Phys(9), SimTime::ZERO)
            .unwrap();
        assert_eq!(hit.priority, 100);
        // A packet to someone else falls to the low-priority catch-all.
        let hit = t
            .lookup(&pkt_to(3), PortNo::Phys(9), SimTime::ZERO)
            .unwrap();
        assert_eq!(hit.priority, 1);
    }

    #[test]
    fn equal_priority_ties_break_by_insertion() {
        let mut t = FlowTable::default();
        t.apply(&add(Match::any(), 5, 1), SimTime::ZERO).unwrap();
        t.apply(
            &add(Match::eth_dst(MacAddr::from_index(2)), 5, 2),
            SimTime::ZERO,
        )
        .unwrap();
        let hit = t
            .lookup(&pkt_to(2), PortNo::Phys(9), SimTime::ZERO)
            .unwrap();
        assert_eq!(hit.actions, vec![Action::Output(PortNo::Phys(1))]);
    }

    #[test]
    fn add_replaces_identical_match_priority() {
        let mut t = FlowTable::default();
        let m = Match::eth_dst(MacAddr::from_index(2));
        t.apply(&add(m.clone(), 5, 1), SimTime::ZERO).unwrap();
        let out = t
            .apply(&add(m.clone(), 5, 9), SimTime::from_secs(2))
            .unwrap();
        assert_eq!(out.displaced.len(), 1);
        assert_eq!(
            out.displaced[0].actions,
            vec![Action::Output(PortNo::Phys(1))]
        );
        assert_eq!(t.len(), 1);
        let hit = t
            .lookup(&pkt_to(2), PortNo::Phys(1), SimTime::ZERO)
            .unwrap();
        assert_eq!(hit.actions, vec![Action::Output(PortNo::Phys(9))]);
    }

    #[test]
    fn table_full_errors() {
        let mut t = FlowTable::with_capacity(2);
        t.apply(
            &add(Match::eth_dst(MacAddr::from_index(1)), 5, 1),
            SimTime::ZERO,
        )
        .unwrap();
        t.apply(
            &add(Match::eth_dst(MacAddr::from_index(2)), 5, 1),
            SimTime::ZERO,
        )
        .unwrap();
        let err = t.apply(
            &add(Match::eth_dst(MacAddr::from_index(3)), 5, 1),
            SimTime::ZERO,
        );
        assert_eq!(err.unwrap_err().code, ErrorCode::TablesFull);
        // Replacing an existing entry still works at capacity.
        assert!(t
            .apply(
                &add(Match::eth_dst(MacAddr::from_index(2)), 5, 7),
                SimTime::ZERO
            )
            .is_ok());
    }

    #[test]
    fn check_overlap_rejects_overlapping_same_priority() {
        let mut t = FlowTable::default();
        t.apply(
            &add(Match::eth_dst(MacAddr::from_index(2)), 5, 1),
            SimTime::ZERO,
        )
        .unwrap();
        let mut fm = add(Match::any(), 5, 2);
        fm.check_overlap = true;
        assert_eq!(
            t.apply(&fm, SimTime::ZERO).unwrap_err().code,
            ErrorCode::Overlap
        );
        // Different priority: fine.
        let mut fm = add(Match::any(), 6, 2);
        fm.check_overlap = true;
        assert!(t.apply(&fm, SimTime::ZERO).is_ok());
    }

    #[test]
    fn non_strict_delete_subsumes() {
        let mut t = FlowTable::default();
        t.apply(
            &add(Match::eth_dst(MacAddr::from_index(2)), 5, 1),
            SimTime::ZERO,
        )
        .unwrap();
        t.apply(
            &add(Match::eth_dst(MacAddr::from_index(3)), 9, 1),
            SimTime::ZERO,
        )
        .unwrap();
        let out = t
            .apply(&FlowMod::delete(Match::any()), SimTime::ZERO)
            .unwrap();
        assert_eq!(out.displaced.len(), 2);
        assert!(t.is_empty());
    }

    #[test]
    fn strict_delete_requires_exact() {
        let mut t = FlowTable::default();
        let m = Match::eth_dst(MacAddr::from_index(2));
        t.apply(&add(m.clone(), 5, 1), SimTime::ZERO).unwrap();
        // Wrong priority: no-op.
        let out = t
            .apply(&FlowMod::delete_strict(m.clone(), 6), SimTime::ZERO)
            .unwrap();
        assert!(out.displaced.is_empty());
        assert_eq!(t.len(), 1);
        let out = t
            .apply(&FlowMod::delete_strict(m, 5), SimTime::ZERO)
            .unwrap();
        assert_eq!(out.displaced.len(), 1);
        assert!(t.is_empty());
    }

    #[test]
    fn delete_filters_by_out_port() {
        let mut t = FlowTable::default();
        t.apply(
            &add(Match::eth_dst(MacAddr::from_index(2)), 5, 1),
            SimTime::ZERO,
        )
        .unwrap();
        t.apply(
            &add(Match::eth_dst(MacAddr::from_index(3)), 5, 2),
            SimTime::ZERO,
        )
        .unwrap();
        let mut del = FlowMod::delete(Match::any());
        del.out_port = PortNo::Phys(2);
        let out = t.apply(&del, SimTime::ZERO).unwrap();
        assert_eq!(out.displaced.len(), 1);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn delete_notifies_when_requested() {
        let mut t = FlowTable::default();
        let fm = add(Match::any(), 5, 1).notify_removed();
        t.apply(&fm, SimTime::ZERO).unwrap();
        let out = t
            .apply(&FlowMod::delete(Match::any()), SimTime::ZERO)
            .unwrap();
        assert_eq!(out.notify_removed.len(), 1);
    }

    #[test]
    fn modify_rewrites_actions_preserving_counters() {
        let mut t = FlowTable::default();
        let m = Match::eth_dst(MacAddr::from_index(2));
        t.apply(&add(m.clone(), 5, 1), SimTime::ZERO).unwrap();
        t.lookup(&pkt_to(2), PortNo::Phys(1), SimTime::ZERO)
            .unwrap();
        let mut fm = add(m, 5, 9);
        fm.command = FlowModCommand::ModifyStrict;
        let out = t.apply(&fm, SimTime::ZERO).unwrap();
        assert_eq!(out.displaced.len(), 1);
        let e = t.iter().next().unwrap();
        assert_eq!(e.actions, vec![Action::Output(PortNo::Phys(9))]);
        assert_eq!(e.packet_count, 1, "modify must not reset counters");
    }

    #[test]
    fn modify_of_nothing_adds() {
        let mut t = FlowTable::default();
        let mut fm = add(Match::any(), 5, 1);
        fm.command = FlowModCommand::Modify;
        t.apply(&fm, SimTime::ZERO).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn hard_timeout_expires() {
        let mut t = FlowTable::default();
        let fm = add(Match::any(), 5, 1).hard_timeout(10).notify_removed();
        t.apply(&fm, SimTime::ZERO).unwrap();
        assert!(t.expire(SimTime::from_secs(9)).is_empty());
        let exp = t.expire(SimTime::from_secs(10));
        assert_eq!(exp.len(), 1);
        assert_eq!(exp[0].reason, FlowRemovedReason::HardTimeout);
        assert!(exp[0].notify);
        assert!(t.is_empty());
    }

    #[test]
    fn idle_timeout_resets_on_match() {
        let mut t = FlowTable::default();
        let fm = add(Match::any(), 5, 1).idle_timeout(5);
        t.apply(&fm, SimTime::ZERO).unwrap();
        // Traffic at t=4 pushes expiry to t=9.
        t.lookup(&pkt_to(2), PortNo::Phys(1), SimTime::from_secs(4));
        assert!(t.expire(SimTime::from_secs(8)).is_empty());
        let exp = t.expire(SimTime::from_secs(9));
        assert_eq!(exp.len(), 1);
        assert_eq!(exp[0].reason, FlowRemovedReason::IdleTimeout);
    }

    #[test]
    fn snapshot_remaining_hard_counts_down() {
        let mut t = FlowTable::default();
        t.apply(&add(Match::any(), 5, 1).hard_timeout(60), SimTime::ZERO)
            .unwrap();
        let snaps = t.snapshot_matching(&Match::any(), PortNo::None, SimTime::from_secs(18));
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].remaining_hard, Some(42));
        assert_eq!(snaps[0].duration_sec, 18);
    }

    #[test]
    fn snapshot_matching_filters() {
        let mut t = FlowTable::default();
        t.apply(
            &add(Match::eth_dst(MacAddr::from_index(2)), 5, 1),
            SimTime::ZERO,
        )
        .unwrap();
        t.apply(
            &add(Match::eth_dst(MacAddr::from_index(3)), 5, 2),
            SimTime::ZERO,
        )
        .unwrap();
        let all = t.snapshot_matching(&Match::any(), PortNo::None, SimTime::ZERO);
        assert_eq!(all.len(), 2);
        let one = t.snapshot_matching(&Match::any(), PortNo::Phys(2), SimTime::ZERO);
        assert_eq!(one.len(), 1);
        let narrow = t.snapshot_matching(
            &Match::eth_dst(MacAddr::from_index(3)),
            PortNo::None,
            SimTime::ZERO,
        );
        assert_eq!(narrow.len(), 1);
    }

    #[test]
    fn restore_counters_targets_exact_entry() {
        let mut t = FlowTable::default();
        let m = Match::eth_dst(MacAddr::from_index(2));
        t.apply(&add(m.clone(), 5, 1), SimTime::ZERO).unwrap();
        assert!(t.restore_counters(&m, 5, 77, 7700));
        assert!(!t.restore_counters(&m, 6, 0, 0));
        let e = t.iter().next().unwrap();
        assert_eq!((e.packet_count, e.byte_count), (77, 7700));
    }

    #[test]
    fn peek_does_not_count() {
        let mut t = FlowTable::default();
        t.apply(&add(Match::any(), 5, 1), SimTime::ZERO).unwrap();
        assert!(t.peek(&pkt_to(2), PortNo::Phys(1)).is_some());
        assert_eq!(t.stats().lookup_count, 0);
        assert_eq!(t.iter().next().unwrap().packet_count, 0);
    }
}
