//! Deterministic discrete-event SDN network simulator.
//!
//! This crate is the substitute for the paper's physical/Mininet network and
//! FloodLight's switch-facing machinery (see DESIGN.md §2). It provides:
//!
//! - [`switch::Switch`] — an OpenFlow 1.0 switch: priority/wildcard flow
//!   table with idle/hard timeouts and per-flow counters, port state and
//!   counters, packet buffers.
//! - [`network::Network`] — switches wired by links with hosts at the edge,
//!   a synchronous dataplane walker that records delivery/drop/loop traces,
//!   a virtual clock, failure injection (link and switch down), and an
//!   event queue toward the controller.
//! - [`topology::Topology`] — generators: linear, ring, star, tree,
//!   fat-tree, seeded random.
//!
//! Determinism: no wall-clock time, no unseeded randomness. The same inputs
//! yield byte-identical traces, which the recovery and replay experiments
//! rely on.

pub mod clock;
pub mod flow_table;
pub mod network;
pub mod reference;
pub mod switch;
pub mod topology;

pub use clock::{SimDuration, SimTime};
pub use flow_table::{ExpiredFlow, FlowEntry, FlowModOutcome, FlowTable};
pub use network::{ApplyOutcome, DataplaneTrace, NetError, NetEvent, Network, HOP_LIMIT};
pub use reference::LinearFlowTable;
pub use switch::{PortState, Switch, SwitchOutput};
pub use topology::{Endpoint, HostSpec, LinkSpec, Topology};
