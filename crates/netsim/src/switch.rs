//! A simulated OpenFlow 1.0 switch.
//!
//! The switch owns a [`FlowTable`], per-port state and counters, and a
//! packet buffer pool. It consumes controller→switch [`Message`]s and
//! produces replies, asynchronous notifications, and dataplane emissions.
//! Every state-altering message reports the [`PreState`] it displaced so the
//! transaction layer can invert it.

use crate::clock::SimTime;
use crate::flow_table::FlowTable;
use legosdn_codec::Codec;
use legosdn_openflow::error::{ErrorCode, ErrorType};
use legosdn_openflow::inverse::PreState;
use legosdn_openflow::messages::{
    ErrorMsg, FlowRemoved, FlowRemovedReason, Message, PacketIn, PacketInReason, PortDesc,
    PortStats, PortStatus, PortStatusReason, StatsReply, StatsRequest, SwitchFeatures,
};
use legosdn_openflow::prelude::{apply_actions, BufferId, DatapathId, MacAddr, Packet, PortNo};
use std::collections::BTreeMap;

/// Everything a message or packet arrival caused.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SwitchOutput {
    /// Direct responses to the requester (echo replies, stats, barriers,
    /// errors).
    pub replies: Vec<Message>,
    /// Asynchronous controller notifications (flow-removed, port-status,
    /// packet-in).
    pub notifications: Vec<Message>,
    /// Packets leaving the switch: `(out_port, packet)`.
    pub emissions: Vec<(PortNo, Packet)>,
    /// Pre-state displaced by a state-altering message, for inversion.
    pub pre_state: Option<PreState>,
}

impl SwitchOutput {
    fn reply(msg: Message) -> Self {
        SwitchOutput {
            replies: vec![msg],
            ..SwitchOutput::default()
        }
    }
}

/// Per-port runtime state.
#[derive(Clone, Debug, Codec)]
pub struct PortState {
    pub desc: PortDesc,
    pub stats: PortStats,
}

/// A simulated switch.
#[derive(Clone, Debug, Codec)]
pub struct Switch {
    dpid: DatapathId,
    ports: BTreeMap<u16, PortState>,
    table: FlowTable,
    buffers: Vec<(BufferId, Packet, PortNo)>,
    next_buffer: u32,
    n_buffers: u32,
    /// Whether the switch itself is up. A down switch drops everything.
    up: bool,
}

impl Switch {
    /// A switch with ports `1..=n_ports`, all up.
    #[must_use]
    pub fn new(dpid: DatapathId, n_ports: u16) -> Self {
        Self::with_table_capacity(dpid, n_ports, 0)
    }

    /// A switch whose flow table holds at most `table_capacity` entries
    /// (0 = unbounded).
    #[must_use]
    pub fn with_table_capacity(dpid: DatapathId, n_ports: u16, table_capacity: usize) -> Self {
        let mut ports = BTreeMap::new();
        for p in 1..=n_ports {
            let hw = MacAddr::from_index((dpid.0 << 8) | u64::from(p));
            ports.insert(
                p,
                PortState {
                    desc: PortDesc::up(PortNo::Phys(p), hw),
                    stats: PortStats {
                        port_no: p,
                        ..PortStats::default()
                    },
                },
            );
        }
        Switch {
            dpid,
            ports,
            table: FlowTable::with_capacity(table_capacity),
            buffers: Vec::new(),
            next_buffer: 0,
            n_buffers: 256,
            up: true,
        }
    }

    /// The datapath id.
    #[must_use]
    pub fn dpid(&self) -> DatapathId {
        self.dpid
    }

    /// Whether the switch is powered on.
    #[must_use]
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Power the switch on/off. Powering off clears the flow table and
    /// buffers (state is lost, as with a real reboot).
    pub fn set_up(&mut self, up: bool) {
        if self.up && !up {
            self.table = FlowTable::default();
            self.buffers.clear();
        }
        self.up = up;
    }

    /// Read-only flow table access (invariant checkers, NetLog).
    #[must_use]
    pub fn table(&self) -> &FlowTable {
        &self.table
    }

    /// Port descriptors.
    pub fn ports(&self) -> impl Iterator<Item = &PortState> {
        self.ports.values()
    }

    /// A specific port's state.
    #[must_use]
    pub fn port(&self, port: u16) -> Option<&PortState> {
        self.ports.get(&port)
    }

    /// Live physical ports (up administratively and physically).
    pub fn live_ports(&self) -> impl Iterator<Item = u16> + '_ {
        self.ports
            .iter()
            .filter(|(_, s)| s.desc.is_live())
            .map(|(p, _)| *p)
    }

    /// Set a port's *physical* link state; returns the port-status
    /// notification if the state changed.
    pub fn set_link_down(&mut self, port: u16, down: bool) -> Option<Message> {
        let state = self.ports.get_mut(&port)?;
        if state.desc.link_down == down {
            return None;
        }
        state.desc.link_down = down;
        Some(Message::PortStatus(PortStatus {
            reason: PortStatusReason::Modify,
            desc: state.desc.clone(),
        }))
    }

    /// Handle a controller→switch message.
    pub fn handle_message(&mut self, msg: &Message, now: SimTime) -> SwitchOutput {
        if !self.up {
            return SwitchOutput::default();
        }
        match msg {
            Message::Hello => SwitchOutput::reply(Message::Hello),
            Message::EchoRequest(d) => SwitchOutput::reply(Message::EchoReply(d.clone())),
            Message::FeaturesRequest => {
                SwitchOutput::reply(Message::FeaturesReply(SwitchFeatures {
                    datapath_id: self.dpid,
                    n_buffers: self.n_buffers,
                    n_tables: 1,
                    ports: self.ports.values().map(|s| s.desc.clone()).collect(),
                }))
            }
            Message::BarrierRequest => SwitchOutput::reply(Message::BarrierReply),
            Message::FlowMod(fm) => self.handle_flow_mod(fm, now),
            Message::PacketOut(po) => {
                let packet = if po.buffer_id.is_some() {
                    match self.take_buffer(po.buffer_id) {
                        Some((pkt, _)) => pkt,
                        None => {
                            return SwitchOutput::reply(Message::Error(ErrorMsg {
                                err_type: ErrorType::BadRequest,
                                code: ErrorCode::Other(0x100), // bad buffer
                                data: Vec::new(),
                            }));
                        }
                    }
                } else {
                    match &po.packet {
                        Some(p) => p.clone(),
                        None => {
                            return SwitchOutput::reply(Message::Error(ErrorMsg {
                                err_type: ErrorType::BadRequest,
                                code: ErrorCode::BadPort,
                                data: Vec::new(),
                            }))
                        }
                    }
                };
                let mut out = SwitchOutput::default();
                self.emit(&po.actions, &packet, po.in_port, now, &mut out);
                out
            }
            Message::PortMod(pm) => {
                let Some(p) = pm.port_no.phys() else {
                    return SwitchOutput::reply(bad_port());
                };
                let Some(state) = self.ports.get_mut(&p) else {
                    return SwitchOutput::reply(bad_port());
                };
                let was_down = state.desc.config_down;
                state.desc.config_down = pm.down;
                let mut out = SwitchOutput {
                    pre_state: Some(PreState::PortWasDown(was_down)),
                    ..SwitchOutput::default()
                };
                if was_down != pm.down {
                    out.notifications.push(Message::PortStatus(PortStatus {
                        reason: PortStatusReason::Modify,
                        desc: state.desc.clone(),
                    }));
                }
                out
            }
            Message::StatsRequest(req) => SwitchOutput::reply(self.handle_stats(req, now)),
            // Switch-to-controller messages arriving at a switch are protocol
            // violations.
            _ => SwitchOutput::reply(Message::Error(ErrorMsg {
                err_type: ErrorType::BadRequest,
                code: ErrorCode::Unsupported,
                data: Vec::new(),
            })),
        }
    }

    fn handle_flow_mod(
        &mut self,
        fm: &legosdn_openflow::messages::FlowMod,
        now: SimTime,
    ) -> SwitchOutput {
        let mut out = SwitchOutput::default();
        match self.table.apply(fm, now) {
            Ok(outcome) => {
                // Per-switch flow-table churn counters. The switch itself is
                // Codec-serialisable state, so it reports through the
                // process-global observer rather than holding a handle.
                let obs = legosdn_obs::Obs::global();
                let dpid = self.dpid.0.to_string();
                if fm.is_delete() {
                    obs.counter("netsim", "flow_delete", &dpid)
                        .add((outcome.displaced.len() as u64).max(1));
                } else if outcome.displaced.is_empty() {
                    obs.counter("netsim", "flow_install", &dpid).inc();
                } else {
                    obs.counter("netsim", "flow_overwrite", &dpid).inc();
                }
                out.pre_state = Some(if fm.is_delete() {
                    PreState::DeletedFlows(outcome.displaced.clone())
                } else {
                    PreState::DisplacedFlows(outcome.displaced.clone())
                });
                for snap in outcome.notify_removed {
                    out.notifications.push(Message::FlowRemoved(FlowRemoved {
                        mat: snap.mat,
                        cookie: snap.cookie,
                        priority: snap.priority,
                        reason: FlowRemovedReason::Delete,
                        duration_sec: snap.duration_sec,
                        idle_timeout: snap.idle_timeout,
                        packet_count: snap.packet_count,
                        byte_count: snap.byte_count,
                    }));
                }
                // A flow-mod naming a buffered packet forwards it through the
                // (new) table immediately.
                if fm.buffer_id.is_some() {
                    if let Some((pkt, in_port)) = self.take_buffer(fm.buffer_id) {
                        let mut sub = SwitchOutput::default();
                        self.forward(&pkt, in_port, now, &mut sub);
                        out.notifications.extend(sub.notifications);
                        out.emissions.extend(sub.emissions);
                    }
                }
            }
            Err(e) => out.replies.push(Message::Error(e)),
        }
        out
    }

    fn handle_stats(&self, req: &StatsRequest, now: SimTime) -> Message {
        Message::StatsReply(match req {
            StatsRequest::Flow { mat, out_port } => {
                StatsReply::Flow(self.table.snapshot_matching(mat, *out_port, now))
            }
            StatsRequest::Aggregate { mat, out_port } => {
                let snaps = self.table.snapshot_matching(mat, *out_port, now);
                StatsReply::Aggregate {
                    packet_count: snaps.iter().map(|s| s.packet_count).sum(),
                    byte_count: snaps.iter().map(|s| s.byte_count).sum(),
                    flow_count: snaps.len() as u32,
                }
            }
            StatsRequest::Table => StatsReply::Table(self.table.stats()),
            StatsRequest::Port { port } => {
                let stats = match port.phys() {
                    Some(p) => self
                        .ports
                        .get(&p)
                        .map(|s| vec![s.stats])
                        .unwrap_or_default(),
                    None => self.ports.values().map(|s| s.stats).collect(),
                };
                StatsReply::Port(stats)
            }
        })
    }

    /// A packet arrives on `in_port`. Looks up the flow table; on a miss the
    /// packet is buffered and punted to the controller.
    pub fn receive_packet(&mut self, in_port: u16, pkt: &Packet, now: SimTime) -> SwitchOutput {
        let mut out = SwitchOutput::default();
        if !self.up {
            return out;
        }
        let live = self
            .ports
            .get(&in_port)
            .map(|p| p.desc.is_live())
            .unwrap_or(false);
        if !live {
            return out;
        }
        if let Some(state) = self.ports.get_mut(&in_port) {
            state.stats.rx_packets += 1;
            state.stats.rx_bytes += u64::from(pkt.wire_len());
        }
        self.forward(pkt, PortNo::Phys(in_port), now, &mut out);
        out
    }

    fn forward(&mut self, pkt: &Packet, in_port: PortNo, now: SimTime, out: &mut SwitchOutput) {
        let actions = match self.table.lookup(pkt, in_port, now) {
            Some(entry) => entry.actions.clone(),
            None => {
                let buffer_id = self.buffer_packet(pkt.clone(), in_port);
                out.notifications.push(Message::PacketIn(PacketIn {
                    buffer_id,
                    in_port,
                    reason: PacketInReason::NoMatch,
                    packet: pkt.clone(),
                }));
                return;
            }
        };
        if actions.is_empty() {
            // Explicit drop rule.
            if let Some(p) = in_port.phys() {
                if let Some(state) = self.ports.get_mut(&p) {
                    state.stats.rx_dropped += 1;
                }
            }
            return;
        }
        self.emit(&actions, pkt, in_port, now, out);
    }

    fn emit(
        &mut self,
        actions: &[legosdn_openflow::prelude::Action],
        pkt: &Packet,
        in_port: PortNo,
        _now: SimTime,
        out: &mut SwitchOutput,
    ) {
        let (rewritten, outputs) = apply_actions(actions, pkt);
        for port in outputs {
            match port {
                PortNo::Phys(p) => self.emit_one(p, &rewritten, out),
                PortNo::InPort => {
                    if let Some(p) = in_port.phys() {
                        self.emit_one(p, &rewritten, out);
                    }
                }
                PortNo::Flood | PortNo::All => {
                    let targets: Vec<u16> = self
                        .ports
                        .iter()
                        .filter(|(p, s)| s.desc.is_live() && Some(**p) != in_port.phys())
                        .map(|(p, _)| *p)
                        .collect();
                    for p in targets {
                        self.emit_one(p, &rewritten, out);
                    }
                }
                PortNo::Controller => {
                    out.notifications.push(Message::PacketIn(PacketIn {
                        buffer_id: BufferId::NONE,
                        in_port,
                        reason: PacketInReason::Action,
                        packet: rewritten.clone(),
                    }));
                }
                // Normal / Local / Table / None: unsupported sinks; drop.
                _ => {}
            }
        }
    }

    fn emit_one(&mut self, port: u16, pkt: &Packet, out: &mut SwitchOutput) {
        let Some(state) = self.ports.get_mut(&port) else {
            return;
        };
        if !state.desc.is_live() {
            state.stats.tx_dropped += 1;
            return;
        }
        state.stats.tx_packets += 1;
        state.stats.tx_bytes += u64::from(pkt.wire_len());
        out.emissions.push((PortNo::Phys(port), pkt.clone()));
    }

    fn buffer_packet(&mut self, pkt: Packet, in_port: PortNo) -> BufferId {
        if self.buffers.len() >= self.n_buffers as usize {
            self.buffers.remove(0);
        }
        let id = BufferId(self.next_buffer);
        self.next_buffer = self.next_buffer.wrapping_add(1);
        if BufferId(self.next_buffer) == BufferId::NONE {
            self.next_buffer = 0;
        }
        self.buffers.push((id, pkt, in_port));
        id
    }

    fn take_buffer(&mut self, id: BufferId) -> Option<(Packet, PortNo)> {
        let pos = self.buffers.iter().position(|(b, _, _)| *b == id)?;
        let (_, pkt, in_port) = self.buffers.remove(pos);
        Some((pkt, in_port))
    }

    /// Advance time: expire flows, emitting flow-removed notifications.
    pub fn expire_flows(&mut self, now: SimTime) -> Vec<Message> {
        self.table
            .expire(now)
            .into_iter()
            .filter(|e| e.notify)
            .map(|e| {
                Message::FlowRemoved(FlowRemoved {
                    mat: e.snapshot.mat,
                    cookie: e.snapshot.cookie,
                    priority: e.snapshot.priority,
                    reason: e.reason,
                    duration_sec: e.snapshot.duration_sec,
                    idle_timeout: e.snapshot.idle_timeout,
                    packet_count: e.snapshot.packet_count,
                    byte_count: e.snapshot.byte_count,
                })
            })
            .collect()
    }

    /// Direct mutable table access for test setup and NetLog counter
    /// restoration.
    pub fn table_mut(&mut self) -> &mut FlowTable {
        &mut self.table
    }
}

fn bad_port() -> Message {
    Message::Error(ErrorMsg {
        err_type: ErrorType::PortModFailed,
        code: ErrorCode::BadPort,
        data: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use legosdn_openflow::prelude::{Action, FlowMod, Match, PortMod};

    fn sw() -> Switch {
        Switch::new(DatapathId(1), 4)
    }

    fn pkt() -> Packet {
        Packet::ethernet(MacAddr::from_index(1), MacAddr::from_index(2))
    }

    #[test]
    fn hello_and_echo() {
        let mut s = sw();
        let out = s.handle_message(&Message::Hello, SimTime::ZERO);
        assert_eq!(out.replies, vec![Message::Hello]);
        let out = s.handle_message(&Message::EchoRequest(vec![1, 2]), SimTime::ZERO);
        assert_eq!(out.replies, vec![Message::EchoReply(vec![1, 2])]);
    }

    #[test]
    fn features_reply_lists_ports() {
        let mut s = sw();
        let out = s.handle_message(&Message::FeaturesRequest, SimTime::ZERO);
        match &out.replies[0] {
            Message::FeaturesReply(f) => {
                assert_eq!(f.datapath_id, DatapathId(1));
                assert_eq!(f.ports.len(), 4);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn miss_generates_buffered_packet_in() {
        let mut s = sw();
        let out = s.receive_packet(1, &pkt(), SimTime::ZERO);
        assert_eq!(out.notifications.len(), 1);
        match &out.notifications[0] {
            Message::PacketIn(pi) => {
                assert!(pi.buffer_id.is_some());
                assert_eq!(pi.in_port, PortNo::Phys(1));
                assert_eq!(pi.reason, PacketInReason::NoMatch);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(out.emissions.is_empty());
    }

    #[test]
    fn flow_mod_then_forward() {
        let mut s = sw();
        let fm = FlowMod::add(Match::any()).action(Action::Output(PortNo::Phys(2)));
        let out = s.handle_message(&Message::FlowMod(fm), SimTime::ZERO);
        assert!(out.replies.is_empty());
        assert_eq!(out.pre_state, Some(PreState::DisplacedFlows(vec![])));
        let out = s.receive_packet(1, &pkt(), SimTime::ZERO);
        assert_eq!(out.emissions.len(), 1);
        assert_eq!(out.emissions[0].0, PortNo::Phys(2));
    }

    #[test]
    fn flood_excludes_ingress_and_dead_ports() {
        let mut s = sw();
        s.set_link_down(3, true).unwrap();
        let fm = FlowMod::add(Match::any()).action(Action::Output(PortNo::Flood));
        s.handle_message(&Message::FlowMod(fm), SimTime::ZERO);
        let out = s.receive_packet(1, &pkt(), SimTime::ZERO);
        let mut ports: Vec<_> = out.emissions.iter().filter_map(|(p, _)| p.phys()).collect();
        ports.sort_unstable();
        assert_eq!(ports, vec![2, 4]);
    }

    #[test]
    fn drop_rule_increments_rx_dropped() {
        let mut s = sw();
        let fm = FlowMod::add(Match::any()); // no actions == drop
        s.handle_message(&Message::FlowMod(fm), SimTime::ZERO);
        let out = s.receive_packet(1, &pkt(), SimTime::ZERO);
        assert!(out.emissions.is_empty());
        assert!(out.notifications.is_empty());
        assert_eq!(s.port(1).unwrap().stats.rx_dropped, 1);
    }

    #[test]
    fn packet_out_with_inline_data() {
        let mut s = sw();
        let po = legosdn_openflow::messages::PacketOut {
            buffer_id: BufferId::NONE,
            in_port: PortNo::None,
            actions: vec![Action::Output(PortNo::Phys(3))],
            packet: Some(pkt()),
        };
        let out = s.handle_message(&Message::PacketOut(po), SimTime::ZERO);
        assert_eq!(out.emissions.len(), 1);
        assert_eq!(out.emissions[0].0, PortNo::Phys(3));
    }

    #[test]
    fn packet_out_with_buffer_releases_it() {
        let mut s = sw();
        let miss = s.receive_packet(1, &pkt(), SimTime::ZERO);
        let buffer_id = match &miss.notifications[0] {
            Message::PacketIn(pi) => pi.buffer_id,
            other => panic!("unexpected {other:?}"),
        };
        let po = legosdn_openflow::messages::PacketOut {
            buffer_id,
            in_port: PortNo::Phys(1),
            actions: vec![Action::Output(PortNo::Phys(2))],
            packet: None,
        };
        let out = s.handle_message(&Message::PacketOut(po.clone()), SimTime::ZERO);
        assert_eq!(out.emissions.len(), 1);
        // Second use of the same buffer errors.
        let out = s.handle_message(&Message::PacketOut(po), SimTime::ZERO);
        assert!(matches!(&out.replies[0], Message::Error(_)));
    }

    #[test]
    fn flow_mod_with_buffer_forwards_buffered_packet() {
        let mut s = sw();
        let miss = s.receive_packet(1, &pkt(), SimTime::ZERO);
        let buffer_id = match &miss.notifications[0] {
            Message::PacketIn(pi) => pi.buffer_id,
            other => panic!("unexpected {other:?}"),
        };
        let mut fm = FlowMod::add(Match::any()).action(Action::Output(PortNo::Phys(4)));
        fm.buffer_id = buffer_id;
        let out = s.handle_message(&Message::FlowMod(fm), SimTime::ZERO);
        assert_eq!(out.emissions.len(), 1);
        assert_eq!(out.emissions[0].0, PortNo::Phys(4));
    }

    #[test]
    fn port_mod_reports_pre_state_and_notifies() {
        let mut s = sw();
        let pm = PortMod {
            port_no: PortNo::Phys(2),
            hw_addr: s.port(2).unwrap().desc.hw_addr,
            down: true,
        };
        let out = s.handle_message(&Message::PortMod(pm.clone()), SimTime::ZERO);
        assert_eq!(out.pre_state, Some(PreState::PortWasDown(false)));
        assert_eq!(out.notifications.len(), 1);
        // Idempotent re-apply: pre-state now true, no notification.
        let out = s.handle_message(&Message::PortMod(pm), SimTime::ZERO);
        assert_eq!(out.pre_state, Some(PreState::PortWasDown(true)));
        assert!(out.notifications.is_empty());
        // Admin-down port no longer forwards.
        let fm = FlowMod::add(Match::any()).action(Action::Output(PortNo::Phys(2)));
        s.handle_message(&Message::FlowMod(fm), SimTime::ZERO);
        let out = s.receive_packet(1, &pkt(), SimTime::ZERO);
        assert!(out.emissions.is_empty());
        assert_eq!(s.port(2).unwrap().stats.tx_dropped, 1);
    }

    #[test]
    fn port_mod_unknown_port_errors() {
        let mut s = sw();
        let pm = PortMod {
            port_no: PortNo::Phys(99),
            hw_addr: MacAddr::from_index(0),
            down: true,
        };
        let out = s.handle_message(&Message::PortMod(pm), SimTime::ZERO);
        assert!(matches!(&out.replies[0], Message::Error(e) if e.code == ErrorCode::BadPort));
    }

    #[test]
    fn stats_flow_and_aggregate() {
        let mut s = sw();
        let fm = FlowMod::add(Match::any()).action(Action::Output(PortNo::Phys(2)));
        s.handle_message(&Message::FlowMod(fm), SimTime::ZERO);
        s.receive_packet(1, &pkt(), SimTime::ZERO);
        let out = s.handle_message(
            &Message::StatsRequest(StatsRequest::Flow {
                mat: Match::any(),
                out_port: PortNo::None,
            }),
            SimTime::ZERO,
        );
        match &out.replies[0] {
            Message::StatsReply(StatsReply::Flow(flows)) => {
                assert_eq!(flows.len(), 1);
                assert_eq!(flows[0].packet_count, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        let out = s.handle_message(
            &Message::StatsRequest(StatsRequest::Aggregate {
                mat: Match::any(),
                out_port: PortNo::None,
            }),
            SimTime::ZERO,
        );
        match &out.replies[0] {
            Message::StatsReply(StatsReply::Aggregate {
                packet_count,
                flow_count,
                ..
            }) => {
                assert_eq!(*packet_count, 1);
                assert_eq!(*flow_count, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn stats_port_all_and_single() {
        let mut s = sw();
        let out = s.handle_message(
            &Message::StatsRequest(StatsRequest::Port { port: PortNo::None }),
            SimTime::ZERO,
        );
        match &out.replies[0] {
            Message::StatsReply(StatsReply::Port(ps)) => assert_eq!(ps.len(), 4),
            other => panic!("unexpected {other:?}"),
        }
        let out = s.handle_message(
            &Message::StatsRequest(StatsRequest::Port {
                port: PortNo::Phys(2),
            }),
            SimTime::ZERO,
        );
        match &out.replies[0] {
            Message::StatsReply(StatsReply::Port(ps)) => {
                assert_eq!(ps.len(), 1);
                assert_eq!(ps[0].port_no, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn expire_emits_flow_removed() {
        let mut s = sw();
        let fm = FlowMod::add(Match::any())
            .hard_timeout(5)
            .action(Action::Output(PortNo::Phys(2)))
            .notify_removed();
        s.handle_message(&Message::FlowMod(fm), SimTime::ZERO);
        assert!(s.expire_flows(SimTime::from_secs(4)).is_empty());
        let removed = s.expire_flows(SimTime::from_secs(5));
        assert_eq!(removed.len(), 1);
        assert!(matches!(&removed[0], Message::FlowRemoved(fr)
            if fr.reason == FlowRemovedReason::HardTimeout));
    }

    #[test]
    fn down_switch_is_silent() {
        let mut s = sw();
        let fm = FlowMod::add(Match::any()).action(Action::Output(PortNo::Phys(2)));
        s.handle_message(&Message::FlowMod(fm), SimTime::ZERO);
        s.set_up(false);
        assert!(s
            .receive_packet(1, &pkt(), SimTime::ZERO)
            .notifications
            .is_empty());
        assert!(s
            .handle_message(&Message::Hello, SimTime::ZERO)
            .replies
            .is_empty());
        // Power-cycle loses the flow table.
        s.set_up(true);
        assert!(s.table().is_empty());
    }

    #[test]
    fn delete_strict_pre_state_is_deleted_flows() {
        let mut s = sw();
        let m = Match::eth_dst(MacAddr::from_index(2));
        let fm = FlowMod::add(m.clone())
            .priority(9)
            .action(Action::Output(PortNo::Phys(2)));
        s.handle_message(&Message::FlowMod(fm), SimTime::ZERO);
        let out = s.handle_message(
            &Message::FlowMod(FlowMod::delete_strict(m, 9)),
            SimTime::ZERO,
        );
        match out.pre_state {
            Some(PreState::DeletedFlows(snaps)) => assert_eq!(snaps.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
    }
}
