//! Ops endpoint: a minimal, std-only, blocking HTTP/1.1 responder that
//! serves live [`Obs`] state to external scrapers.
//!
//! The paper's operability story (Crash-Pad problem tickets, §5) assumes
//! operators can *watch* failures and recoveries as they happen; until now
//! the obs subsystem was only readable post-mortem via `BENCH_*.json`
//! dumps. [`ObsServer`] closes that gap:
//!
//! - `GET /metrics` — Prometheus text exposition ([`Obs::prometheus`])
//! - `GET /metrics.json` — JSON snapshot ([`Obs::json_snapshot`])
//! - `GET /incidents` — rendered recovery timelines ([`Obs::incidents`])
//! - `GET /healthz` — liveness probe (`200 ok`)
//!
//! Resource behaviour is deliberately bounded: a fixed worker pool drains
//! a bounded connection queue (overload answers `503` instead of queueing
//! without limit), every connection gets read/write deadlines, request
//! heads are capped at [`ServeConfig::max_request_bytes`], and responses
//! close the connection (no keep-alive state to leak). Shutdown is an
//! atomic flag plus a self-connect to wake the blocking `accept`, then a
//! join of every thread — a hung scrape cannot wedge process exit past
//! its I/O deadline.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::Obs;

/// Endpoint knobs. The defaults suit a localhost scraper.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Address to bind; port 0 picks an ephemeral port (tests).
    pub addr: SocketAddr,
    /// Worker threads answering requests.
    pub workers: usize,
    /// Queued-but-unserved connection limit; beyond it clients get `503`.
    pub backlog: usize,
    /// Per-connection read *and* write deadline.
    pub io_timeout: Duration,
    /// Maximum bytes of request head we will buffer before answering `431`.
    pub max_request_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: SocketAddr::from(([127, 0, 0, 1], 9184)),
            workers: 2,
            backlog: 32,
            io_timeout: Duration::from_secs(2),
            max_request_bytes: 8 * 1024,
        }
    }
}

impl ServeConfig {
    /// Config bound to an ephemeral loopback port — the test default.
    #[must_use]
    pub fn ephemeral() -> Self {
        ServeConfig {
            addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            ..ServeConfig::default()
        }
    }
}

/// A running ops endpoint. Dropping it (or calling [`ObsServer::shutdown`])
/// stops the accept loop and joins every thread.
pub struct ObsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ObsServer {
    /// Bind `config.addr` and start serving `obs`. Returns once the
    /// listener is live, so [`ObsServer::local_addr`] is immediately
    /// scrapable.
    pub fn start(obs: Obs, config: ServeConfig) -> std::io::Result<ObsServer> {
        let listener = TcpListener::bind(config.addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = sync_channel::<TcpStream>(config.backlog.max(1));
        let rx = Arc::new(Mutex::new(rx));

        let workers = (0..config.workers.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                let obs = obs.clone();
                let cfg = config.clone();
                std::thread::Builder::new()
                    .name(format!("obsd-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &obs, &cfg))
                    .expect("spawn obsd worker")
            })
            .collect();

        let accept_stop = Arc::clone(&stop);
        let accept_obs = obs.clone();
        let accept_thread = std::thread::Builder::new()
            .name("obsd-accept".into())
            .spawn(move || {
                // `tx` lives here: when the accept loop exits the sender
                // drops, the channel disconnects, and the workers drain
                // what is queued and exit.
                for conn in listener.incoming() {
                    if accept_stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    accept_obs.counter("obsd", "connections_total", "").inc();
                    match tx.try_send(stream) {
                        Ok(()) => {}
                        Err(TrySendError::Full(stream)) => {
                            accept_obs.counter("obsd", "overload_total", "").inc();
                            respond_best_effort(stream, 503, "text/plain", "overloaded\n");
                        }
                        Err(TrySendError::Disconnected(_)) => break,
                    }
                }
            })
            .expect("spawn obsd accept loop");

        Ok(ObsServer {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            workers,
        })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, drain the queue, and join every thread. Returns the
    /// number of threads joined cleanly — `workers + 1` when nothing
    /// panicked or leaked.
    pub fn shutdown(mut self) -> usize {
        self.stop_and_join()
    }

    fn stop_and_join(&mut self) -> usize {
        self.stop.store(true, Ordering::Release);
        // Wake the blocking accept; the flag makes it exit before queueing
        // this connection.
        let _ = TcpStream::connect(self.addr);
        let mut joined = 0;
        if let Some(h) = self.accept_thread.take() {
            joined += usize::from(h.join().is_ok());
        }
        for h in self.workers.drain(..) {
            joined += usize::from(h.join().is_ok());
        }
        joined
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn worker_loop(rx: &Mutex<Receiver<TcpStream>>, obs: &Obs, cfg: &ServeConfig) {
    loop {
        // Hold the lock only while waiting, never while serving.
        let conn = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        match conn {
            Ok(stream) => handle_connection(stream, obs, cfg),
            Err(_) => return, // accept loop gone: graceful exit
        }
    }
}

fn handle_connection(mut stream: TcpStream, obs: &Obs, cfg: &ServeConfig) {
    let _ = stream.set_read_timeout(Some(cfg.io_timeout));
    let _ = stream.set_write_timeout(Some(cfg.io_timeout));
    let _span = obs.span("obsd.handle");
    match read_request_head(&mut stream, cfg.max_request_bytes) {
        Ok(head) => {
            let (status, content_type, body) = route(&head, obs);
            obs.counter("obsd", "http_requests_total", &status.to_string())
                .inc();
            respond_best_effort(stream, status, content_type, &body);
        }
        Err(status) => {
            obs.counter("obsd", "http_requests_total", &status.to_string())
                .inc();
            respond_best_effort(stream, status, "text/plain", "bad request\n");
        }
    }
}

/// Read until the blank line ending the request head. `Err` carries the
/// HTTP status to answer with (`408` timeout, `431` oversized head, `400`
/// otherwise).
fn read_request_head(stream: &mut TcpStream, cap: usize) -> Result<String, u16> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 1024];
    loop {
        if let Some(end) = find_head_end(&buf) {
            return String::from_utf8(buf[..end].to_vec()).map_err(|_| 400);
        }
        if buf.len() >= cap {
            return Err(431);
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Err(400),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                return Err(408)
            }
            Err(_) => return Err(400),
        }
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Dispatch one parsed request head to `(status, content-type, body)`.
fn route(head: &str, obs: &Obs) -> (u16, &'static str, String) {
    let request_line = head.lines().next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
        return (400, "text/plain", "malformed request line\n".into());
    };
    if method != "GET" {
        return (405, "text/plain", "method not allowed; use GET\n".into());
    }
    let path = target.split('?').next().unwrap_or(target);
    match path {
        "/metrics" => (
            200,
            "text/plain; version=0.0.4; charset=utf-8",
            obs.prometheus(),
        ),
        "/metrics.json" => (200, "application/json", obs.json_snapshot()),
        "/incidents" => (200, "text/plain; charset=utf-8", incidents_report(obs)),
        "/healthz" => (200, "text/plain", "ok\n".into()),
        _ => (404, "text/plain", "not found\n".into()),
    }
}

/// The `/incidents` body: a count header followed by each rendered
/// recovery timeline.
fn incidents_report(obs: &Obs) -> String {
    let incidents = obs.incidents();
    let mut out = format!("{} incident(s) reconstructed\n", incidents.len());
    for inc in &incidents {
        out.push('\n');
        out.push_str(&inc.render());
    }
    out
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Error",
    }
}

/// Write a full `Connection: close` response; errors are swallowed — the
/// client hanging up mid-write must not take a worker down.
fn respond_best_effort(mut stream: TcpStream, status: u16, content_type: &str, body: &str) {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n",
        reason(status),
        body.len()
    );
    let allow = if status == 405 { "Allow: GET\r\n" } else { "" };
    let _ = stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(allow.as_bytes()))
        .and_then(|()| stream.write_all(b"\r\n"))
        .and_then(|()| stream.write_all(body.as_bytes()))
        .and_then(|()| stream.flush());
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RecordKind;

    /// Raw-TCP fetch returning `(status, body)`.
    fn fetch(addr: SocketAddr, request: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connect to endpoint");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let status: u16 = raw
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status line");
        let body = raw
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        fetch(addr, &format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n"))
    }

    fn server() -> (Obs, ObsServer) {
        let obs = Obs::new();
        let srv = ObsServer::start(obs.clone(), ServeConfig::ephemeral()).unwrap();
        (obs, srv)
    }

    #[test]
    fn serves_all_routes() {
        let (obs, srv) = server();
        obs.counter("core", "events", "").add(5);
        obs.record(RecordKind::AppCrash {
            app: "a".into(),
            detail: "p".into(),
        });
        let addr = srv.local_addr();

        let (status, body) = get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(body.contains("legosdn_core_events 5"));

        let (status, body) = get(addr, "/metrics.json");
        assert_eq!(status, 200);
        assert!(body.contains("\"incidents\""));

        let (status, body) = get(addr, "/incidents");
        assert_eq!(status, 200);
        assert!(body.contains("1 incident(s) reconstructed"));
        assert!(body.contains("incident app=a"));

        let (status, body) = get(addr, "/healthz");
        assert_eq!(status, 200);
        assert_eq!(body, "ok\n");

        srv.shutdown();
    }

    #[test]
    fn unknown_path_is_404_and_non_get_is_405() {
        let (_obs, srv) = server();
        let addr = srv.local_addr();
        assert_eq!(get(addr, "/nope").0, 404);
        assert_eq!(
            fetch(addr, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n").0,
            405
        );
        srv.shutdown();
    }

    #[test]
    fn query_strings_are_ignored_for_routing() {
        let (_obs, srv) = server();
        assert_eq!(get(srv.local_addr(), "/healthz?probe=1").0, 200);
        srv.shutdown();
    }

    #[test]
    fn oversized_request_head_is_rejected() {
        let obs = Obs::new();
        let srv = ObsServer::start(
            obs,
            ServeConfig {
                max_request_bytes: 256,
                ..ServeConfig::ephemeral()
            },
        )
        .unwrap();
        let huge = format!(
            "GET /metrics HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
            "a".repeat(4096)
        );
        assert_eq!(fetch(srv.local_addr(), &huge).0, 431);
        srv.shutdown();
    }

    #[test]
    fn own_request_counter_increases_between_scrapes() {
        let (_obs, srv) = server();
        let addr = srv.local_addr();
        let first = get(addr, "/metrics").1;
        let second = get(addr, "/metrics").1;
        let count = |body: &str| {
            body.lines()
                .find(|l| l.starts_with("legosdn_obsd_http_requests_total{label=\"200\"}"))
                .and_then(|l| l.rsplit(' ').next()?.parse::<u64>().ok())
        };
        let (a, b) = (count(&first), count(&second));
        assert!(b > a, "strictly increasing: {a:?} then {b:?}");
        srv.shutdown();
    }

    #[test]
    fn shutdown_joins_all_threads_and_closes_listener() {
        let obs = Obs::new();
        let cfg = ServeConfig {
            workers: 3,
            ..ServeConfig::ephemeral()
        };
        let srv = ObsServer::start(obs, cfg).unwrap();
        let addr = srv.local_addr();
        assert_eq!(get(addr, "/healthz").0, 200);
        let joined = srv.shutdown();
        assert_eq!(joined, 4, "accept loop + 3 workers, none leaked");
        assert!(
            TcpStream::connect(addr).is_err(),
            "listener closed after shutdown"
        );
    }

    #[test]
    fn drop_also_shuts_down() {
        let (_obs, srv) = server();
        let addr = srv.local_addr();
        drop(srv);
        assert!(TcpStream::connect(addr).is_err());
    }
}
