//! Ops endpoint: a minimal, std-only, blocking HTTP/1.1 responder shared
//! by the pull endpoint (one campaign's live [`Obs`] state) and the
//! fleet aggregator ([`crate::aggregate::Aggregator`]).
//!
//! The paper's operability story (Crash-Pad problem tickets, §5) assumes
//! operators can *watch* failures and recoveries as they happen.
//! [`ObsServer`] is the watching machinery; what it serves is decided by a
//! [`RouteHandler`]:
//!
//! - [`ObsServerBuilder::start`] serves one `Obs` instance (the pull
//!   routes: `/metrics`, `/metrics.json`, `/incidents`, `/healthz`);
//! - [`ObsServerBuilder::start_with`] serves any handler — the aggregator
//!   uses this to add `POST /push` and fleet-merged views of the same
//!   routes.
//!
//! Resource behaviour is deliberately bounded: a fixed worker pool drains
//! a bounded connection queue (overload answers `503` instead of queueing
//! without limit), every connection gets read/write deadlines, request
//! heads are capped at [`ServeConfig::max_request_bytes`], bodies at
//! [`ServeConfig::max_body_bytes`] (`413` beyond it), and responses close
//! the connection (no keep-alive state to leak). Shutdown is an atomic
//! flag plus a self-connect to wake the blocking `accept`, then a join of
//! every thread — a hung scrape cannot wedge process exit past its I/O
//! deadline.
//!
//! One subtlety for restartable servers: whichever TCP endpoint closes
//! first owns the `TIME_WAIT` state, and a port with server-side
//! `TIME_WAIT` sockets cannot be re-bound (std exposes no `SO_REUSEADDR`).
//! [`ServeConfig::close_grace`] makes the server wait briefly for the
//! client's FIN after writing a response, so well-behaved clients (the
//! push exporter, scrapers that parse `Content-Length`) close first and
//! the port is immediately re-bindable — which is what lets an aggregator
//! be killed and restarted on the same address mid-campaign.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::error::ObsError;
use crate::Obs;

/// Endpoint knobs. The defaults suit a localhost scraper.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Address to bind; port 0 picks an ephemeral port (tests).
    pub addr: SocketAddr,
    /// Worker threads answering requests.
    pub workers: usize,
    /// Queued-but-unserved connection limit; beyond it clients get `503`.
    pub backlog: usize,
    /// Per-connection read *and* write deadline.
    pub io_timeout: Duration,
    /// Maximum bytes of request head we will buffer before answering `431`.
    pub max_request_bytes: usize,
    /// Maximum request body bytes (push frames); beyond it clients get
    /// `413`.
    pub max_body_bytes: usize,
    /// After writing a response, wait up to this long for the client to
    /// close first. Zero (the default) closes immediately. Servers that
    /// must re-bind their port promptly after shutdown — a restarted
    /// aggregator — set a small grace so `TIME_WAIT` lands on the client.
    pub close_grace: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: SocketAddr::from(([127, 0, 0, 1], 9184)),
            workers: 2,
            backlog: 32,
            io_timeout: Duration::from_secs(2),
            max_request_bytes: 8 * 1024,
            max_body_bytes: 4 * 1024 * 1024,
            close_grace: Duration::ZERO,
        }
    }
}

impl ServeConfig {
    /// Config bound to an ephemeral loopback port — the test default.
    #[must_use]
    pub fn ephemeral() -> Self {
        ServeConfig {
            addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            ..ServeConfig::default()
        }
    }
}

/// One parsed HTTP request, as handed to a [`RouteHandler`].
#[derive(Clone, Debug)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, …) exactly as received.
    pub method: String,
    /// Request path with any query string stripped.
    pub path: String,
    /// Request body (empty unless the client sent `Content-Length`).
    pub body: Vec<u8>,
}

/// What a [`RouteHandler`] answers with.
#[derive(Clone, Debug)]
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: String,
}

impl Response {
    /// A `text/plain` response.
    #[must_use]
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain",
            body: body.into(),
        }
    }
}

/// Dispatches parsed requests to responses. Implemented by the pull
/// routes (over an [`Obs`]) and by the aggregator; anything else that
/// wants to ride the bounded serving machinery can implement it too.
pub trait RouteHandler: Send + Sync + 'static {
    /// Answer one request. Must not block beyond its own computation —
    /// socket deadlines are the server's job.
    fn route(&self, req: &Request) -> Response;
}

/// The single-campaign pull routes: the original `ObsServer` behaviour.
struct PullRoutes {
    obs: Obs,
    /// Local time-windowed rollups, sampled lazily on `/rollups` GETs.
    rollups: crate::rollup::RollupTracker,
}

impl PullRoutes {
    fn new(obs: Obs) -> Self {
        PullRoutes {
            obs,
            rollups: crate::rollup::RollupTracker::new(crate::rollup::RollupConfig::default()),
        }
    }

    /// `GET /traces/<cycle>-<seq>`: the trace's causal story plus any
    /// journal-reconstructed incidents that overlap it.
    fn trace_detail(&self, id_str: &str) -> Response {
        let Some(id) = crate::trace::TraceId::parse(id_str) else {
            return Response::text(404, "bad trace id; expected <cycle>-<seq>\n");
        };
        let Some(trace) = self.obs.trace(id) else {
            return Response::text(404, "no such trace (evicted or never recorded)\n");
        };
        Response {
            status: 200,
            content_type: "application/json",
            body: trace.to_json(&self.obs.incidents()),
        }
    }
}

impl RouteHandler for PullRoutes {
    fn route(&self, req: &Request) -> Response {
        if req.method != "GET" {
            return Response::text(405, "method not allowed; use GET\n");
        }
        if let Some(id) = req.path.strip_prefix("/traces/") {
            return self.trace_detail(id);
        }
        match req.path.as_str() {
            "/metrics" => Response {
                status: 200,
                content_type: "text/plain; version=0.0.4; charset=utf-8",
                body: self.obs.prometheus(),
            },
            "/metrics.json" => Response {
                status: 200,
                content_type: "application/json",
                body: self.obs.json_snapshot(),
            },
            "/incidents" => Response {
                status: 200,
                content_type: "text/plain; charset=utf-8",
                body: incidents_report(&self.obs),
            },
            "/traces" => Response {
                status: 200,
                content_type: "application/json",
                body: crate::trace::list_json(&self.obs.traces(), self.obs.traces_dropped()),
            },
            "/rollups" => Response {
                status: 200,
                content_type: "application/json",
                body: self.rollups.json_for(&self.obs),
            },
            "/healthz" => Response::text(200, "ok\n"),
            _ => Response::text(404, "not found\n"),
        }
    }
}

/// Builds an [`ObsServer`]: the one construction path shared by the pull
/// endpoint and the aggregator. Starts from [`ServeConfig::ephemeral`];
/// call [`ObsServerBuilder::addr`] for a fixed port.
#[derive(Clone, Debug, Default)]
pub struct ObsServerBuilder {
    cfg: Option<ServeConfig>,
}

impl ObsServerBuilder {
    fn cfg(&mut self) -> &mut ServeConfig {
        self.cfg.get_or_insert_with(ServeConfig::ephemeral)
    }

    /// Bind address (port 0 picks an ephemeral port).
    #[must_use]
    pub fn addr(mut self, addr: SocketAddr) -> Self {
        self.cfg().addr = addr;
        self
    }

    /// Worker threads answering requests.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.cfg().workers = workers;
        self
    }

    /// Queued-but-unserved connection limit; beyond it clients get `503`.
    #[must_use]
    pub fn backlog(mut self, backlog: usize) -> Self {
        self.cfg().backlog = backlog;
        self
    }

    /// Per-connection read *and* write deadline.
    #[must_use]
    pub fn io_deadline(mut self, deadline: Duration) -> Self {
        self.cfg().io_timeout = deadline;
        self
    }

    /// Request-head byte cap (`431` beyond it).
    #[must_use]
    pub fn max_request_bytes(mut self, cap: usize) -> Self {
        self.cfg().max_request_bytes = cap;
        self
    }

    /// Request-body byte cap (`413` beyond it).
    #[must_use]
    pub fn max_body_bytes(mut self, cap: usize) -> Self {
        self.cfg().max_body_bytes = cap;
        self
    }

    /// Post-response wait for the client's FIN (see [`ServeConfig`]).
    #[must_use]
    pub fn close_grace(mut self, grace: Duration) -> Self {
        self.cfg().close_grace = grace;
        self
    }

    /// Start serving the pull routes over `obs`.
    pub fn start(mut self, obs: Obs) -> Result<ObsServer, ObsError> {
        let cfg = self.cfg().clone();
        ObsServer::start_inner(Arc::new(PullRoutes::new(obs.clone())), obs, cfg)
    }

    /// Start serving a custom handler; `obs` receives the endpoint's own
    /// request/overload counters (the aggregator passes its private
    /// instance).
    pub fn start_with(
        mut self,
        handler: Arc<dyn RouteHandler>,
        obs: Obs,
    ) -> Result<ObsServer, ObsError> {
        let cfg = self.cfg().clone();
        ObsServer::start_inner(handler, obs, cfg)
    }
}

/// A running ops endpoint. Dropping it (or calling [`ObsServer::shutdown`])
/// stops the accept loop and joins every thread.
pub struct ObsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ObsServer {
    /// The builder: one construction path for every knob.
    #[must_use]
    pub fn builder() -> ObsServerBuilder {
        ObsServerBuilder::default()
    }

    /// Bind `config.addr` and start serving `obs`. Returns once the
    /// listener is live, so [`ObsServer::local_addr`] is immediately
    /// scrapable.
    ///
    /// Positional-construction shim kept for existing callers; prefer
    /// [`ObsServer::builder`].
    pub fn start(obs: Obs, config: ServeConfig) -> std::io::Result<ObsServer> {
        Self::start_inner(Arc::new(PullRoutes::new(obs.clone())), obs, config).map_err(
            |e| match e {
                ObsError::Io(io) => io,
                other => std::io::Error::other(other.to_string()),
            },
        )
    }

    fn start_inner(
        handler: Arc<dyn RouteHandler>,
        obs: Obs,
        config: ServeConfig,
    ) -> Result<ObsServer, ObsError> {
        let listener = TcpListener::bind(config.addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = sync_channel::<TcpStream>(config.backlog.max(1));
        let rx = Arc::new(Mutex::new(rx));

        let workers = (0..config.workers.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                let handler = Arc::clone(&handler);
                let obs = obs.clone();
                let cfg = config.clone();
                std::thread::Builder::new()
                    .name(format!("obsd-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &handler, &obs, &cfg))
                    .expect("spawn obsd worker")
            })
            .collect();

        let accept_stop = Arc::clone(&stop);
        let accept_obs = obs.clone();
        let accept_thread = std::thread::Builder::new()
            .name("obsd-accept".into())
            .spawn(move || {
                // `tx` lives here: when the accept loop exits the sender
                // drops, the channel disconnects, and the workers drain
                // what is queued and exit.
                for conn in listener.incoming() {
                    if accept_stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    accept_obs.counter("obsd", "connections_total", "").inc();
                    match tx.try_send(stream) {
                        Ok(()) => {}
                        Err(TrySendError::Full(stream)) => {
                            accept_obs.counter("obsd", "overload_total", "").inc();
                            respond_best_effort(
                                stream,
                                503,
                                "text/plain",
                                "overloaded\n",
                                Duration::ZERO,
                            );
                        }
                        Err(TrySendError::Disconnected(_)) => break,
                    }
                }
            })
            .expect("spawn obsd accept loop");

        Ok(ObsServer {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            workers,
        })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, drain the queue, and join every thread. Returns the
    /// number of threads joined cleanly — `workers + 1` when nothing
    /// panicked or leaked.
    pub fn shutdown(mut self) -> usize {
        self.stop_and_join()
    }

    fn stop_and_join(&mut self) -> usize {
        self.stop.store(true, Ordering::Release);
        // Wake the blocking accept; the flag makes it exit before queueing
        // this connection.
        let _ = TcpStream::connect(self.addr);
        let mut joined = 0;
        if let Some(h) = self.accept_thread.take() {
            joined += usize::from(h.join().is_ok());
        }
        for h in self.workers.drain(..) {
            joined += usize::from(h.join().is_ok());
        }
        joined
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn worker_loop(
    rx: &Mutex<Receiver<TcpStream>>,
    handler: &Arc<dyn RouteHandler>,
    obs: &Obs,
    cfg: &ServeConfig,
) {
    loop {
        // Hold the lock only while waiting, never while serving.
        let conn = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        match conn {
            Ok(stream) => handle_connection(stream, handler, obs, cfg),
            Err(_) => return, // accept loop gone: graceful exit
        }
    }
}

fn handle_connection(
    mut stream: TcpStream,
    handler: &Arc<dyn RouteHandler>,
    obs: &Obs,
    cfg: &ServeConfig,
) {
    let _ = stream.set_read_timeout(Some(cfg.io_timeout));
    let _ = stream.set_write_timeout(Some(cfg.io_timeout));
    let _span = obs.span("obsd.handle");
    match read_request(&mut stream, cfg) {
        Ok(req) => {
            let resp = handler.route(&req);
            obs.counter("obsd", "http_requests_total", &resp.status.to_string())
                .inc();
            respond_best_effort(
                stream,
                resp.status,
                resp.content_type,
                &resp.body,
                cfg.close_grace,
            );
        }
        Err(status) => {
            obs.counter("obsd", "http_requests_total", &status.to_string())
                .inc();
            respond_best_effort(
                stream,
                status,
                "text/plain",
                "bad request\n",
                cfg.close_grace,
            );
        }
    }
}

/// Read and parse one request (head, then any `Content-Length` body).
/// `Err` carries the HTTP status to answer with (`408` timeout, `431`
/// oversized head, `413` oversized body, `400` otherwise).
fn read_request(stream: &mut TcpStream, cfg: &ServeConfig) -> Result<Request, u16> {
    let mut buf = Vec::with_capacity(512);
    let head_end = read_until_head_end(stream, &mut buf, cfg.max_request_bytes)?;
    let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| 400u16)?;

    let request_line = head.lines().next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
        return Err(400);
    };
    let method = method.to_string();
    let path = target.split('?').next().unwrap_or(target).to_string();

    let content_length = content_length(head)?;
    if content_length > cfg.max_body_bytes {
        return Err(413);
    }
    let mut body = buf[head_end + 4..].to_vec();
    let mut chunk = [0u8; 4096];
    while body.len() < content_length {
        match stream.read(&mut chunk) {
            Ok(0) => return Err(400),
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                return Err(408)
            }
            Err(_) => return Err(400),
        }
    }
    body.truncate(content_length);
    Ok(Request { method, path, body })
}

/// Parse a `Content-Length` header (case-insensitive); absent means 0.
fn content_length(head: &str) -> Result<usize, u16> {
    for line in head.lines().skip(1) {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                return value.trim().parse().map_err(|_| 400u16);
            }
        }
    }
    Ok(0)
}

/// Read until the blank line ending the request head; returns the head
/// length (bytes read past it stay in `buf` — the start of the body).
fn read_until_head_end(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
    cap: usize,
) -> Result<usize, u16> {
    let mut chunk = [0u8; 1024];
    loop {
        if let Some(end) = find_head_end(buf) {
            return Ok(end);
        }
        if buf.len() >= cap {
            return Err(431);
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Err(400),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                return Err(408)
            }
            Err(_) => return Err(400),
        }
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// The `/incidents` body: a count header followed by each rendered
/// recovery timeline.
fn incidents_report(obs: &Obs) -> String {
    let incidents = obs.incidents();
    let mut out = format!("{} incident(s) reconstructed\n", incidents.len());
    for inc in &incidents {
        out.push('\n');
        out.push_str(&inc.render());
    }
    out
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Error",
    }
}

/// Write a full `Connection: close` response; errors are swallowed — the
/// client hanging up mid-write must not take a worker down. With a
/// nonzero `close_grace`, wait up to that long for the client's FIN
/// before closing, so `TIME_WAIT` lands on the client side.
fn respond_best_effort(
    mut stream: TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
    close_grace: Duration,
) {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n",
        reason(status),
        body.len()
    );
    let allow = if status == 405 { "Allow: GET\r\n" } else { "" };
    let sent = stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(allow.as_bytes()))
        .and_then(|()| stream.write_all(b"\r\n"))
        .and_then(|()| stream.write_all(body.as_bytes()))
        .and_then(|()| stream.flush());
    if sent.is_ok() && !close_grace.is_zero() {
        drain_until_client_close(&mut stream, close_grace);
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// Read (and discard) until EOF or the grace expires. A prompt client
/// returns in microseconds; a rude one costs at most `grace`.
fn drain_until_client_close(stream: &mut TcpStream, grace: Duration) {
    let begun = Instant::now();
    let mut sink = [0u8; 256];
    loop {
        let Some(left) = grace.checked_sub(begun.elapsed()).filter(|d| !d.is_zero()) else {
            return;
        };
        if stream.set_read_timeout(Some(left)).is_err() {
            return;
        }
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RecordKind;

    /// Raw-TCP fetch returning `(status, body)`.
    fn fetch(addr: SocketAddr, request: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connect to endpoint");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let status: u16 = raw
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status line");
        let body = raw
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        fetch(addr, &format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n"))
    }

    fn server() -> (Obs, ObsServer) {
        let obs = Obs::new();
        let srv = ObsServer::start(obs.clone(), ServeConfig::ephemeral()).unwrap();
        (obs, srv)
    }

    #[test]
    fn serves_all_routes() {
        let (obs, srv) = server();
        obs.counter("core", "events", "").add(5);
        obs.record(RecordKind::AppCrash {
            app: "a".into(),
            detail: "p".into(),
        });
        let addr = srv.local_addr();

        let (status, body) = get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(body.contains("legosdn_core_events 5"));

        let (status, body) = get(addr, "/metrics.json");
        assert_eq!(status, 200);
        assert!(body.contains("\"incidents\""));

        let (status, body) = get(addr, "/incidents");
        assert_eq!(status, 200);
        assert!(body.contains("1 incident(s) reconstructed"));
        assert!(body.contains("incident app=a"));

        let (status, body) = get(addr, "/healthz");
        assert_eq!(status, 200);
        assert_eq!(body, "ok\n");

        srv.shutdown();
    }

    #[test]
    fn unknown_path_is_404_and_non_get_is_405() {
        let (_obs, srv) = server();
        let addr = srv.local_addr();
        assert_eq!(get(addr, "/nope").0, 404);
        assert_eq!(
            fetch(addr, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n").0,
            405
        );
        srv.shutdown();
    }

    #[test]
    fn query_strings_are_ignored_for_routing() {
        let (_obs, srv) = server();
        assert_eq!(get(srv.local_addr(), "/healthz?probe=1").0, 200);
        srv.shutdown();
    }

    #[test]
    fn oversized_request_head_is_rejected() {
        let obs = Obs::new();
        let srv = ObsServer::builder()
            .max_request_bytes(256)
            .start(obs)
            .unwrap();
        let huge = format!(
            "GET /metrics HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
            "a".repeat(4096)
        );
        assert_eq!(fetch(srv.local_addr(), &huge).0, 431);
        srv.shutdown();
    }

    #[test]
    fn oversized_body_is_rejected_with_413() {
        let obs = Obs::new();
        let srv = ObsServer::builder().max_body_bytes(64).start(obs).unwrap();
        let req = format!(
            "POST /metrics HTTP/1.1\r\nHost: x\r\nContent-Length: 4096\r\n\r\n{}",
            "b".repeat(4096)
        );
        assert_eq!(fetch(srv.local_addr(), &req).0, 413);
        srv.shutdown();
    }

    #[test]
    fn custom_handler_receives_method_path_and_body() {
        struct Echo;
        impl RouteHandler for Echo {
            fn route(&self, req: &Request) -> Response {
                Response::text(
                    200,
                    format!("{} {} {}b\n", req.method, req.path, req.body.len()),
                )
            }
        }
        let srv = ObsServer::builder()
            .start_with(Arc::new(Echo), Obs::new())
            .unwrap();
        let (status, body) = fetch(
            srv.local_addr(),
            "POST /push HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello",
        );
        assert_eq!(status, 200);
        assert_eq!(body, "POST /push 5b\n");
        srv.shutdown();
    }

    #[test]
    fn builder_configures_the_endpoint() {
        let obs = Obs::new();
        let srv = ObsServer::builder()
            .workers(3)
            .backlog(8)
            .io_deadline(Duration::from_secs(1))
            .close_grace(Duration::from_millis(200))
            .start(obs)
            .unwrap();
        let addr = srv.local_addr();
        assert_eq!(get(addr, "/healthz").0, 200);
        let joined = srv.shutdown();
        assert_eq!(joined, 4, "accept loop + 3 workers, none leaked");
    }

    #[test]
    fn close_grace_port_is_rebindable_when_client_closes_first() {
        let obs = Obs::new();
        let srv = ObsServer::builder()
            .close_grace(Duration::from_secs(1))
            .start(obs.clone())
            .unwrap();
        let addr = srv.local_addr();
        // A well-behaved client: parse Content-Length, read exactly the
        // response, close first.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut buf = Vec::new();
        let mut chunk = [0u8; 256];
        let body_len = loop {
            let n = stream.read(&mut chunk).unwrap();
            assert!(n > 0, "server closed before client");
            buf.extend_from_slice(&chunk[..n]);
            if let Some(end) = find_head_end(&buf) {
                let head = std::str::from_utf8(&buf[..end]).unwrap();
                break content_length_of(head);
            }
        };
        while buf.len() < buf.windows(4).position(|w| w == b"\r\n\r\n").unwrap() + 4 + body_len {
            let n = stream.read(&mut chunk).unwrap();
            buf.extend_from_slice(&chunk[..n]);
        }
        drop(stream); // client FIN first → server side leaves no TIME_WAIT
        srv.shutdown();
        // The port is immediately re-bindable.
        let srv2 = ObsServer::builder().addr(addr).start(Obs::new()).unwrap();
        assert_eq!(get(srv2.local_addr(), "/healthz").0, 200);
        srv2.shutdown();
    }

    fn content_length_of(head: &str) -> usize {
        head.lines()
            .filter_map(|l| l.split_once(':'))
            .find(|(n, _)| n.trim().eq_ignore_ascii_case("content-length"))
            .and_then(|(_, v)| v.trim().parse().ok())
            .unwrap_or(0)
    }

    #[test]
    fn own_request_counter_increases_between_scrapes() {
        let (_obs, srv) = server();
        let addr = srv.local_addr();
        let first = get(addr, "/metrics").1;
        let second = get(addr, "/metrics").1;
        let count = |body: &str| {
            body.lines()
                .find(|l| l.starts_with("legosdn_obsd_http_requests_total{label=\"200\"}"))
                .and_then(|l| l.rsplit(' ').next()?.parse::<u64>().ok())
        };
        let (a, b) = (count(&first), count(&second));
        assert!(b > a, "strictly increasing: {a:?} then {b:?}");
        srv.shutdown();
    }

    #[test]
    fn shutdown_joins_all_threads_and_closes_listener() {
        let obs = Obs::new();
        let cfg = ServeConfig {
            workers: 3,
            ..ServeConfig::ephemeral()
        };
        let srv = ObsServer::start(obs, cfg).unwrap();
        let addr = srv.local_addr();
        assert_eq!(get(addr, "/healthz").0, 200);
        let joined = srv.shutdown();
        assert_eq!(joined, 4, "accept loop + 3 workers, none leaked");
        assert!(
            TcpStream::connect(addr).is_err(),
            "listener closed after shutdown"
        );
    }

    #[test]
    fn drop_also_shuts_down() {
        let (_obs, srv) = server();
        let addr = srv.local_addr();
        drop(srv);
        assert!(TcpStream::connect(addr).is_err());
    }
}
