//! `legosdn-obs` — zero-dependency observability for LegoSDN.
//!
//! The paper's pitch is that app failures become *survivable events with a
//! measurable recovery path*; this crate makes that path measurable. Four
//! pieces, all std-only:
//!
//! - **Metrics** ([`metrics`]): lock-free counters/gauges and log-bucketed
//!   latency histograms addressed by `(component, name, label)`.
//! - **Spans** ([`span!`], [`Histogram::start`]): RAII guards timing a
//!   region via `Instant`, feeding histograms.
//! - **Journal** ([`journal`]): bounded ring buffer of structured recovery
//!   records (crashes, checkpoints, NetLog transactions, policy verdicts,
//!   tickets) with monotonic sequence numbers.
//! - **Timelines** ([`timeline`]): stitches journal records into
//!   per-incident detection→restore→replay reports.
//! - **Ops endpoint** ([`serve`]): a bounded, blocking HTTP responder
//!   serving all of the above live over TCP (`/metrics`, `/metrics.json`,
//!   `/incidents`, `/healthz`).
//!
//! Exporters ([`Obs::prometheus`], [`Obs::json_snapshot`]) serve scraping
//! and `BENCH_*.json` trajectories.
//!
//! Engines take an [`Obs`] handle (cheap `Arc` clone); everything defaults
//! to [`Obs::global`] so wiring is optional per call site, while tests use
//! private instances to stay isolated.

pub mod aggregate;
pub mod error;
pub mod export;
pub mod journal;
pub mod metrics;
pub mod push;
pub mod rollup;
pub mod serve;
pub mod timeline;
pub mod trace;

pub use aggregate::{AggregateConfig, Aggregator, FleetIncident, FLEET};
pub use error::ObsError;
pub use journal::{Journal, Record, RecordKind};
pub use metrics::{
    bucket_bounds, bucket_index, Counter, Gauge, Histogram, HistogramRow, HistogramSummary,
    SpanGuard,
};
pub use push::{PushAck, PushConfig, PushExporter, PushFrame, WireHistogram};
pub use rollup::{RollupConfig, RollupSample, RollupState, RollupTracker, RollupWindow};
pub use serve::{ObsServer, ObsServerBuilder, Request, Response, RouteHandler, ServeConfig};
pub use timeline::{reconstruct, IncidentReport, ReplayInfo, Resolution, RestoreInfo};
pub use trace::{FlightRecorder, Trace, TraceEvent, TraceId, DEFAULT_TRACE_CAPACITY};

use std::sync::{Arc, OnceLock};
use std::time::Instant;

use metrics::Registry;

/// Default journal capacity: enough for thousands of incidents without
/// unbounded growth.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 8192;

/// Shared observability handle: a metrics registry plus an event journal
/// with a common time base. Cloning is an `Arc` bump.
#[derive(Clone, Debug)]
pub struct Obs {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    registry: Registry,
    journal: Journal,
    tracer: FlightRecorder,
    start: Instant,
}

impl Default for Obs {
    fn default() -> Self {
        Self::new()
    }
}

impl Obs {
    /// A fresh instance with the default journal capacity.
    #[must_use]
    pub fn new() -> Self {
        Self::with_journal_capacity(DEFAULT_JOURNAL_CAPACITY)
    }

    /// A fresh instance retaining at most `capacity` journal records.
    #[must_use]
    pub fn with_journal_capacity(capacity: usize) -> Self {
        Obs {
            inner: Arc::new(Inner {
                registry: Registry::default(),
                journal: Journal::new(capacity),
                tracer: FlightRecorder::new(DEFAULT_TRACE_CAPACITY),
                start: Instant::now(),
            }),
        }
    }

    /// The process-wide instance. Engines default to this when not handed
    /// an explicit instance.
    #[must_use]
    pub fn global() -> Obs {
        static GLOBAL: OnceLock<Obs> = OnceLock::new();
        GLOBAL.get_or_init(Obs::new).clone()
    }

    /// Nanoseconds since this instance was created — the journal's time
    /// base.
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.inner.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Counter handle for `(component, name, label)`; hold it for hot
    /// paths, updates are lock-free.
    #[must_use]
    pub fn counter(&self, component: &str, name: &str, label: &str) -> Arc<Counter> {
        self.inner.registry.counter(component, name, label)
    }

    /// Gauge handle for `(component, name, label)`.
    #[must_use]
    pub fn gauge(&self, component: &str, name: &str, label: &str) -> Arc<Gauge> {
        self.inner.registry.gauge(component, name, label)
    }

    /// Histogram handle for `(component, name, label)`.
    #[must_use]
    pub fn histogram(&self, component: &str, name: &str, label: &str) -> Arc<Histogram> {
        self.inner.registry.histogram(component, name, label)
    }

    /// Start a span timing `path` (`"component.name"`, split at the first
    /// dot). The guard records elapsed nanoseconds on drop.
    #[must_use]
    pub fn span(&self, path: &str) -> SpanGuard {
        self.span_labeled(path, "")
    }

    /// [`Obs::span`] with an explicit label — the worker-sharded runtime
    /// tags per-worker spans `w0`, `w1`, … so one shard's fill/commit
    /// timing doesn't blur into another's. An empty label lands in the
    /// same series `span` uses.
    #[must_use]
    pub fn span_labeled(&self, path: &str, label: &str) -> SpanGuard {
        let (component, name) = path.split_once('.').unwrap_or(("obs", path));
        self.histogram(component, name, label).start()
    }

    /// Append a journal record stamped with [`Obs::now_ns`]; returns its
    /// sequence number. A record evicted to make room bumps the
    /// `journal_dropped` counter so bounded-ring data loss is visible in
    /// `/metrics` and push frames.
    pub fn record(&self, kind: RecordKind) -> u64 {
        let (seq, dropped) = self.inner.journal.record_at_evicting(self.now_ns(), kind);
        if dropped {
            self.counter("journal", "dropped", "").inc();
        }
        seq
    }

    /// The underlying journal (for tests and exporters).
    #[must_use]
    pub fn journal(&self) -> &Journal {
        &self.inner.journal
    }

    /// Open a causal trace for one dispatched event. An evicted trace
    /// (ring at capacity) bumps the `traces_dropped` counter.
    pub fn trace_begin(&self, id: TraceId, kind: &str) {
        if self.inner.tracer.begin(id, kind, self.now_ns()) {
            self.counter("trace", "traces_dropped", "").inc();
        }
    }

    /// Point subsequent [`Obs::trace_event`] calls at `id` (or nowhere).
    /// The runtime scopes the recorder to whichever event it is working
    /// on; layers below record phases without knowing the id.
    pub fn trace_scope(&self, id: Option<TraceId>) {
        self.inner.tracer.set_scope(id);
    }

    /// The trace currently in scope.
    #[must_use]
    pub fn trace_scope_id(&self) -> Option<TraceId> {
        self.inner.tracer.scope()
    }

    /// Append a `(phase, app, outcome)` step to the trace in scope.
    /// Single relaxed atomic load when tracing is off or out of scope.
    pub fn trace_event(&self, phase: &str, app: &str, outcome: &str) {
        self.inner.tracer.event(self.now_ns(), phase, app, outcome);
    }

    /// Append a step to a specific trace regardless of scope (cross-trace
    /// effects such as window cancellation).
    pub fn trace_event_for(&self, id: TraceId, phase: &str, app: &str, outcome: &str) {
        self.inner
            .tracer
            .event_for(id, self.now_ns(), phase, app, outcome);
    }

    /// All retained traces, oldest first.
    #[must_use]
    pub fn traces(&self) -> Vec<Trace> {
        self.inner.tracer.snapshot()
    }

    /// One trace by id.
    #[must_use]
    pub fn trace(&self, id: TraceId) -> Option<Trace> {
        self.inner.tracer.get(id)
    }

    /// The `n` most recent traces, oldest first.
    #[must_use]
    pub fn recent_traces(&self, n: usize) -> Vec<Trace> {
        self.inner.tracer.recent(n)
    }

    /// Traces evicted from the flight recorder.
    #[must_use]
    pub fn traces_dropped(&self) -> u64 {
        self.inner.tracer.dropped()
    }

    /// The metrics registry — push/aggregate internals snapshot it whole.
    pub(crate) fn registry(&self) -> &Registry {
        &self.inner.registry
    }

    /// Reconstruct incident timelines from the current journal contents.
    #[must_use]
    pub fn incidents(&self) -> Vec<IncidentReport> {
        reconstruct(&self.inner.journal.snapshot())
    }

    /// Prometheus text exposition of all metrics.
    #[must_use]
    pub fn prometheus(&self) -> String {
        export::prometheus(&self.inner.registry)
    }

    /// JSON snapshot (metrics + journal occupancy + incidents) for
    /// `BENCH_*.json`.
    #[must_use]
    pub fn json_snapshot(&self) -> String {
        export::json_snapshot(&self.inner.registry, &self.inner.journal, &self.incidents())
    }
}

/// Time a region: `let _g = obs::span!(obs, "appvisor.deliver");` records
/// elapsed nanoseconds into the `(appvisor, deliver, "")` histogram when
/// the guard drops. The one-argument form uses [`Obs::global`].
#[macro_export]
macro_rules! span {
    ($obs:expr, $path:expr) => {
        $obs.span($path)
    };
    ($path:expr) => {
        $crate::Obs::global().span($path)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_facade_roundtrip() {
        let obs = Obs::with_journal_capacity(8);
        obs.counter("core", "events", "").add(3);
        {
            let _g = span!(obs, "appvisor.deliver");
        }
        obs.record(RecordKind::AppCrash {
            app: "a".into(),
            detail: "p".into(),
        });
        obs.record(RecordKind::TicketFiled {
            app: "a".into(),
            failure: "fs".into(),
        });

        assert_eq!(obs.counter("core", "events", "").get(), 3);
        assert_eq!(obs.histogram("appvisor", "deliver", "").count(), 1);
        let incidents = obs.incidents();
        assert_eq!(incidents.len(), 1);
        assert!(obs.prometheus().contains("legosdn_core_events 3"));
        assert!(obs.json_snapshot().contains("\"incidents\""));
    }

    #[test]
    fn clones_share_state() {
        let a = Obs::new();
        let b = a.clone();
        a.counter("x", "y", "").inc();
        assert_eq!(b.counter("x", "y", "").get(), 1);
    }

    #[test]
    fn journal_timestamps_are_monotonic() {
        let obs = Obs::new();
        let s1 = obs.record(RecordKind::HeartbeatMiss { app: "a".into() });
        let s2 = obs.record(RecordKind::HeartbeatMiss { app: "a".into() });
        assert!(s2 > s1);
        let snap = obs.journal().snapshot();
        assert!(snap[1].at_ns >= snap[0].at_ns);
    }

    #[test]
    fn journal_eviction_bumps_the_dropped_counter() {
        let obs = Obs::with_journal_capacity(2);
        for _ in 0..5 {
            obs.record(RecordKind::HeartbeatMiss { app: "a".into() });
        }
        assert_eq!(obs.counter("journal", "dropped", "").get(), 3);
        assert!(obs.prometheus().contains("legosdn_journal_dropped 3"));
    }

    #[test]
    fn trace_facade_records_scoped_phases() {
        let obs = Obs::new();
        let id = TraceId { cycle: 1, seq: 0 };
        obs.trace_begin(id, "PacketIn");
        obs.trace_scope(Some(id));
        obs.trace_event("fill", "lsw", "selected");
        obs.trace_event("send", "lsw", "queued");
        obs.trace_scope(None);
        obs.trace_event("send", "lsw", "ignored");
        let t = obs.trace(id).unwrap();
        assert_eq!(t.events.len(), 2);
        assert_eq!(t.events[0].phase, "fill");
        assert_eq!(obs.traces().len(), 1);
        assert_eq!(obs.traces_dropped(), 0);
    }

    #[test]
    fn global_is_a_singleton() {
        Obs::global().counter("global", "probe", "").inc();
        assert!(Obs::global().counter("global", "probe", "").get() >= 1);
    }
}
