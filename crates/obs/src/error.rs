//! A single error vocabulary for the serve/push/aggregate paths.
//!
//! The pull endpoint, the push exporter, and the aggregator used to speak
//! three dialects (`io::Error`, `String`, raw HTTP status codes); callers
//! could not tell a full queue from an expired deadline from a garbled
//! frame. [`ObsError`] names exactly those distinctions so retry logic can
//! branch on them: overload and deadline are transient (back off and
//! retry), protocol errors are permanent for a given frame (drop it),
//! and I/O errors depend on the socket (connect refused while an
//! aggregator restarts is transient; a bind failure is not).

use std::fmt;
use std::io;

/// What went wrong in the observability plumbing.
#[derive(Debug)]
pub enum ObsError {
    /// The peer answered `503`: its worker queue is full. Transient —
    /// back off and retry.
    Overload,
    /// A connect/send/receive deadline expired before the operation
    /// completed. Transient.
    Deadline,
    /// The bytes on the wire made no sense: a malformed frame, a reserved
    /// campaign name, or an unexpected HTTP status. Permanent for this
    /// payload.
    Protocol(String),
    /// Socket-level failure (connect refused, reset, bind error).
    Io(io::Error),
}

impl ObsError {
    /// Short stable name — used as a metric label on error counters.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            ObsError::Overload => "overload",
            ObsError::Deadline => "deadline",
            ObsError::Protocol(_) => "protocol",
            ObsError::Io(_) => "io",
        }
    }

    /// Whether a retry with backoff can reasonably succeed.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            ObsError::Overload | ObsError::Deadline | ObsError::Io(_)
        )
    }
}

impl fmt::Display for ObsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObsError::Overload => write!(f, "peer overloaded (503)"),
            ObsError::Deadline => write!(f, "deadline expired"),
            ObsError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ObsError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for ObsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ObsError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ObsError {
    /// Timeout-shaped I/O errors become [`ObsError::Deadline`]; the rest
    /// stay [`ObsError::Io`].
    fn from(e: io::Error) -> Self {
        match e.kind() {
            io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock => ObsError::Deadline,
            _ => ObsError::Io(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeouts_classify_as_deadline() {
        let e: ObsError = io::Error::new(io::ErrorKind::TimedOut, "slow").into();
        assert!(matches!(e, ObsError::Deadline));
        let e: ObsError = io::Error::new(io::ErrorKind::WouldBlock, "slow").into();
        assert!(matches!(e, ObsError::Deadline));
        let e: ObsError = io::Error::new(io::ErrorKind::ConnectionRefused, "down").into();
        assert!(matches!(e, ObsError::Io(_)));
    }

    #[test]
    fn kinds_and_transience() {
        assert_eq!(ObsError::Overload.kind(), "overload");
        assert!(ObsError::Overload.is_transient());
        assert!(ObsError::Deadline.is_transient());
        assert!(!ObsError::Protocol("x".into()).is_transient());
        assert!(ObsError::Io(io::Error::other("x")).is_transient());
    }
}
