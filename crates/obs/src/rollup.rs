//! Time-windowed rollups with bounded retention.
//!
//! Long-running campaigns need "what did the last few minutes look like"
//! answers without unbounded growth: the tracker folds cumulative series
//! (event counts, the `core.run_cycle` latency histogram, recovery
//! count/duration) into fixed-width windows of *deltas*, retaining only
//! the most recent `retain` windows (drop-oldest).
//!
//! Sampling is pull-shaped: callers hand the tracker a [`RollupSample`]
//! whenever convenient (each push-frame ingest on the aggregator, each
//! `GET /rollups` locally). When a sample lands past the current window
//! boundary, the open window closes with the delta between its boundary
//! samples. Attribution is at sample granularity — a sample's activity
//! counts toward the window it closes into, which is exact whenever
//! sampling is at least as frequent as the window width.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Mutex;
use std::time::Duration;

use crate::Obs;

/// Width and retention of the rollup ring.
#[derive(Clone, Copy, Debug)]
pub struct RollupConfig {
    /// Window width (default 10s).
    pub width: Duration,
    /// Closed windows retained before the oldest is evicted (default 60 —
    /// ten minutes of history at the default width).
    pub retain: usize,
}

impl Default for RollupConfig {
    fn default() -> Self {
        RollupConfig {
            width: Duration::from_secs(10),
            retain: 60,
        }
    }
}

impl RollupConfig {
    fn width_ns(&self) -> u64 {
        u64::try_from(self.width.as_nanos())
            .unwrap_or(u64::MAX)
            .max(1)
    }
}

/// A point-in-time reading of the cumulative series the rollup tracks.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RollupSample {
    /// Timestamp on the *sampler's* clock (campaign obs locally,
    /// aggregator obs fleet-side, so fleet windows align).
    pub at_ns: u64,
    /// Cumulative events translated.
    pub events: u64,
    /// Cumulative cycle count (`core.run_cycle` histogram count).
    pub cycles: u64,
    /// Cumulative fail-stop recoveries (summed over app labels).
    pub recoveries: u64,
    /// Cumulative restore duration (`crashpad.restore_ns` sum / count).
    pub recovery_ns: u64,
    pub recovery_count: u64,
    /// Cumulative `core.run_cycle` buckets as `(upper_bound, count)`.
    pub cycle_buckets: Vec<(u64, u64)>,
}

impl RollupSample {
    /// Read the tracked series straight out of an [`Obs`] registry.
    #[must_use]
    pub fn from_obs(obs: &Obs) -> RollupSample {
        let reg = obs.registry();
        let mut s = RollupSample {
            at_ns: obs.now_ns(),
            ..RollupSample::default()
        };
        for (key, value) in reg.counters() {
            match (key.0.as_str(), key.1.as_str()) {
                ("core", "events_translated") => s.events += value,
                ("core", "failstop_recoveries") => s.recoveries += value,
                _ => {}
            }
        }
        for (key, summary, buckets) in reg.histograms() {
            match (key.0.as_str(), key.1.as_str()) {
                ("core", "run_cycle") => {
                    s.cycles += summary.count;
                    merge_buckets(&mut s.cycle_buckets, &buckets);
                }
                ("crashpad", "restore_ns") => {
                    s.recovery_count += summary.count;
                    s.recovery_ns = s.recovery_ns.saturating_add(summary.sum);
                }
                _ => {}
            }
        }
        s
    }
}

/// Sum `(upper_bound, count)` bucket lists bucket-wise into `into`.
pub fn merge_buckets(into: &mut Vec<(u64, u64)>, add: &[(u64, u64)]) {
    let mut map: BTreeMap<u64, u64> = into.iter().copied().collect();
    for &(ub, c) in add {
        *map.entry(ub).or_insert(0) += c;
    }
    *into = map.into_iter().collect();
}

/// Quantile over `(upper_bound, count)` deltas: the upper bound of the
/// covering bucket (same ~2x-error contract as the live histograms).
#[must_use]
pub fn quantile_from_buckets(buckets: &[(u64, u64)], q: f64) -> u64 {
    let total: u64 = buckets.iter().map(|&(_, c)| c).sum();
    if total == 0 {
        return 0;
    }
    let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
    let mut cum = 0u64;
    for &(ub, c) in buckets {
        cum += c;
        if cum >= rank {
            return ub;
        }
    }
    buckets.last().map_or(0, |&(ub, _)| ub)
}

/// One closed window of deltas.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RollupWindow {
    /// Window ordinal: `floor(start-of-window / width)` on the sampler's
    /// clock.
    pub index: u64,
    pub start_ns: u64,
    pub end_ns: u64,
    pub events: u64,
    pub events_per_sec: f64,
    pub cycles: u64,
    pub p50_cycle_ns: u64,
    pub p99_cycle_ns: u64,
    pub recoveries: u64,
    pub recovery_count: u64,
    pub recovery_ns: u64,
    /// Per-window `core.run_cycle` bucket deltas, kept so fleet rollups
    /// can merge bucket-wise before taking quantiles.
    pub cycle_buckets: Vec<(u64, u64)>,
}

impl RollupWindow {
    fn from_delta(
        index: u64,
        start_ns: u64,
        end_ns: u64,
        base: &RollupSample,
        s: &RollupSample,
    ) -> RollupWindow {
        let mut cycle_buckets: Vec<(u64, u64)> = Vec::new();
        let base_map: BTreeMap<u64, u64> = base.cycle_buckets.iter().copied().collect();
        for &(ub, c) in &s.cycle_buckets {
            let d = c.saturating_sub(base_map.get(&ub).copied().unwrap_or(0));
            if d > 0 {
                cycle_buckets.push((ub, d));
            }
        }
        let mut w = RollupWindow {
            index,
            start_ns,
            end_ns,
            events: s.events.saturating_sub(base.events),
            cycles: s.cycles.saturating_sub(base.cycles),
            recoveries: s.recoveries.saturating_sub(base.recoveries),
            recovery_count: s.recovery_count.saturating_sub(base.recovery_count),
            recovery_ns: s.recovery_ns.saturating_sub(base.recovery_ns),
            cycle_buckets,
            ..RollupWindow::default()
        };
        w.finish(end_ns.saturating_sub(start_ns));
        w
    }

    /// Recompute the derived fields (rate, quantiles) from the raw deltas.
    pub fn finish(&mut self, span_ns: u64) {
        self.events_per_sec = if span_ns == 0 {
            0.0
        } else {
            self.events as f64 * 1e9 / span_ns as f64
        };
        self.p50_cycle_ns = quantile_from_buckets(&self.cycle_buckets, 0.50);
        self.p99_cycle_ns = quantile_from_buckets(&self.cycle_buckets, 0.99);
    }

    /// JSON object for `/rollups`.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"index\":{},\"start_ns\":{},\"end_ns\":{},\"events\":{},\
             \"events_per_sec\":{:.3},\"cycles\":{},\"p50_cycle_ns\":{},\
             \"p99_cycle_ns\":{},\"recoveries\":{},\"recovery_count\":{},\
             \"recovery_ns\":{}}}",
            self.index,
            self.start_ns,
            self.end_ns,
            self.events,
            self.events_per_sec,
            self.cycles,
            self.p50_cycle_ns,
            self.p99_cycle_ns,
            self.recoveries,
            self.recovery_count,
            self.recovery_ns
        )
    }
}

/// Lock-free-clonable rollup core: boundary bookkeeping plus the bounded
/// ring of closed windows. Plain data so the aggregator can keep one per
/// campaign under its existing shard locks.
#[derive(Clone, Debug, Default)]
pub struct RollupState {
    /// Sample at the last closed boundary.
    base: Option<RollupSample>,
    base_window: u64,
    /// Most recent sample seen (the closing edge of the open window).
    last: Option<RollupSample>,
    windows: VecDeque<RollupWindow>,
    evicted: u64,
}

impl RollupState {
    /// Fold a sample in; closes the open window when `s` lands past its
    /// boundary, evicting the oldest closed window beyond `cfg.retain`.
    pub fn observe(&mut self, cfg: &RollupConfig, s: RollupSample) {
        let width = cfg.width_ns();
        let w = s.at_ns / width;
        match &self.base {
            None => {
                self.base = Some(s.clone());
                self.base_window = w;
            }
            Some(base) if w > self.base_window => {
                let closing = self.last.as_ref().unwrap_or(base).clone();
                let start_ns = self.base_window * width;
                let end_ns = start_ns + width;
                self.windows.push_back(RollupWindow::from_delta(
                    self.base_window,
                    start_ns,
                    end_ns,
                    base,
                    &closing,
                ));
                while self.windows.len() > cfg.retain.max(1) {
                    self.windows.pop_front();
                    self.evicted += 1;
                }
                self.base = Some(closing);
                self.base_window = w;
            }
            Some(_) => {}
        }
        self.last = Some(s);
    }

    /// Closed windows, oldest first.
    #[must_use]
    pub fn windows(&self) -> Vec<RollupWindow> {
        self.windows.iter().cloned().collect()
    }

    /// The open (not yet closed) window: deltas from the last boundary to
    /// the latest sample. `None` until two samples exist.
    #[must_use]
    pub fn current(&self, cfg: &RollupConfig) -> Option<RollupWindow> {
        let base = self.base.as_ref()?;
        let last = self.last.as_ref()?;
        let width = cfg.width_ns();
        Some(RollupWindow::from_delta(
            self.base_window,
            self.base_window * width,
            last.at_ns,
            base,
            last,
        ))
    }

    /// Closed windows evicted by retention.
    #[must_use]
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// JSON payload for one campaign's `/rollups` entry.
    #[must_use]
    pub fn to_json(&self, cfg: &RollupConfig) -> String {
        render_json(
            cfg,
            &self.windows(),
            self.current(cfg).as_ref(),
            self.evicted,
        )
    }
}

/// Thread-safe wrapper for the local (single-campaign) ops endpoint.
#[derive(Debug, Default)]
pub struct RollupTracker {
    cfg: RollupConfig,
    state: Mutex<RollupState>,
}

impl RollupTracker {
    #[must_use]
    pub fn new(cfg: RollupConfig) -> Self {
        RollupTracker {
            cfg,
            state: Mutex::new(RollupState::default()),
        }
    }

    pub fn observe(&self, s: RollupSample) {
        self.state.lock().unwrap().observe(&self.cfg, s);
    }

    #[must_use]
    pub fn windows(&self) -> Vec<RollupWindow> {
        self.state.lock().unwrap().windows()
    }

    #[must_use]
    pub fn config(&self) -> RollupConfig {
        self.cfg
    }

    /// Sample `obs` now, then render the `/rollups` JSON.
    #[must_use]
    pub fn json_for(&self, obs: &Obs) -> String {
        let mut st = self.state.lock().unwrap();
        st.observe(&self.cfg, RollupSample::from_obs(obs));
        st.to_json(&self.cfg)
    }
}

/// Render one rollup series (closed windows + the open one) as JSON.
#[must_use]
pub fn render_json(
    cfg: &RollupConfig,
    windows: &[RollupWindow],
    current: Option<&RollupWindow>,
    evicted: u64,
) -> String {
    use std::fmt::Write as _;
    let mut out = format!(
        "{{\"width_ns\":{},\"retain\":{},\"windows_evicted\":{evicted},\"windows\":[",
        cfg.width_ns(),
        cfg.retain
    );
    for (i, w) in windows.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(out, "{sep}{}", w.to_json());
    }
    out.push_str("],\"current\":");
    match current {
        Some(w) => out.push_str(&w.to_json()),
        None => out.push_str("null"),
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(at_s: u64, events: u64) -> RollupSample {
        RollupSample {
            at_ns: at_s * 1_000_000_000,
            events,
            cycles: events / 2,
            cycle_buckets: vec![(1023, events / 2)],
            ..RollupSample::default()
        }
    }

    #[test]
    fn windows_close_on_boundary_with_deltas() {
        let cfg = RollupConfig {
            width: Duration::from_secs(10),
            retain: 8,
        };
        let mut st = RollupState::default();
        st.observe(&cfg, sample(1, 100));
        st.observe(&cfg, sample(5, 200)); // still window 0
        assert!(st.windows().is_empty());
        st.observe(&cfg, sample(12, 260)); // crosses into window 1
        let ws = st.windows();
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].index, 0);
        // Window 0 closed with the delta up to its last in-window sample.
        assert_eq!(ws[0].events, 100);
        assert_eq!(ws[0].cycles, 50);
        assert!(ws[0].events_per_sec > 0.0);
        // The open window carries the remainder.
        let cur = st.current(&cfg).unwrap();
        assert_eq!(cur.events, 60);
    }

    #[test]
    fn retention_evicts_oldest_windows_at_cap() {
        let cfg = RollupConfig {
            width: Duration::from_secs(1),
            retain: 3,
        };
        let mut st = RollupState::default();
        for s in 0..10u64 {
            st.observe(&cfg, sample(s, s * 10));
        }
        let ws = st.windows();
        assert_eq!(ws.len(), 3, "ring holds exactly `retain` windows");
        assert_eq!(st.evicted(), 6, "9 closed, 6 evicted");
        // The survivors are the most recent ones, in order.
        let idx: Vec<u64> = ws.iter().map(|w| w.index).collect();
        assert_eq!(idx, vec![6, 7, 8]);
    }

    #[test]
    fn quantiles_come_from_bucket_deltas() {
        let b = vec![(63, 10), (1023, 80), (4095, 10)];
        assert_eq!(quantile_from_buckets(&b, 0.50), 1023);
        assert_eq!(quantile_from_buckets(&b, 0.99), 4095);
        assert_eq!(quantile_from_buckets(&[], 0.5), 0);
    }

    #[test]
    fn from_obs_reads_the_tracked_series() {
        let obs = Obs::new();
        obs.counter("core", "events_translated", "").add(7);
        obs.counter("core", "failstop_recoveries", "app1").add(2);
        obs.counter("core", "failstop_recoveries", "app2").add(1);
        obs.histogram("core", "run_cycle", "").observe(500);
        obs.histogram("crashpad", "restore_ns", "").observe(1000);
        let s = RollupSample::from_obs(&obs);
        assert_eq!(s.events, 7);
        assert_eq!(s.recoveries, 3);
        assert_eq!(s.cycles, 1);
        assert_eq!(s.recovery_count, 1);
        assert!(s.recovery_ns >= 1000);
        assert!(!s.cycle_buckets.is_empty());
    }

    #[test]
    fn render_json_is_balanced_and_tagged() {
        let cfg = RollupConfig::default();
        let mut st = RollupState::default();
        st.observe(&cfg, sample(1, 10));
        st.observe(&cfg, sample(2, 30));
        let json = st.to_json(&cfg);
        assert!(json.contains("\"width_ns\":10000000000"));
        assert!(json.contains("\"current\":{"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
