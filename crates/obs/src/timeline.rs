//! Recovery-timeline reconstruction: stitch raw journal records into
//! per-incident reports.
//!
//! This is the observable form of the paper's problem tickets — for each
//! detected failure it answers *how long* detection→restore→replay took,
//! *how many* network rules NetLog rolled back, and *what* the
//! compromise-policy engine decided.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::journal::{Record, RecordKind};

/// How an incident ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Resolution {
    /// A problem ticket was filed; `failure` is its failure class.
    Ticketed { failure: String },
    /// The app was declared dead (NoCompromise policy or repeated failure).
    AppDead,
    /// A new detection for the same app arrived before this one resolved.
    Superseded,
    /// The journal ended while the incident was still in flight.
    Open,
}

/// Crash-Pad restore details attached to an incident.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RestoreInfo {
    pub at_ns: u64,
    pub dur_ns: u64,
    pub bytes: u64,
}

/// Event-replay details attached to an incident.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplayInfo {
    pub at_ns: u64,
    pub dur_ns: u64,
    pub events_replayed: u64,
}

/// One reconstructed failure→recovery incident.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IncidentReport {
    pub app: String,
    /// Stable name of the detection record (`app_crash`, `comm_failure`,
    /// `byzantine_blocked`, `heartbeat_miss`).
    pub detected_by: String,
    pub detection_detail: String,
    pub detection_seq: u64,
    pub detection_at_ns: u64,
    pub restore: Option<RestoreInfo>,
    pub replay: Option<ReplayInfo>,
    /// Network ops undone by NetLog rollbacks during this incident.
    pub rules_rolled_back: u64,
    pub events_transformed: u64,
    pub events_dropped: u64,
    /// `(policy, verdict)` from the compromise-policy engine.
    pub policy: Option<(String, String)>,
    pub resolution: Resolution,
    /// Sequence number of the last record attributed to this incident.
    pub end_seq: u64,
    pub end_at_ns: u64,
}

impl IncidentReport {
    fn open(app: &str, rec: &Record) -> Self {
        let detail = match &rec.kind {
            RecordKind::AppCrash { detail, .. } => detail.clone(),
            RecordKind::ByzantineBlocked { violations, .. } => {
                format!("{violations} invariant violation(s)")
            }
            _ => String::new(),
        };
        IncidentReport {
            app: app.to_string(),
            detected_by: rec.kind.name().to_string(),
            detection_detail: detail,
            detection_seq: rec.seq,
            detection_at_ns: rec.at_ns,
            restore: None,
            replay: None,
            rules_rolled_back: 0,
            events_transformed: 0,
            events_dropped: 0,
            policy: None,
            resolution: Resolution::Open,
            end_seq: rec.seq,
            end_at_ns: rec.at_ns,
        }
    }

    fn attach(&mut self, rec: &Record) {
        self.end_seq = rec.seq;
        self.end_at_ns = self.end_at_ns.max(rec.at_ns);
    }

    /// Detection → restore-complete latency, if a restore happened.
    #[must_use]
    pub fn detection_to_restore_ns(&self) -> Option<u64> {
        self.restore
            .as_ref()
            .map(|r| r.at_ns.saturating_sub(self.detection_at_ns))
    }

    /// Detection → replay-complete latency, if a replay happened.
    #[must_use]
    pub fn detection_to_replay_ns(&self) -> Option<u64> {
        self.replay
            .as_ref()
            .map(|r| r.at_ns.saturating_sub(self.detection_at_ns))
    }

    /// Detection → resolution latency.
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.end_at_ns.saturating_sub(self.detection_at_ns)
    }

    /// Multi-line human-readable report.
    #[must_use]
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "incident app={} detected_by={} seq={} t+{}us",
            self.app,
            self.detected_by,
            self.detection_seq,
            self.detection_at_ns / 1_000
        );
        if !self.detection_detail.is_empty() {
            let _ = writeln!(s, "  detail: {}", self.detection_detail);
        }
        if let Some((policy, verdict)) = &self.policy {
            let _ = writeln!(s, "  policy: {policy} -> {verdict}");
        }
        if let Some(r) = &self.restore {
            let _ = writeln!(
                s,
                "  restore: {} bytes in {}us ({}us after detection)",
                r.bytes,
                r.dur_ns / 1_000,
                self.detection_to_restore_ns().unwrap_or(0) / 1_000
            );
        }
        if let Some(r) = &self.replay {
            let _ = writeln!(
                s,
                "  replay: {} event(s) in {}us ({}us after detection)",
                r.events_replayed,
                r.dur_ns / 1_000,
                self.detection_to_replay_ns().unwrap_or(0) / 1_000
            );
        }
        let _ = writeln!(
            s,
            "  rolled back {} rule(s); {} event(s) transformed, {} dropped",
            self.rules_rolled_back, self.events_transformed, self.events_dropped
        );
        let resolution = match &self.resolution {
            Resolution::Ticketed { failure } => format!("ticket filed ({failure})"),
            Resolution::AppDead => "app declared dead".to_string(),
            Resolution::Superseded => "superseded by a new detection".to_string(),
            Resolution::Open => "still open".to_string(),
        };
        let _ = writeln!(
            s,
            "  resolution: {resolution} at seq={} (total {}us)",
            self.end_seq,
            self.total_ns() / 1_000
        );
        s
    }
}

/// Stitch journal records (any subset, in sequence order) into incidents.
///
/// Guarantees, for any input:
/// - incidents are returned ordered by `detection_seq`;
/// - per app, incident `[detection_seq, end_seq]` ranges never overlap;
/// - every record between a detection and its resolution that names the
///   same app (directly or via its NetLog transaction) is attributed to
///   exactly that incident.
#[must_use]
pub fn reconstruct(records: &[Record]) -> Vec<IncidentReport> {
    let mut sorted: Vec<&Record> = records.iter().collect();
    sorted.sort_by_key(|r| r.seq);

    let mut done: Vec<IncidentReport> = Vec::new();
    let mut open: HashMap<String, IncidentReport> = HashMap::new();
    let mut txn_app: HashMap<u64, String> = HashMap::new();

    for rec in sorted {
        // Resolve the app this record concerns, via the txn map for
        // commit/rollback records.
        let app: Option<String> = match &rec.kind {
            RecordKind::TxnCommit { txn, .. } | RecordKind::TxnRollback { txn, .. } => {
                txn_app.get(txn).cloned()
            }
            k => k.app().map(str::to_string),
        };
        if let RecordKind::TxnBegin { txn, app } = &rec.kind {
            txn_app.insert(*txn, app.clone());
        }
        let Some(app) = app else { continue };

        if rec.kind.is_detection() {
            if let Some(mut prev) = open.remove(&app) {
                prev.resolution = Resolution::Superseded;
                done.push(prev);
            }
            open.insert(app.clone(), IncidentReport::open(&app, rec));
            continue;
        }

        let Some(incident) = open.get_mut(&app) else {
            continue;
        };
        incident.attach(rec);
        match &rec.kind {
            RecordKind::CheckpointRestored { bytes, dur_ns, .. } => {
                incident.restore = Some(RestoreInfo {
                    at_ns: rec.at_ns,
                    dur_ns: *dur_ns,
                    bytes: *bytes,
                });
            }
            RecordKind::ReplayDone {
                events_replayed,
                dur_ns,
                ..
            } => {
                incident.replay = Some(ReplayInfo {
                    at_ns: rec.at_ns,
                    dur_ns: *dur_ns,
                    events_replayed: *events_replayed,
                });
            }
            RecordKind::TxnRollback { undo_ops, .. } => {
                incident.rules_rolled_back += undo_ops;
            }
            RecordKind::PolicyDecision {
                policy, verdict, ..
            } => {
                incident.policy = Some((policy.clone(), verdict.clone()));
            }
            RecordKind::EventTransformed { .. } => incident.events_transformed += 1,
            RecordKind::EventDropped { .. } => incident.events_dropped += 1,
            RecordKind::TicketFiled { failure, .. } => {
                let mut inc = open.remove(&app).unwrap();
                inc.resolution = Resolution::Ticketed {
                    failure: failure.clone(),
                };
                done.push(inc);
            }
            RecordKind::AppDead { .. } => {
                let mut inc = open.remove(&app).unwrap();
                inc.resolution = Resolution::AppDead;
                done.push(inc);
            }
            _ => {}
        }
    }

    done.extend(open.into_values());
    done.sort_by_key(|i| i.detection_seq);
    done
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::Journal;

    #[test]
    fn full_recovery_timeline_end_to_end() {
        let j = Journal::new(64);
        j.record_at(
            100,
            RecordKind::TxnBegin {
                txn: 1,
                app: "fwd".into(),
            },
        );
        j.record_at(
            1_000,
            RecordKind::AppCrash {
                app: "fwd".into(),
                detail: "index oob".into(),
            },
        );
        j.record_at(
            1_100,
            RecordKind::TxnRollback {
                txn: 1,
                undo_ops: 3,
            },
        );
        j.record_at(
            1_200,
            RecordKind::PolicyDecision {
                app: "fwd".into(),
                policy: "absolute".into(),
                verdict: "restore_and_replay".into(),
            },
        );
        j.record_at(
            5_000,
            RecordKind::CheckpointRestored {
                app: "fwd".into(),
                bytes: 512,
                dur_ns: 900,
            },
        );
        j.record_at(
            9_000,
            RecordKind::ReplayDone {
                app: "fwd".into(),
                events_replayed: 2,
                dur_ns: 3_000,
            },
        );
        j.record_at(
            9_500,
            RecordKind::TicketFiled {
                app: "fwd".into(),
                failure: "fail_stop".into(),
            },
        );

        let incidents = reconstruct(&j.snapshot());
        assert_eq!(incidents.len(), 1);
        let inc = &incidents[0];
        assert_eq!(inc.app, "fwd");
        assert_eq!(inc.detected_by, "app_crash");
        assert_eq!(inc.detection_to_restore_ns(), Some(4_000));
        assert_eq!(inc.detection_to_replay_ns(), Some(8_000));
        assert_eq!(inc.rules_rolled_back, 3);
        assert_eq!(inc.replay.as_ref().unwrap().events_replayed, 2);
        assert_eq!(inc.policy.as_ref().unwrap().1, "restore_and_replay");
        assert_eq!(
            inc.resolution,
            Resolution::Ticketed {
                failure: "fail_stop".into()
            }
        );
        assert_eq!(inc.total_ns(), 8_500);
        assert!(inc.render().contains("incident app=fwd"));
    }

    #[test]
    fn records_for_other_apps_do_not_leak_in() {
        let j = Journal::new(64);
        j.record_at(
            0,
            RecordKind::AppCrash {
                app: "a".into(),
                detail: String::new(),
            },
        );
        j.record_at(
            1,
            RecordKind::TxnBegin {
                txn: 7,
                app: "b".into(),
            },
        );
        j.record_at(
            2,
            RecordKind::TxnRollback {
                txn: 7,
                undo_ops: 5,
            },
        );
        j.record_at(3, RecordKind::EventDropped { app: "b".into() });
        j.record_at(
            4,
            RecordKind::TicketFiled {
                app: "a".into(),
                failure: "x".into(),
            },
        );

        let incidents = reconstruct(&j.snapshot());
        assert_eq!(incidents.len(), 1);
        assert_eq!(
            incidents[0].rules_rolled_back, 0,
            "b's rollback not charged to a"
        );
        assert_eq!(incidents[0].events_dropped, 0);
    }

    #[test]
    fn redetection_supersedes_open_incident() {
        let j = Journal::new(64);
        j.record_at(
            0,
            RecordKind::AppCrash {
                app: "a".into(),
                detail: String::new(),
            },
        );
        j.record_at(1, RecordKind::HeartbeatMiss { app: "a".into() });
        j.record_at(2, RecordKind::AppDead { app: "a".into() });

        let incidents = reconstruct(&j.snapshot());
        assert_eq!(incidents.len(), 2);
        assert_eq!(incidents[0].resolution, Resolution::Superseded);
        assert_eq!(incidents[1].resolution, Resolution::AppDead);
        // Non-overlapping: first ends before second begins.
        assert!(incidents[0].end_seq < incidents[1].detection_seq);
    }

    #[test]
    fn unresolved_incident_stays_open() {
        let j = Journal::new(64);
        j.record_at(0, RecordKind::CommFailure { app: "a".into() });
        let incidents = reconstruct(&j.snapshot());
        assert_eq!(incidents.len(), 1);
        assert_eq!(incidents[0].resolution, Resolution::Open);
    }

    #[test]
    fn non_incident_records_alone_yield_nothing() {
        let j = Journal::new(64);
        j.record_at(
            0,
            RecordKind::TxnBegin {
                txn: 1,
                app: "a".into(),
            },
        );
        j.record_at(1, RecordKind::TxnCommit { txn: 1, ops: 4 });
        j.record_at(
            2,
            RecordKind::CheckpointTaken {
                app: "a".into(),
                bytes: 10,
                dur_ns: 5,
            },
        );
        assert!(reconstruct(&j.snapshot()).is_empty());
    }
}
