//! Per-event causal traces: a bounded flight recorder of what happened to
//! each dispatched event, in order, across every layer of the stack.
//!
//! The runtime assigns each dispatched event a [`TraceId`] `(cycle,
//! event-seq)` and opens a [`Trace`] in the [`FlightRecorder`]. While that
//! event is being worked on, the runtime points the recorder's *scope* at
//! the trace; every layer it crosses — dispatch fill, AppVisor queue /
//! collect RPCs, Crash-Pad restore / replay / transform, NetLog commit /
//! rollback — appends a [`TraceEvent`] `(phase, app, outcome,
//! t-offset-ns)` to whichever trace is in scope, without any signature
//! changes on those layers.
//!
//! The recorder is a drop-oldest ring: at capacity the oldest trace is
//! evicted and `traces_dropped` incremented, so a long campaign holds a
//! bounded window of recent history. Traces ride [`crate::PushFrame`]s to
//! the fleet aggregator (deduplicated by `trace_seq`, last write wins) and
//! are served locally via `GET /traces` and `GET /traces/<id>`.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::thread::ThreadId;

use legosdn_codec::Codec;

use crate::export::json_escape;
use crate::timeline::IncidentReport;

/// Default number of traces the flight recorder retains.
pub const DEFAULT_TRACE_CAPACITY: usize = 256;

/// Hard cap on events recorded per trace; extras bump
/// [`Trace::truncated`] instead of growing without bound.
pub const MAX_TRACE_EVENTS: usize = 192;

/// Identity of one dispatched event: the runtime cycle that translated it
/// and its position within that cycle. Renders as `"<cycle>-<seq>"`
/// (the `/traces/<id>` path segment).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Codec)]
pub struct TraceId {
    pub cycle: u64,
    pub seq: u64,
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.cycle, self.seq)
    }
}

impl TraceId {
    /// Parse the `"<cycle>-<seq>"` form used in URLs.
    #[must_use]
    pub fn parse(s: &str) -> Option<TraceId> {
        let (c, e) = s.split_once('-')?;
        Some(TraceId {
            cycle: c.parse().ok()?,
            seq: e.parse().ok()?,
        })
    }
}

/// One step of an event's causal story: which phase ran, in which app's
/// context, with what outcome, at what offset from the trace's start.
#[derive(Clone, Debug, PartialEq, Eq, Codec)]
pub struct TraceEvent {
    pub t_off_ns: u64,
    pub phase: String,
    pub app: String,
    pub outcome: String,
}

/// The full causal record of one dispatched event. `trace_seq` is the
/// recorder-wide monotonic sequence number — the dedupe key when traces
/// are shipped repeatedly in push frames.
#[derive(Clone, Debug, PartialEq, Eq, Codec)]
pub struct Trace {
    pub id: TraceId,
    pub trace_seq: u64,
    pub kind: String,
    pub started_ns: u64,
    pub events: Vec<TraceEvent>,
    pub truncated: u64,
}

impl Trace {
    /// Index of the first event with `phase` for `app`, if any.
    #[must_use]
    pub fn first_phase(&self, app: &str, phase: &str) -> Option<usize> {
        self.events
            .iter()
            .position(|e| e.app == app && e.phase == phase)
    }

    /// Absolute timestamp (recorder time base) of the last event.
    #[must_use]
    pub fn last_at_ns(&self) -> u64 {
        self.started_ns + self.events.last().map_or(0, |e| e.t_off_ns)
    }

    /// JSON rendering of this trace plus any incidents (reconstructed from
    /// the journal by [`crate::timeline::reconstruct`]) that overlap it —
    /// the payload of `GET /traces/<id>`.
    #[must_use]
    pub fn to_json(&self, incidents: &[IncidentReport]) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"id\": \"{}\",\n  \"trace_seq\": {},\n  \"kind\": \"{}\",\n  \
             \"started_ns\": {},\n  \"truncated\": {},\n  \"events\": [",
            self.id,
            self.trace_seq,
            json_escape(&self.kind),
            self.started_ns,
            self.truncated
        );
        for (i, e) in self.events.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{\"t_off_ns\":{},\"phase\":\"{}\",\"app\":\"{}\",\
                 \"outcome\":\"{}\"}}",
                e.t_off_ns,
                json_escape(&e.phase),
                json_escape(&e.app),
                json_escape(&e.outcome)
            );
        }
        out.push_str("\n  ],\n  \"incidents\": [");
        let apps: Vec<&str> = self.events.iter().map(|e| e.app.as_str()).collect();
        let last = self.last_at_ns();
        let mut first = true;
        for inc in incidents {
            let end = inc.end_at_ns.max(inc.detection_at_ns);
            let overlaps = apps.contains(&inc.app.as_str())
                && inc.detection_at_ns <= last
                && end >= self.started_ns;
            if !overlaps {
                continue;
            }
            let sep = if first { "" } else { "," };
            first = false;
            let _ = write!(out, "{sep}\n    \"{}\"", json_escape(&inc.render()));
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Bounded drop-oldest ring of recent [`Trace`]s, plus the *scope*: the
/// trace that layer-level [`FlightRecorder::event`] calls append to.
///
/// Scopes are per calling thread, so the worker-sharded runtime can keep
/// one recorder and have each worker thread point its own scope at the
/// event it is dispatching; the `active` flag makes the disabled path
/// (sampling off, or no trace in scope anywhere) a single relaxed atomic
/// load.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    active: AtomicBool,
    dropped: AtomicU64,
    inner: Mutex<RecorderState>,
}

#[derive(Debug, Default)]
struct RecorderState {
    traces: VecDeque<Trace>,
    /// Scope per thread: which trace this thread's [`FlightRecorder::event`]
    /// calls append to. Keyed by `ThreadId` rather than thread-local so
    /// two recorder instances on one thread stay independent.
    scopes: HashMap<ThreadId, TraceId>,
    next_seq: u64,
}

impl FlightRecorder {
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity: capacity.max(1),
            active: AtomicBool::new(false),
            dropped: AtomicU64::new(0),
            inner: Mutex::new(RecorderState::default()),
        }
    }

    /// Open a new trace. Returns `true` when an old trace was evicted to
    /// make room (callers mirror that into the `traces_dropped` counter).
    pub fn begin(&self, id: TraceId, kind: &str, now_ns: u64) -> bool {
        let mut st = self.inner.lock().unwrap();
        st.next_seq += 1;
        let trace_seq = st.next_seq;
        let mut evicted = false;
        if st.traces.len() >= self.capacity {
            st.traces.pop_front();
            evicted = true;
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        st.traces.push_back(Trace {
            id,
            trace_seq,
            kind: kind.to_string(),
            started_ns: now_ns,
            events: Vec::new(),
            truncated: 0,
        });
        evicted
    }

    /// Point the calling thread's subsequent [`FlightRecorder::event`]
    /// calls at `id` (or nowhere, when `None`). Other threads' scopes are
    /// untouched.
    pub fn set_scope(&self, id: Option<TraceId>) {
        let mut st = self.inner.lock().unwrap();
        let tid = std::thread::current().id();
        match id {
            Some(id) => {
                st.scopes.insert(tid, id);
            }
            None => {
                st.scopes.remove(&tid);
            }
        }
        self.active.store(!st.scopes.is_empty(), Ordering::Relaxed);
    }

    /// The trace the calling thread currently has in scope.
    #[must_use]
    pub fn scope(&self) -> Option<TraceId> {
        let st = self.inner.lock().unwrap();
        st.scopes.get(&std::thread::current().id()).copied()
    }

    /// Append an event to the calling thread's trace in scope. No-op (one
    /// atomic load) when no thread has a scope anywhere.
    pub fn event(&self, now_ns: u64, phase: &str, app: &str, outcome: &str) {
        if !self.active.load(Ordering::Relaxed) {
            return;
        }
        let mut st = self.inner.lock().unwrap();
        let Some(&id) = st.scopes.get(&std::thread::current().id()) else {
            return;
        };
        Self::append(&mut st, id, now_ns, phase, app, outcome);
    }

    /// Append an event to a specific trace, ignoring the scope — used for
    /// cross-trace effects (a crash on event *k* cancelling event *k+1*'s
    /// queued delivery).
    pub fn event_for(&self, id: TraceId, now_ns: u64, phase: &str, app: &str, outcome: &str) {
        let mut st = self.inner.lock().unwrap();
        Self::append(&mut st, id, now_ns, phase, app, outcome);
    }

    fn append(
        st: &mut RecorderState,
        id: TraceId,
        now_ns: u64,
        phase: &str,
        app: &str,
        outcome: &str,
    ) {
        // Searching from the back finds the trace in O(depth): scoped
        // traces are always among the most recently opened.
        let Some(trace) = st.traces.iter_mut().rev().find(|t| t.id == id) else {
            return;
        };
        if trace.events.len() >= MAX_TRACE_EVENTS {
            trace.truncated += 1;
            return;
        }
        trace.events.push(TraceEvent {
            t_off_ns: now_ns.saturating_sub(trace.started_ns),
            phase: phase.to_string(),
            app: app.to_string(),
            outcome: outcome.to_string(),
        });
    }

    /// All retained traces, oldest first.
    #[must_use]
    pub fn snapshot(&self) -> Vec<Trace> {
        self.inner.lock().unwrap().traces.iter().cloned().collect()
    }

    /// The `n` most recent traces, oldest first — the push-frame payload.
    #[must_use]
    pub fn recent(&self, n: usize) -> Vec<Trace> {
        let st = self.inner.lock().unwrap();
        let skip = st.traces.len().saturating_sub(n);
        st.traces.iter().skip(skip).cloned().collect()
    }

    /// Look one trace up by id.
    #[must_use]
    pub fn get(&self, id: TraceId) -> Option<Trace> {
        self.inner
            .lock()
            .unwrap()
            .traces
            .iter()
            .rev()
            .find(|t| t.id == id)
            .cloned()
    }

    /// Traces evicted to make room (`traces_dropped`).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// Summary line for `GET /traces`: one JSON object per retained trace.
#[must_use]
pub fn list_json(traces: &[Trace], dropped: u64) -> String {
    use std::fmt::Write as _;
    let mut out = format!("{{\n  \"traces_dropped\": {dropped},\n  \"traces\": [");
    for (i, t) in traces.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    {{\"id\":\"{}\",\"kind\":\"{}\",\"events\":{},\
             \"started_ns\":{},\"truncated\":{}}}",
            t.id,
            json_escape(&t.kind),
            t.events.len(),
            t.started_ns,
            t.truncated
        );
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_id_roundtrips_through_display_and_parse() {
        let id = TraceId { cycle: 12, seq: 3 };
        assert_eq!(id.to_string(), "12-3");
        assert_eq!(TraceId::parse("12-3"), Some(id));
        assert_eq!(TraceId::parse("12"), None);
        assert_eq!(TraceId::parse("a-b"), None);
    }

    #[test]
    fn scoped_events_land_in_the_current_trace() {
        let r = FlightRecorder::new(8);
        let a = TraceId { cycle: 1, seq: 0 };
        let b = TraceId { cycle: 1, seq: 1 };
        r.begin(a, "PacketIn", 100);
        r.begin(b, "PacketIn", 110);
        r.set_scope(Some(a));
        r.event(150, "fill", "app1", "selected");
        r.set_scope(Some(b));
        r.event(160, "fill", "app1", "selected");
        r.set_scope(None);
        r.event(170, "fill", "app1", "ignored");
        let a = r.get(a).unwrap();
        assert_eq!(a.events.len(), 1);
        assert_eq!(a.events[0].t_off_ns, 50);
        let b = r.get(b).unwrap();
        assert_eq!(b.events.len(), 1);
        assert_eq!(b.events[0].t_off_ns, 50);
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let r = FlightRecorder::new(2);
        for i in 0..5u64 {
            let evicted = r.begin(TraceId { cycle: 0, seq: i }, "k", i);
            assert_eq!(evicted, i >= 2);
        }
        assert_eq!(r.dropped(), 3);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].id.seq, 3);
        assert_eq!(snap[1].id.seq, 4);
        assert!(r.get(TraceId { cycle: 0, seq: 0 }).is_none());
    }

    #[test]
    fn per_trace_event_cap_truncates() {
        let r = FlightRecorder::new(2);
        let id = TraceId { cycle: 0, seq: 0 };
        r.begin(id, "k", 0);
        r.set_scope(Some(id));
        for i in 0..(MAX_TRACE_EVENTS as u64 + 10) {
            r.event(i, "p", "a", "o");
        }
        let t = r.get(id).unwrap();
        assert_eq!(t.events.len(), MAX_TRACE_EVENTS);
        assert_eq!(t.truncated, 10);
    }

    #[test]
    fn scopes_are_per_thread() {
        use std::sync::Arc;
        let r = Arc::new(FlightRecorder::new(8));
        let a = TraceId { cycle: 1, seq: 0 };
        let b = TraceId { cycle: 1, seq: 1 };
        r.begin(a, "PacketIn", 0);
        r.begin(b, "PacketIn", 0);
        r.set_scope(Some(a));
        let worker = {
            let r = Arc::clone(&r);
            std::thread::spawn(move || {
                // This thread starts with no scope even though the main
                // thread has one.
                assert_eq!(r.scope(), None);
                r.event(5, "fill", "w", "ignored");
                r.set_scope(Some(b));
                r.event(10, "send", "w", "queued");
                r.set_scope(None);
            })
        };
        worker.join().unwrap();
        r.event(20, "commit", "m", "ok");
        r.set_scope(None);
        let a = r.get(a).unwrap();
        assert_eq!(a.events.len(), 1, "worker events never landed in a");
        assert_eq!(a.events[0].phase, "commit");
        let b = r.get(b).unwrap();
        assert_eq!(b.events.len(), 1);
        assert_eq!(b.events[0].phase, "send");
    }

    #[test]
    fn event_for_reaches_out_of_scope_traces() {
        let r = FlightRecorder::new(4);
        let a = TraceId { cycle: 2, seq: 0 };
        let b = TraceId { cycle: 2, seq: 1 };
        r.begin(a, "k", 0);
        r.begin(b, "k", 0);
        r.set_scope(Some(a));
        r.event_for(b, 5, "cancel", "app1", "crash upstream");
        assert_eq!(r.get(b).unwrap().events[0].phase, "cancel");
        assert!(r.get(a).unwrap().events.is_empty());
    }

    #[test]
    fn trace_wire_roundtrip() {
        let t = Trace {
            id: TraceId { cycle: 7, seq: 1 },
            trace_seq: 42,
            kind: "PacketIn".into(),
            started_ns: 1000,
            events: vec![TraceEvent {
                t_off_ns: 5,
                phase: "fill".into(),
                app: "lsw".into(),
                outcome: "selected".into(),
            }],
            truncated: 0,
        };
        let bytes = legosdn_codec::to_bytes(&t).unwrap();
        let back: Trace = legosdn_codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn json_renders_events_and_is_balanced() {
        let r = FlightRecorder::new(4);
        let id = TraceId { cycle: 3, seq: 2 };
        r.begin(id, "PacketIn", 0);
        r.set_scope(Some(id));
        r.event(10, "fill", "a\"pp", "selected");
        let t = r.get(id).unwrap();
        let json = t.to_json(&[]);
        assert!(json.contains("\"id\": \"3-2\""));
        assert!(json.contains("a\\\"pp"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let list = list_json(&r.snapshot(), r.dropped());
        assert!(list.contains("\"id\":\"3-2\""));
        assert_eq!(list.matches('[').count(), list.matches(']').count());
    }
}
