//! Fleet aggregation: merge pushes from N campaign daemons into one
//! operator view.
//!
//! Each [`crate::push::PushExporter`] POSTs [`PushFrame`]s here. The
//! [`Aggregator`] keeps per-campaign state (latest cumulative metric
//! snapshot plus a bounded journal of records) and re-serves the merged
//! fleet through the same routes a single campaign exposes:
//!
//! - `/metrics` — every series namespaced with a `campaign` label, plus a
//!   fleet roll-up under the reserved campaign [`FLEET`]: counters and
//!   gauges sum, histograms merge *bucket-wise* (per upper bound), so
//!   fleet percentiles stay honest.
//! - `/incidents` — recovery timelines from every campaign in one total
//!   order: `(push epoch, local seq)`, where the epoch is the arrival
//!   order of the push that delivered the incident's detection record.
//!   Local sequence numbers from different campaigns are incomparable;
//!   arrival epochs are what one observer can actually totally order.
//! - `/healthz` — per-campaign liveness: a campaign that has not pushed
//!   within [`AggregateConfig::liveness_window`] reports `alive=false`
//!   (and flips the first line to `degraded`) but its series stay
//!   retained — disappearance is itself a signal worth serving.
//!
//! Because frames carry *cumulative* metrics, ingest is idempotent
//! (last-write-wins per campaign) and a lost frame costs freshness only.
//! Journal records dedupe on sequence number; the ack returned to the
//! exporter is this aggregator's high-water mark, which after a restart
//! is low or absent — exactly the signal that makes exporters rewind and
//! resend what their rings still hold.

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::error::ObsError;
use crate::export::{escape_label, json_escape, metric_name};
use crate::journal::Record;
use crate::metrics::Key;
use crate::push::PushFrame;
use crate::rollup::{merge_buckets, RollupConfig, RollupSample, RollupState, RollupWindow};
use crate::serve::{Request, Response, RouteHandler};
use crate::timeline::{reconstruct, IncidentReport, Resolution};
use crate::trace::{Trace, TraceId};
use crate::{Obs, DEFAULT_JOURNAL_CAPACITY, DEFAULT_TRACE_CAPACITY};

/// Reserved campaign label for fleet roll-up series. Pushing under this
/// name (or an empty name) is a protocol error.
pub const FLEET: &str = "_fleet";

/// Aggregator knobs.
#[derive(Clone, Debug)]
pub struct AggregateConfig {
    /// A campaign with no push for longer than this reports
    /// `alive=false` on `/healthz`.
    pub liveness_window: Duration,
    /// Records retained per campaign; oldest drop first.
    pub journal_capacity: usize,
    /// Causal traces retained per campaign; oldest drop first.
    pub trace_capacity: usize,
    /// Width and retention of the time-windowed rollups served on
    /// `GET /rollups`.
    pub rollup: RollupConfig,
}

impl Default for AggregateConfig {
    fn default() -> Self {
        AggregateConfig {
            liveness_window: Duration::from_secs(5),
            journal_capacity: DEFAULT_JOURNAL_CAPACITY,
            trace_capacity: DEFAULT_TRACE_CAPACITY,
            rollup: RollupConfig::default(),
        }
    }
}

/// A campaign's histogram as last pushed: summary scalars plus raw
/// per-bucket counts keyed by upper bound, ready for bucket-wise merging.
#[derive(Clone, Debug, Default)]
struct HistogramState {
    count: u64,
    sum: u64,
    max: u64,
    buckets: BTreeMap<u64, u64>,
}

#[derive(Clone, Debug)]
struct CampaignState {
    counters: BTreeMap<Key, u64>,
    gauges: BTreeMap<Key, i64>,
    histograms: BTreeMap<Key, HistogramState>,
    /// `(arrival epoch, record)`, oldest first, deduped by `seq`.
    records: VecDeque<(u64, Record)>,
    /// Highest record sequence ever ingested — the ack.
    max_seq: Option<u64>,
    journal_total: u64,
    journal_evicted: u64,
    /// Causal traces, oldest first, upserted by `trace_seq` (a resent
    /// trace that gained events replaces its earlier copy whole).
    traces: VecDeque<Trace>,
    traces_dropped: u64,
    /// Time-windowed rollups, sampled at every ingest on the
    /// aggregator's clock so windows align across campaigns.
    rollup: RollupState,
    pushes: u64,
    last_push: Instant,
}

impl CampaignState {
    fn new() -> Self {
        CampaignState {
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            records: VecDeque::new(),
            max_seq: None,
            journal_total: 0,
            journal_evicted: 0,
            traces: VecDeque::new(),
            traces_dropped: 0,
            rollup: RollupState::default(),
            pushes: 0,
            last_push: Instant::now(),
        }
    }

    /// The rollup series reading for this campaign's current cumulative
    /// snapshot, stamped with the aggregator's clock.
    fn rollup_sample(&self, at_ns: u64) -> RollupSample {
        let mut s = RollupSample {
            at_ns,
            ..RollupSample::default()
        };
        for (k, v) in &self.counters {
            match (k.0.as_str(), k.1.as_str()) {
                ("core", "events_translated") => s.events += v,
                ("core", "failstop_recoveries") => s.recoveries += v,
                _ => {}
            }
        }
        for (k, h) in &self.histograms {
            match (k.0.as_str(), k.1.as_str()) {
                ("core", "run_cycle") => {
                    s.cycles += h.count;
                    let buckets: Vec<(u64, u64)> =
                        h.buckets.iter().map(|(ub, c)| (*ub, *c)).collect();
                    merge_buckets(&mut s.cycle_buckets, &buckets);
                }
                ("crashpad", "restore_ns") => {
                    s.recovery_count += h.count;
                    s.recovery_ns = s.recovery_ns.saturating_add(h.sum);
                }
                _ => {}
            }
        }
        s
    }
}

/// Number of ingest shards. Campaigns hash onto a fixed shard, so two
/// campaigns pushing concurrently contend only when they collide — with
/// 16 shards, a fleet of a few daemons almost never does. A power of two
/// keeps the modulo a mask.
const SHARDS: usize = 16;

/// FNV-1a over the campaign name, folded onto a shard index. Stable
/// (no RandomState) so a campaign's shard never moves within a process
/// or across restarts.
fn shard_of(campaign: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in campaign.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h as usize) & (SHARDS - 1)
}

/// One campaign's liveness row, as reported by [`Aggregator::campaigns`].
#[derive(Clone, Debug)]
pub struct CampaignSummary {
    pub name: String,
    pub alive: bool,
    pub age: Duration,
    pub pushes: u64,
    pub max_seq: Option<u64>,
}

/// An incident placed in the fleet-wide total order.
#[derive(Clone, Debug)]
pub struct FleetIncident {
    pub campaign: String,
    /// Arrival epoch of the push that delivered the detection record.
    pub epoch: u64,
    pub report: IncidentReport,
}

/// The fleet merge point. Shared behind an `Arc` between the serving
/// machinery (it implements [`RouteHandler`]) and whoever wants to
/// inspect state directly (tests, the `aggregate` binary's status loop).
pub struct Aggregator {
    cfg: AggregateConfig,
    /// The aggregator's *own* instruments (`aggregate.pushes_total` etc.)
    /// plus the serving endpoint's request counters.
    obs: Obs,
    /// Arrival counter: bumped once per accepted push. Stamps every
    /// ingested record, giving incidents their cross-campaign order.
    /// Atomic so concurrent ingests order themselves without sharing a
    /// lock.
    epoch: AtomicU64,
    /// Campaign states, sharded by [`shard_of`] so concurrent pushes
    /// from different campaigns do not serialize on one mutex. Reads
    /// that need the whole fleet merge a clone of every shard
    /// ([`Aggregator::collect`]).
    shards: [Mutex<BTreeMap<String, CampaignState>>; SHARDS],
}

impl Aggregator {
    #[must_use]
    pub fn new(cfg: AggregateConfig) -> Aggregator {
        Aggregator {
            cfg,
            obs: Obs::new(),
            epoch: AtomicU64::new(0),
            shards: std::array::from_fn(|_| Mutex::new(BTreeMap::new())),
        }
    }

    /// Read-merge: clone every shard's campaigns into one sorted map.
    /// Serving paths pay this copy so the ingest hot path never waits on
    /// a renderer holding a fleet-wide lock. Each shard is locked
    /// briefly and in turn; the result is a consistent-enough snapshot
    /// (cumulative frames make any interleaving last-write-wins).
    fn collect(&self) -> BTreeMap<String, CampaignState> {
        let mut merged = BTreeMap::new();
        for shard in &self.shards {
            for (name, c) in shard.lock().unwrap().iter() {
                merged.insert(name.clone(), c.clone());
            }
        }
        merged
    }

    /// The aggregator's own observability handle — hand this to
    /// [`crate::ObsServerBuilder::start_with`] so endpoint counters land
    /// beside the aggregation counters.
    #[must_use]
    pub fn obs(&self) -> Obs {
        self.obs.clone()
    }

    /// Ingest one push frame; returns the ack (this aggregator's highest
    /// known record sequence for the campaign).
    pub fn ingest(&self, frame: &PushFrame) -> Result<Option<u64>, ObsError> {
        if frame.campaign.is_empty() {
            return Err(ObsError::Protocol("empty campaign name".into()));
        }
        if frame.campaign == FLEET {
            return Err(ObsError::Protocol(format!(
                "campaign name {FLEET:?} is reserved for the fleet roll-up"
            )));
        }
        let epoch = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        let mut shard = self.shards[shard_of(&frame.campaign)].lock().unwrap();
        let campaign = shard
            .entry(frame.campaign.clone())
            .or_insert_with(CampaignState::new);

        // Cumulative snapshots: last write wins, wholesale.
        campaign.counters = frame.counters.iter().cloned().collect();
        campaign.gauges = frame.gauges.iter().cloned().collect();
        campaign.histograms = frame
            .histograms
            .iter()
            .map(|h| {
                (
                    h.key.clone(),
                    HistogramState {
                        count: h.count,
                        sum: h.sum,
                        max: h.max,
                        buckets: h.buckets.iter().copied().collect(),
                    },
                )
            })
            .collect();

        // Records dedupe on seq: an exporter rewound by a restart resends
        // what we may already hold.
        let mut fresh = 0u64;
        for rec in &frame.records {
            if campaign.max_seq.is_some_and(|m| rec.seq <= m) {
                continue;
            }
            campaign.max_seq = Some(rec.seq);
            campaign.records.push_back((epoch, rec.clone()));
            fresh += 1;
        }
        while campaign.records.len() > self.cfg.journal_capacity.max(1) {
            campaign.records.pop_front();
        }
        campaign.journal_total = frame.journal_total;
        campaign.journal_evicted = frame.journal_evicted;

        // Traces upsert on trace_seq: frames ship the sender's recent
        // ring cumulatively, so a trace can arrive repeatedly, each time
        // with more events — the newest copy wins whole.
        for t in &frame.traces {
            if let Some(existing) = campaign
                .traces
                .iter_mut()
                .find(|e| e.trace_seq == t.trace_seq)
            {
                *existing = t.clone();
            } else {
                campaign.traces.push_back(t.clone());
            }
        }
        while campaign.traces.len() > self.cfg.trace_capacity.max(1) {
            campaign.traces.pop_front();
            campaign.traces_dropped += 1;
        }
        campaign.traces_dropped = campaign.traces_dropped.max(frame.traces_dropped);

        campaign.pushes += 1;
        campaign.last_push = Instant::now();
        let sample = campaign.rollup_sample(self.obs.now_ns());
        campaign.rollup.observe(&self.cfg.rollup, sample);
        let ack = campaign.max_seq;
        drop(shard);

        self.obs
            .counter("aggregate", "pushes_total", &frame.campaign)
            .inc();
        self.obs
            .counter("aggregate", "records_total", &frame.campaign)
            .add(fresh);
        Ok(ack)
    }

    /// Per-campaign liveness rows, sorted by campaign name.
    #[must_use]
    pub fn campaigns(&self) -> Vec<CampaignSummary> {
        self.collect()
            .iter()
            .map(|(name, c)| {
                let age = c.last_push.elapsed();
                CampaignSummary {
                    name: name.clone(),
                    alive: age <= self.cfg.liveness_window,
                    age,
                    pushes: c.pushes,
                    max_seq: c.max_seq,
                }
            })
            .collect()
    }

    /// Every campaign's incidents in the fleet-wide total order:
    /// `(arrival epoch of the detection record, local detection seq)`.
    #[must_use]
    pub fn incidents(&self) -> Vec<FleetIncident> {
        let campaigns = self.collect();
        let mut out = Vec::new();
        for (name, c) in &campaigns {
            let records: Vec<Record> = c.records.iter().map(|(_, r)| r.clone()).collect();
            let epoch_of: BTreeMap<u64, u64> = c.records.iter().map(|(e, r)| (r.seq, *e)).collect();
            for report in reconstruct(&records) {
                let epoch = epoch_of.get(&report.detection_seq).copied().unwrap_or(0);
                out.push(FleetIncident {
                    campaign: name.clone(),
                    epoch,
                    report,
                });
            }
        }
        out.sort_by_key(|i| (i.epoch, i.report.detection_seq));
        out
    }

    /// Merged Prometheus exposition: every series labelled by campaign,
    /// plus [`FLEET`] roll-up series (sums; histograms bucket-wise).
    #[must_use]
    pub fn prometheus(&self) -> String {
        let campaigns = self.collect();
        let mut counters: BTreeMap<Key, BTreeMap<&str, u64>> = BTreeMap::new();
        let mut gauges: BTreeMap<Key, BTreeMap<&str, i64>> = BTreeMap::new();
        let mut histograms: BTreeMap<Key, BTreeMap<&str, &HistogramState>> = BTreeMap::new();
        for (name, c) in &campaigns {
            for (k, v) in &c.counters {
                counters.entry(k.clone()).or_default().insert(name, *v);
            }
            for (k, v) in &c.gauges {
                gauges.entry(k.clone()).or_default().insert(name, *v);
            }
            for (k, h) in &c.histograms {
                histograms.entry(k.clone()).or_default().insert(name, h);
            }
        }

        let mut out = String::new();
        for (key, per_campaign) in &counters {
            let name = metric_name(key);
            let _ = writeln!(out, "# TYPE {name} counter");
            let mut fleet = 0u64;
            for (campaign, v) in per_campaign {
                fleet = fleet.saturating_add(*v);
                let _ = writeln!(out, "{name}{} {v}", labels(campaign, &key.2, None));
            }
            let _ = writeln!(out, "{name}{} {fleet}", labels(FLEET, &key.2, None));
        }
        for (key, per_campaign) in &gauges {
            let name = metric_name(key);
            let _ = writeln!(out, "# TYPE {name} gauge");
            let mut fleet = 0i64;
            for (campaign, v) in per_campaign {
                fleet = fleet.saturating_add(*v);
                let _ = writeln!(out, "{name}{} {v}", labels(campaign, &key.2, None));
            }
            let _ = writeln!(out, "{name}{} {fleet}", labels(FLEET, &key.2, None));
        }
        for (key, per_campaign) in &histograms {
            let name = metric_name(key);
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut fleet = HistogramState::default();
            for (campaign, h) in per_campaign {
                fleet.count = fleet.count.saturating_add(h.count);
                fleet.sum = fleet.sum.saturating_add(h.sum);
                fleet.max = fleet.max.max(h.max);
                for (le, n) in &h.buckets {
                    *fleet.buckets.entry(*le).or_default() += n;
                }
                write_histogram(&mut out, &name, campaign, &key.2, h);
            }
            write_histogram(&mut out, &name, FLEET, &key.2, &fleet);
        }
        out
    }

    /// Merged JSON snapshot: campaign liveness plus every series with its
    /// `campaign` field, plus the totally ordered incident list.
    #[must_use]
    pub fn json_snapshot(&self) -> String {
        let rows = self.campaigns();
        let incidents = self.incidents();
        let campaigns = self.collect();

        let mut out = String::from("{\n  \"campaigns\": [");
        for (i, row) in rows.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let c = &campaigns[&row.name];
            let _ = write!(
                out,
                "{sep}\n    {{\"campaign\":\"{}\",\"alive\":{},\"age_ms\":{},\
                 \"pushes\":{},\"max_seq\":{},\"journal\":{{\"total\":{},\
                 \"evicted\":{},\"retained\":{}}}}}",
                json_escape(&row.name),
                row.alive,
                row.age.as_millis(),
                row.pushes,
                row.max_seq.map_or("null".to_string(), |s| s.to_string()),
                c.journal_total,
                c.journal_evicted,
                c.records.len()
            );
        }
        out.push_str("\n  ],\n  \"counters\": [");
        let mut first = true;
        for (name, c) in &campaigns {
            for (key, v) in &c.counters {
                let sep = if first { "" } else { "," };
                first = false;
                let _ = write!(
                    out,
                    "{sep}\n    {{\"campaign\":\"{}\",{},\"value\":{v}}}",
                    json_escape(name),
                    key_fields(key)
                );
            }
        }
        out.push_str("\n  ],\n  \"gauges\": [");
        let mut first = true;
        for (name, c) in &campaigns {
            for (key, v) in &c.gauges {
                let sep = if first { "" } else { "," };
                first = false;
                let _ = write!(
                    out,
                    "{sep}\n    {{\"campaign\":\"{}\",{},\"value\":{v}}}",
                    json_escape(name),
                    key_fields(key)
                );
            }
        }
        out.push_str("\n  ],\n  \"histograms\": [");
        let mut first = true;
        for (name, c) in &campaigns {
            for (key, h) in &c.histograms {
                let sep = if first { "" } else { "," };
                first = false;
                let _ = write!(
                    out,
                    "{sep}\n    {{\"campaign\":\"{}\",{},\"count\":{},\"sum\":{},\
                     \"max\":{}}}",
                    json_escape(name),
                    key_fields(key),
                    h.count,
                    h.sum,
                    h.max
                );
            }
        }
        out.push_str("\n  ],\n  \"incidents\": [");
        for (i, inc) in incidents.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let resolution = match &inc.report.resolution {
                Resolution::Ticketed { failure } => format!("ticketed:{failure}"),
                Resolution::AppDead => "app_dead".to_string(),
                Resolution::Superseded => "superseded".to_string(),
                Resolution::Open => "open".to_string(),
            };
            let _ = write!(
                out,
                "{sep}\n    {{\"campaign\":\"{}\",\"epoch\":{},\"app\":\"{}\",\
                 \"detected_by\":\"{}\",\"detection_seq\":{},\
                 \"resolution\":\"{}\",\"total_ns\":{}}}",
                json_escape(&inc.campaign),
                inc.epoch,
                json_escape(&inc.report.app),
                json_escape(&inc.report.detected_by),
                inc.report.detection_seq,
                json_escape(&resolution),
                inc.report.total_ns()
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// The `/healthz` body: `ok`/`degraded` headline, then one liveness
    /// row per campaign. Always served with status 200 — the aggregator
    /// being up is its own health; campaign health is the payload.
    #[must_use]
    pub fn healthz(&self) -> String {
        let rows = self.campaigns();
        let headline = if rows.iter().all(|r| r.alive) {
            "ok"
        } else {
            "degraded"
        };
        let mut out = format!("{headline}\n");
        for row in &rows {
            let _ = writeln!(
                out,
                "campaign={} alive={} age_ms={} pushes={}",
                row.name,
                row.alive,
                row.age.as_millis(),
                row.pushes
            );
        }
        out
    }

    fn incidents_text(&self) -> String {
        let incidents = self.incidents();
        let mut out = format!("{} incident(s) across the fleet\n", incidents.len());
        for inc in &incidents {
            let _ = write!(
                out,
                "\n[campaign={} epoch={}] {}",
                inc.campaign,
                inc.epoch,
                inc.report.render()
            );
        }
        out
    }

    /// All retained traces across the fleet, one summary row each —
    /// `GET /traces`.
    #[must_use]
    pub fn traces_json(&self) -> String {
        let campaigns = self.collect();
        let mut out = String::from("{\n  \"traces\": [");
        let mut first = true;
        for (name, c) in &campaigns {
            for t in &c.traces {
                let sep = if first { "" } else { "," };
                first = false;
                let _ = write!(
                    out,
                    "{sep}\n    {{\"campaign\":\"{}\",\"id\":\"{}\",\"kind\":\"{}\",\
                     \"events\":{},\"started_ns\":{}}}",
                    json_escape(name),
                    t.id,
                    json_escape(&t.kind),
                    t.events.len(),
                    t.started_ns
                );
            }
        }
        out.push_str("\n  ],\n  \"traces_dropped\": {");
        let mut first = true;
        for (name, c) in &campaigns {
            let sep = if first { "" } else { "," };
            first = false;
            let _ = write!(out, "{sep}\"{}\":{}", json_escape(name), c.traces_dropped);
        }
        out.push_str("}\n}\n");
        out
    }

    /// One campaign's trace with its overlapping incidents —
    /// `GET /traces/<campaign>/<cycle>-<seq>`.
    #[must_use]
    pub fn trace_json(&self, campaign: &str, id: TraceId) -> Option<String> {
        let campaigns = self.collect();
        let c = campaigns.get(campaign)?;
        let trace = c.traces.iter().rev().find(|t| t.id == id)?.clone();
        let records: Vec<Record> = c.records.iter().map(|(_, r)| r.clone()).collect();
        Some(trace.to_json(&reconstruct(&records)))
    }

    /// Look a trace up directly (tests, the status loop).
    #[must_use]
    pub fn trace(&self, campaign: &str, id: TraceId) -> Option<Trace> {
        self.collect()
            .get(campaign)?
            .traces
            .iter()
            .rev()
            .find(|t| t.id == id)
            .cloned()
    }

    /// Time-windowed rollups for every campaign plus the [`FLEET`]
    /// merge — `GET /rollups`. Fleet windows merge per-campaign windows
    /// of the same index (aggregator-clock aligned): counts sum, latency
    /// buckets merge bucket-wise before quantiles are recomputed.
    #[must_use]
    pub fn rollups_json(&self) -> String {
        let campaigns = self.collect();
        let cfg = &self.cfg.rollup;
        let mut fleet_closed: BTreeMap<u64, RollupWindow> = BTreeMap::new();
        let mut fleet_current: Option<RollupWindow> = None;
        let mut out = format!(
            "{{\n  \"width_ns\": {},\n  \"retain\": {},\n  \"campaigns\": {{",
            u64::try_from(cfg.width.as_nanos()).unwrap_or(u64::MAX),
            cfg.retain
        );
        let mut first = true;
        for (name, c) in &campaigns {
            let windows = c.rollup.windows();
            let current = c.rollup.current(cfg);
            for w in &windows {
                merge_window(fleet_closed.entry(w.index).or_default(), w);
            }
            if let Some(cur) = &current {
                merge_window(fleet_current.get_or_insert_with(RollupWindow::default), cur);
            }
            let sep = if first { "" } else { "," };
            first = false;
            let _ = write!(
                out,
                "{sep}\n    \"{}\": {}",
                json_escape(name),
                crate::rollup::render_json(cfg, &windows, current.as_ref(), c.rollup.evicted())
            );
        }
        let fleet: Vec<RollupWindow> = fleet_closed.into_values().collect();
        let sep = if first { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    \"{FLEET}\": {}",
            crate::rollup::render_json(cfg, &fleet, fleet_current.as_ref(), 0)
        );
        out.push_str("\n  }\n}\n");
        out
    }
}

/// Fold window `w` into the fleet accumulator `into`: raw deltas sum,
/// bounds widen, derived rate/quantiles are recomputed from the merge.
fn merge_window(into: &mut RollupWindow, w: &RollupWindow) {
    if into.end_ns == 0 {
        into.index = w.index;
        into.start_ns = w.start_ns;
        into.end_ns = w.end_ns;
    }
    into.start_ns = into.start_ns.min(w.start_ns);
    into.end_ns = into.end_ns.max(w.end_ns);
    into.events += w.events;
    into.cycles += w.cycles;
    into.recoveries += w.recoveries;
    into.recovery_count += w.recovery_count;
    into.recovery_ns = into.recovery_ns.saturating_add(w.recovery_ns);
    merge_buckets(&mut into.cycle_buckets, &w.cycle_buckets);
    into.finish(into.end_ns.saturating_sub(into.start_ns));
}

impl RouteHandler for Aggregator {
    fn route(&self, req: &Request) -> Response {
        match (req.method.as_str(), req.path.as_str()) {
            ("POST", "/push") => {
                let frame: PushFrame = match legosdn_codec::from_bytes(&req.body) {
                    Ok(f) => f,
                    Err(e) => return Response::text(400, format!("bad push frame: {e}\n")),
                };
                match self.ingest(&frame) {
                    Ok(Some(seq)) => Response::text(200, format!("ack={seq}\n")),
                    Ok(None) => Response::text(200, "ack=none\n"),
                    Err(e) => Response::text(400, format!("{e}\n")),
                }
            }
            ("GET", "/metrics") => Response {
                status: 200,
                content_type: "text/plain; version=0.0.4; charset=utf-8",
                body: self.prometheus(),
            },
            ("GET", "/metrics.json") => Response {
                status: 200,
                content_type: "application/json",
                body: self.json_snapshot(),
            },
            ("GET", "/incidents") => Response {
                status: 200,
                content_type: "text/plain; charset=utf-8",
                body: self.incidents_text(),
            },
            ("GET", "/traces") => Response {
                status: 200,
                content_type: "application/json",
                body: self.traces_json(),
            },
            ("GET", "/rollups") => Response {
                status: 200,
                content_type: "application/json",
                body: self.rollups_json(),
            },
            ("GET", "/healthz") => Response::text(200, self.healthz()),
            ("GET", path) => {
                // `/traces/<campaign>/<cycle>-<seq>`: one campaign's
                // trace with its reconstructed incident overlap.
                if let Some(rest) = path.strip_prefix("/traces/") {
                    if let Some((campaign, id_str)) = rest.split_once('/') {
                        if let Some(id) = TraceId::parse(id_str) {
                            return match self.trace_json(campaign, id) {
                                Some(body) => Response {
                                    status: 200,
                                    content_type: "application/json",
                                    body,
                                },
                                None => Response::text(404, "no such trace\n"),
                            };
                        }
                    }
                    return Response::text(404, "expected /traces/<campaign>/<cycle>-<seq>\n");
                }
                Response::text(404, "not found\n")
            }
            _ => Response::text(405, "method not allowed\n"),
        }
    }
}

/// `{campaign="...",le="..."[,label="..."]}` — campaign first, optional
/// `le` for histogram buckets, the original instrument label last.
fn labels(campaign: &str, label: &str, le: Option<&str>) -> String {
    let mut out = format!("{{campaign=\"{}\"", escape_label(campaign));
    if let Some(le) = le {
        let _ = write!(out, ",le=\"{le}\"");
    }
    if !label.is_empty() {
        let _ = write!(out, ",label=\"{}\"", escape_label(label));
    }
    out.push('}');
    out
}

fn write_histogram(out: &mut String, name: &str, campaign: &str, label: &str, h: &HistogramState) {
    let mut cum = 0u64;
    for (le, n) in &h.buckets {
        cum += n;
        let _ = writeln!(
            out,
            "{name}_bucket{} {cum}",
            labels(campaign, label, Some(&le.to_string()))
        );
    }
    let _ = writeln!(
        out,
        "{name}_bucket{} {}",
        labels(campaign, label, Some("+Inf")),
        h.count
    );
    let _ = writeln!(out, "{name}_sum{} {}", labels(campaign, label, None), h.sum);
    let _ = writeln!(
        out,
        "{name}_count{} {}",
        labels(campaign, label, None),
        h.count
    );
}

fn key_fields(key: &Key) -> String {
    format!(
        "\"component\":\"{}\",\"name\":\"{}\",\"label\":\"{}\"",
        json_escape(&key.0),
        json_escape(&key.1),
        json_escape(&key.2)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RecordKind;

    fn frame_from(obs: &Obs, campaign: &str, since: Option<u64>) -> PushFrame {
        obs.frame(campaign, since, 4096)
    }

    fn crash(app: &str) -> RecordKind {
        RecordKind::AppCrash {
            app: app.into(),
            detail: "panic".into(),
        }
    }

    fn ticket(app: &str) -> RecordKind {
        RecordKind::TicketFiled {
            app: app.into(),
            failure: "fail_stop".into(),
        }
    }

    #[test]
    fn reserved_and_empty_campaign_names_are_rejected() {
        let agg = Aggregator::new(AggregateConfig::default());
        let obs = Obs::new();
        for name in ["", FLEET] {
            let mut frame = frame_from(&obs, "x", None);
            frame.campaign = name.to_string();
            let err = agg.ingest(&frame).unwrap_err();
            assert!(matches!(err, ObsError::Protocol(_)), "{name:?}: {err}");
        }
    }

    #[test]
    fn label_collisions_stay_separated_by_campaign_and_fleet_sums() {
        let agg = Aggregator::new(AggregateConfig::default());
        // Same (component, name, label) key from two campaigns.
        let a = Obs::new();
        a.counter("core", "events", "x").add(3);
        let b = Obs::new();
        b.counter("core", "events", "x").add(5);
        agg.ingest(&frame_from(&a, "alpha", None)).unwrap();
        agg.ingest(&frame_from(&b, "beta", None)).unwrap();

        let text = agg.prometheus();
        assert!(text.contains("legosdn_core_events{campaign=\"alpha\",label=\"x\"} 3"));
        assert!(text.contains("legosdn_core_events{campaign=\"beta\",label=\"x\"} 5"));
        assert!(text.contains("legosdn_core_events{campaign=\"_fleet\",label=\"x\"} 8"));
        // One TYPE line per family, not per campaign.
        assert_eq!(
            text.matches("# TYPE legosdn_core_events counter").count(),
            1
        );
    }

    #[test]
    fn gauges_merge_with_signed_sums() {
        let agg = Aggregator::new(AggregateConfig::default());
        let a = Obs::new();
        a.gauge("core", "apps_alive", "").set(2);
        let b = Obs::new();
        b.gauge("core", "apps_alive", "").set(-1);
        agg.ingest(&frame_from(&a, "alpha", None)).unwrap();
        agg.ingest(&frame_from(&b, "beta", None)).unwrap();
        let text = agg.prometheus();
        assert!(text.contains("legosdn_core_apps_alive{campaign=\"_fleet\"} 1"));
    }

    #[test]
    fn histograms_merge_bucket_wise() {
        let agg = Aggregator::new(AggregateConfig::default());
        let a = Obs::new();
        a.histogram("appvisor", "deliver_ns", "").observe(100);
        a.histogram("appvisor", "deliver_ns", "").observe(100);
        let b = Obs::new();
        b.histogram("appvisor", "deliver_ns", "").observe(100);
        b.histogram("appvisor", "deliver_ns", "").observe(1 << 20);
        agg.ingest(&frame_from(&a, "alpha", None)).unwrap();
        agg.ingest(&frame_from(&b, "beta", None)).unwrap();

        let text = agg.prometheus();
        // Both observations of 100 land in the same bucket; the fleet
        // series holds their sum (3), per-campaign series hold 2 and 1.
        let bucket_of_100 = crate::bucket_bounds(crate::bucket_index(100));
        let fleet_line = format!(
            "legosdn_appvisor_deliver_ns_bucket{{campaign=\"_fleet\",le=\"{}\"}} 3",
            bucket_of_100.1
        );
        assert!(
            text.contains(&fleet_line),
            "missing {fleet_line:?} in:\n{text}"
        );
        assert!(
            text.contains("legosdn_appvisor_deliver_ns_bucket{campaign=\"_fleet\",le=\"+Inf\"} 4")
        );
        assert!(text.contains("legosdn_appvisor_deliver_ns_count{campaign=\"_fleet\"} 4"));
        assert!(text.contains("legosdn_appvisor_deliver_ns_count{campaign=\"alpha\"} 2"));
        assert!(text.contains("legosdn_appvisor_deliver_ns_count{campaign=\"beta\"} 2"));
    }

    #[test]
    fn incidents_are_totally_ordered_by_arrival_epoch_then_seq() {
        let agg = Aggregator::new(AggregateConfig::default());
        let a = Obs::new();
        let b = Obs::new();
        // beta's incident arrives first (epoch 1), alpha's second (epoch
        // 2) — even though alpha's local seqs are the same numbers.
        b.record(crash("fwd"));
        b.record(ticket("fwd"));
        agg.ingest(&frame_from(&b, "beta", None)).unwrap();
        a.record(crash("lb"));
        a.record(ticket("lb"));
        agg.ingest(&frame_from(&a, "alpha", None)).unwrap();
        // A later beta incident arrives third.
        b.record(crash("fwd"));
        b.record(ticket("fwd"));
        agg.ingest(&frame_from(&b, "beta", Some(1))).unwrap();

        let incidents = agg.incidents();
        assert_eq!(incidents.len(), 3);
        let order: Vec<(&str, u64)> = incidents
            .iter()
            .map(|i| (i.campaign.as_str(), i.epoch))
            .collect();
        assert_eq!(order, vec![("beta", 1), ("alpha", 2), ("beta", 3)]);
        // Epochs are nondecreasing — the total order is real.
        for w in incidents.windows(2) {
            assert!(
                (w[0].epoch, w[0].report.detection_seq) < (w[1].epoch, w[1].report.detection_seq)
            );
        }
    }

    #[test]
    fn reingested_records_dedupe_on_seq() {
        let agg = Aggregator::new(AggregateConfig::default());
        let obs = Obs::new();
        obs.record(crash("fwd"));
        obs.record(ticket("fwd"));
        let frame = frame_from(&obs, "alpha", None);
        assert_eq!(agg.ingest(&frame).unwrap(), Some(1));
        // A rewound exporter resends the same records.
        assert_eq!(agg.ingest(&frame).unwrap(), Some(1));
        assert_eq!(agg.incidents().len(), 1, "no duplicate incidents");
    }

    #[test]
    fn disappeared_campaign_flips_healthz_but_series_are_retained() {
        let agg = Aggregator::new(AggregateConfig {
            liveness_window: Duration::from_millis(30),
            ..AggregateConfig::default()
        });
        let a = Obs::new();
        a.counter("core", "events", "").add(9);
        agg.ingest(&frame_from(&a, "alpha", None)).unwrap();
        let health = agg.healthz();
        assert!(health.starts_with("ok\n"), "{health}");
        assert!(health.contains("campaign=alpha alive=true"));

        std::thread::sleep(Duration::from_millis(60));
        let health = agg.healthz();
        assert!(health.starts_with("degraded\n"), "{health}");
        assert!(health.contains("campaign=alpha alive=false"));
        // The dead campaign's series are still served.
        assert!(agg
            .prometheus()
            .contains("legosdn_core_events{campaign=\"alpha\"} 9"));
        assert!(agg.json_snapshot().contains("\"alive\":false"));
    }

    #[test]
    fn journal_capacity_drops_oldest_per_campaign() {
        let agg = Aggregator::new(AggregateConfig {
            journal_capacity: 2,
            ..AggregateConfig::default()
        });
        let obs = Obs::new();
        for i in 0..5 {
            obs.record(crash(&format!("app{i}")));
        }
        agg.ingest(&frame_from(&obs, "alpha", None)).unwrap();
        let campaigns = agg.collect();
        let kept: Vec<u64> = campaigns["alpha"]
            .records
            .iter()
            .map(|(_, r)| r.seq)
            .collect();
        assert_eq!(kept, vec![3, 4], "newest retained");
    }

    #[test]
    fn concurrent_campaign_pushes_keep_the_fleet_rollup_exact() {
        // Sharded ingest: many campaigns pushing from their own threads
        // must neither lose pushes nor corrupt the merged view. Every
        // campaign pushes a known counter value; the fleet sum is exact.
        use std::sync::Arc;
        let agg = Arc::new(Aggregator::new(AggregateConfig::default()));
        let n_campaigns: u64 = 24; // more campaigns than shards: collisions too
        let rounds: u64 = 20;
        let threads: Vec<_> = (0..n_campaigns)
            .map(|i| {
                let agg = Arc::clone(&agg);
                std::thread::spawn(move || {
                    let obs = Obs::new();
                    let name = format!("c{i:02}");
                    for _ in 0..rounds {
                        obs.counter("core", "events", "").inc();
                        agg.ingest(&obs.frame(&name, None, 64)).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let rows = agg.campaigns();
        assert_eq!(rows.len() as u64, n_campaigns);
        assert!(rows.iter().all(|r| r.pushes == rounds));
        let fleet = rounds * n_campaigns;
        let text = agg.prometheus();
        assert!(
            text.contains(&format!(
                "legosdn_core_events{{campaign=\"_fleet\"}} {fleet}"
            )),
            "fleet roll-up wrong in:\n{text}"
        );
        // Epochs were handed out once per push, no reuse, no gaps.
        assert_eq!(agg.epoch.load(Ordering::Relaxed), fleet);
    }

    #[test]
    fn routes_serve_the_merged_view_and_reject_unknowns() {
        let agg = Aggregator::new(AggregateConfig::default());
        let obs = Obs::new();
        obs.counter("core", "events", "").add(1);
        let frame = frame_from(&obs, "alpha", None);
        let body = legosdn_codec::to_bytes(&frame).unwrap();

        let push = Request {
            method: "POST".into(),
            path: "/push".into(),
            body,
        };
        let resp = agg.route(&push);
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, "ack=none\n", "no journal records yet");

        let get = |path: &str| {
            agg.route(&Request {
                method: "GET".into(),
                path: path.into(),
                body: Vec::new(),
            })
        };
        assert!(get("/metrics").body.contains("campaign=\"alpha\""));
        assert!(get("/metrics.json").body.contains("\"campaigns\""));
        assert!(get("/incidents").body.contains("0 incident(s)"));
        assert_eq!(get("/healthz").status, 200);
        assert_eq!(get("/nope").status, 404);
        let bad = agg.route(&Request {
            method: "POST".into(),
            path: "/push".into(),
            body: vec![1, 2, 3],
        });
        assert_eq!(bad.status, 400);
        let wrong_method = agg.route(&Request {
            method: "DELETE".into(),
            path: "/metrics".into(),
            body: Vec::new(),
        });
        assert_eq!(wrong_method.status, 405);
    }

    #[test]
    fn ack_advances_with_fresh_records() {
        let agg = Aggregator::new(AggregateConfig::default());
        let obs = Obs::new();
        obs.record(crash("fwd"));
        assert_eq!(
            agg.ingest(&frame_from(&obs, "alpha", None)).unwrap(),
            Some(0)
        );
        obs.record(ticket("fwd"));
        obs.record(crash("fwd"));
        assert_eq!(
            agg.ingest(&frame_from(&obs, "alpha", Some(0))).unwrap(),
            Some(2)
        );
    }
}
