//! Lock-free metric instruments and the registry that owns them.
//!
//! Updates are single atomic ops; the registry `Mutex` is only taken when a
//! handle is first created, so hot paths hold handles (`Arc`) and never
//! lock.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Metric address: `(component, name, label)`. Label is free-form — an app
/// name, a switch dpid, or empty.
pub type Key = (String, String, String);

/// Monotonically increasing count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Instantaneous signed level (queue depths, live-app counts).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    #[must_use]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of log2 buckets: bucket `i` covers `[2^i, 2^(i+1))`, bucket 0
/// additionally holds zero. 64 buckets span the full `u64` range.
pub const BUCKETS: usize = 64;

/// Log-bucketed histogram of `u64` samples (latencies in nanoseconds,
/// sizes in bytes).
///
/// Fixed ~2× relative error on quantiles in exchange for lock-free O(1)
/// recording — the standard HdrHistogram-style trade.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Bucket index for a sample: `floor(log2(v))`, with 0 and 1 sharing
/// bucket 0.
#[must_use]
pub fn bucket_index(v: u64) -> usize {
    (63 - (v | 1).leading_zeros()) as usize
}

/// Inclusive value range covered by bucket `i`.
#[must_use]
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    if i == 0 {
        return (0, 1);
    }
    let lo = 1u64 << i;
    let hi = if i + 1 >= 64 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    };
    (lo, hi)
}

impl Histogram {
    /// Record one sample.
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturate instead of wrapping: long-running campaigns accumulate
        // enough nanoseconds to overflow, and a wrapped sum silently
        // corrupts every scrape after that point.
        let prev = self.sum.fetch_add(v, Ordering::Relaxed);
        if prev.checked_add(v).is_none() {
            self.sum.store(u64::MAX, Ordering::Relaxed);
        }
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Start a timing span; its drop records the elapsed nanoseconds here.
    #[must_use]
    pub fn start(self: &Arc<Self>) -> SpanGuard {
        SpanGuard {
            hist: Arc::clone(self),
            begun: Instant::now(),
        }
    }

    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    #[must_use]
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Approximate quantile `q in [0, 1]` by linear interpolation inside
    /// the covering bucket. Returns 0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cum + c >= rank {
                let (lo, hi) = bucket_bounds(i);
                let into = (rank - cum - 1) as f64 / c as f64;
                let est = lo as f64 + into * (hi - lo) as f64;
                // Clamp into the covering bucket (float rounding must not
                // report below its lower bound), and never beyond the
                // observed max.
                return (est as u64).clamp(lo, hi).min(self.max());
            }
            cum += c;
        }
        self.max()
    }

    /// The standard latency digest: count, sum, p50/p90/p99, max.
    #[must_use]
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            sum: self.sum(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            max: self.max(),
        }
    }

    /// Per-bucket `(inclusive upper bound, count)` for non-empty buckets.
    #[must_use]
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                (c > 0).then(|| (bucket_bounds(i).1, c))
            })
            .collect()
    }
}

/// One registry histogram: its key, summary statistics, and
/// `(upper_bound, count)` buckets.
pub type HistogramRow = (Key, HistogramSummary, Vec<(u64, u64)>);

/// Point-in-time digest of a [`Histogram`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    pub count: u64,
    pub sum: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    pub max: u64,
}

/// RAII timer: created by [`Histogram::start`], records elapsed
/// nanoseconds into the histogram on drop.
pub struct SpanGuard {
    hist: Arc<Histogram>,
    begun: Instant,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let ns = u64::try_from(self.begun.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.hist.observe(ns);
    }
}

/// Owns every instrument, addressable by [`Key`]. `BTreeMap` so exports
/// are deterministically ordered.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<Key, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<Key, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<Key, Arc<Histogram>>>,
}

impl Registry {
    pub fn counter(&self, component: &str, name: &str, label: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap();
        Arc::clone(
            map.entry((component.into(), name.into(), label.into()))
                .or_default(),
        )
    }

    pub fn gauge(&self, component: &str, name: &str, label: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().unwrap();
        Arc::clone(
            map.entry((component.into(), name.into(), label.into()))
                .or_default(),
        )
    }

    pub fn histogram(&self, component: &str, name: &str, label: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap();
        Arc::clone(
            map.entry((component.into(), name.into(), label.into()))
                .or_default(),
        )
    }

    /// Snapshot of all counters as `(key, value)`.
    #[must_use]
    pub fn counters(&self) -> Vec<(Key, u64)> {
        self.counters
            .lock()
            .unwrap()
            .iter()
            .map(|(k, c)| (k.clone(), c.get()))
            .collect()
    }

    /// Snapshot of all gauges as `(key, value)`.
    #[must_use]
    pub fn gauges(&self) -> Vec<(Key, i64)> {
        self.gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(k, g)| (k.clone(), g.get()))
            .collect()
    }

    /// Snapshot of all histograms as `(key, summary, buckets)`.
    #[must_use]
    pub fn histograms(&self) -> Vec<HistogramRow> {
        self.histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(k, h)| (k.clone(), h.summary(), h.buckets()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::default();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(7), 2);
        assert_eq!(bucket_index(8), 3);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), 63);
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
            assert_eq!(bucket_index(hi), i, "upper bound of bucket {i}");
        }
    }

    #[test]
    fn quantiles_on_uniform_data() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.sum(), 500_500);
        // Log buckets give ~2× relative error; check the right ballpark.
        let p50 = h.quantile(0.50);
        assert!((256..=1000).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile(0.99);
        assert!((512..=1000).contains(&p99), "p99 = {p99}");
        assert!(h.quantile(1.0) <= 1000);
        assert_eq!(h.quantile(0.0), h.quantile(0.001));
    }

    #[test]
    fn quantile_of_empty_is_zero() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.summary(), HistogramSummary::default());
    }

    #[test]
    fn quantile_single_value() {
        let h = Histogram::default();
        h.observe(777);
        // Log buckets: the answer lands in 777's bucket [512, 1023],
        // clamped to the observed max.
        let q = h.quantile(0.5);
        assert!((512..=777).contains(&q), "q = {q}");
        assert_eq!(h.max(), 777);
    }

    #[test]
    fn quantile_never_exceeds_max() {
        let h = Histogram::default();
        h.observe(5);
        h.observe(1_000_000);
        for q in [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            assert!(h.quantile(q) <= 1_000_000);
        }
    }

    #[test]
    fn sum_saturates_instead_of_wrapping() {
        let h = Histogram::default();
        h.observe(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        h.observe(u64::MAX);
        assert_eq!(h.sum(), u64::MAX, "second overflow-sized sample pins");
        h.observe(1);
        assert_eq!(h.sum(), u64::MAX, "saturated sum never moves again");
        assert_eq!(h.count(), 3, "count still tracks every sample");
    }

    #[test]
    fn quantile_never_below_covering_bucket_floor() {
        // All samples share bucket [1024, 2047]; every quantile must stay
        // within it (and at or below the observed max).
        let h = Histogram::default();
        for _ in 0..1000 {
            h.observe(1024);
        }
        for q in [0.0, 0.001, 0.25, 0.5, 0.75, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!((1024..=2047).contains(&v), "q={q} gave {v}");
            assert!(v <= h.max());
        }
    }

    #[test]
    fn span_guard_records_on_drop() {
        let h = Arc::new(Histogram::default());
        {
            let _guard = h.start();
        }
        assert_eq!(h.count(), 1);
        assert!(h.sum() > 0, "elapsed time is nonzero");
    }

    #[test]
    fn registry_returns_same_instrument_for_same_key() {
        let r = Registry::default();
        r.counter("core", "events", "").inc();
        r.counter("core", "events", "").inc();
        assert_eq!(r.counter("core", "events", "").get(), 2);
        r.counter("core", "events", "app1").inc();
        assert_eq!(r.counter("core", "events", "app1").get(), 1);
        assert_eq!(r.counters().len(), 2);
    }
}
