//! Exporters: Prometheus text exposition and a JSON snapshot for
//! `BENCH_*.json` trajectories. Both hand-rolled over std — no serde, no
//! formatting crates.

use std::fmt::Write as _;

use crate::journal::Journal;
use crate::metrics::{Key, Registry};
use crate::timeline::{IncidentReport, Resolution};

fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

pub(crate) fn metric_name(key: &Key) -> String {
    format!("legosdn_{}_{}", sanitize(&key.0), sanitize(&key.1))
}

/// Escape a label value per the Prometheus text exposition format:
/// backslash, double-quote, and line feed.
pub(crate) fn escape_label(label: &str) -> String {
    label
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn label_suffix(label: &str) -> String {
    if label.is_empty() {
        String::new()
    } else {
        format!("{{label=\"{}\"}}", escape_label(label))
    }
}

/// Prometheus text exposition (metric families sorted by key, `# TYPE`
/// comments, cumulative `le` buckets for histograms).
#[must_use]
pub fn prometheus(registry: &Registry) -> String {
    let mut out = String::new();
    let mut last_family = String::new();
    for (key, value) in registry.counters() {
        let name = metric_name(&key);
        if name != last_family {
            let _ = writeln!(out, "# TYPE {name} counter");
            last_family = name.clone();
        }
        let _ = writeln!(out, "{name}{} {value}", label_suffix(&key.2));
    }
    for (key, value) in registry.gauges() {
        let name = metric_name(&key);
        if name != last_family {
            let _ = writeln!(out, "# TYPE {name} gauge");
            last_family = name.clone();
        }
        let _ = writeln!(out, "{name}{} {value}", label_suffix(&key.2));
    }
    for (key, summary, buckets) in registry.histograms() {
        let name = metric_name(&key);
        if name != last_family {
            let _ = writeln!(out, "# TYPE {name} histogram");
            last_family = name.clone();
        }
        let label = &key.2;
        let extra = if label.is_empty() {
            String::new()
        } else {
            format!(",label=\"{}\"", escape_label(label))
        };
        let mut cum = 0u64;
        for (le, count) in &buckets {
            cum += count;
            let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"{extra}}} {cum}");
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"{extra}}} {}", summary.count);
        let _ = writeln!(out, "{name}_sum{} {}", label_suffix(label), summary.sum);
        let _ = writeln!(out, "{name}_count{} {}", label_suffix(label), summary.count);
    }
    out
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn key_fields(key: &Key) -> String {
    format!(
        "\"component\":\"{}\",\"name\":\"{}\",\"label\":\"{}\"",
        json_escape(&key.0),
        json_escape(&key.1),
        json_escape(&key.2)
    )
}

/// JSON snapshot of every instrument, journal occupancy, and the
/// reconstructed incidents. Schema is documented in DESIGN.md
/// ("Observability").
#[must_use]
pub fn json_snapshot(
    registry: &Registry,
    journal: &Journal,
    incidents: &[IncidentReport],
) -> String {
    let mut out = String::from("{\n  \"counters\": [");
    let counters = registry.counters();
    for (i, (key, value)) in counters.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(out, "{sep}\n    {{{},\"value\":{value}}}", key_fields(key));
    }
    out.push_str("\n  ],\n  \"gauges\": [");
    let gauges = registry.gauges();
    for (i, (key, value)) in gauges.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(out, "{sep}\n    {{{},\"value\":{value}}}", key_fields(key));
    }
    out.push_str("\n  ],\n  \"histograms\": [");
    for (i, (key, s, _)) in registry.histograms().iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    {{{},\"count\":{},\"sum\":{},\"p50\":{},\"p90\":{},\
             \"p99\":{},\"max\":{}}}",
            key_fields(key),
            s.count,
            s.sum,
            s.p50,
            s.p90,
            s.p99,
            s.max
        );
    }
    let _ = write!(
        out,
        "\n  ],\n  \"journal\": {{\"total\":{},\"evicted\":{},\"retained\":{}}},\n  \
         \"incidents\": [",
        journal.total_recorded(),
        journal.evicted(),
        journal.snapshot().len()
    );
    for (i, inc) in incidents.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let resolution = match &inc.resolution {
            Resolution::Ticketed { failure } => format!("ticketed:{failure}"),
            Resolution::AppDead => "app_dead".to_string(),
            Resolution::Superseded => "superseded".to_string(),
            Resolution::Open => "open".to_string(),
        };
        let _ = write!(
            out,
            "{sep}\n    {{\"app\":\"{}\",\"detected_by\":\"{}\",\
             \"detection_seq\":{},\"detection_at_ns\":{},\
             \"detect_to_restore_ns\":{},\"detect_to_replay_ns\":{},\
             \"rules_rolled_back\":{},\"events_transformed\":{},\
             \"events_dropped\":{},\"resolution\":\"{}\",\"total_ns\":{}}}",
            json_escape(&inc.app),
            json_escape(&inc.detected_by),
            inc.detection_seq,
            inc.detection_at_ns,
            inc.detection_to_restore_ns()
                .map_or("null".to_string(), |v| v.to_string()),
            inc.detection_to_replay_ns()
                .map_or("null".to_string(), |v| v.to_string()),
            inc.rules_rolled_back,
            inc.events_transformed,
            inc.events_dropped,
            json_escape(&resolution),
            inc.total_ns()
        );
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::RecordKind;
    use crate::timeline::reconstruct;

    fn setup() -> (Registry, Journal) {
        let r = Registry::default();
        r.counter("core", "events_total", "").add(42);
        r.counter("netsim", "flow_install", "sw1").add(7);
        r.gauge("core", "apps_alive", "").set(3);
        let h = r.histogram("appvisor", "deliver_ns", "fwd");
        h.observe(100);
        h.observe(200_000);
        let j = Journal::new(16);
        j.record_at(
            10,
            RecordKind::AppCrash {
                app: "fwd".into(),
                detail: "p".into(),
            },
        );
        j.record_at(
            20,
            RecordKind::TicketFiled {
                app: "fwd".into(),
                failure: "fs".into(),
            },
        );
        (r, j)
    }

    #[test]
    fn prometheus_exposition_shape() {
        let (r, _) = setup();
        let text = prometheus(&r);
        assert!(text.contains("# TYPE legosdn_core_events_total counter"));
        assert!(text.contains("legosdn_core_events_total 42"));
        assert!(text.contains("legosdn_netsim_flow_install{label=\"sw1\"} 7"));
        assert!(text.contains("legosdn_core_apps_alive 3"));
        assert!(text.contains("# TYPE legosdn_appvisor_deliver_ns histogram"));
        assert!(text.contains("legosdn_appvisor_deliver_ns_count{label=\"fwd\"} 2"));
        assert!(text.contains("le=\"+Inf\",label=\"fwd\"}} 2".replace("}}", "}").as_str()));
        // Buckets are cumulative.
        let bucket_lines: Vec<&str> = text
            .lines()
            .filter(|l| l.contains("_bucket{le=\"") && !l.contains("+Inf"))
            .collect();
        assert_eq!(bucket_lines.len(), 2);
        assert!(bucket_lines[0].ends_with(" 1"));
        assert!(bucket_lines[1].ends_with(" 2"));
    }

    #[test]
    fn json_snapshot_shape() {
        let (r, j) = setup();
        let incidents = reconstruct(&j.snapshot());
        let json = json_snapshot(&r, &j, &incidents);
        assert!(json.contains("\"counters\""));
        assert!(json.contains(
            "\"component\":\"core\",\"name\":\"events_total\",\"label\":\"\",\"value\":42"
        ));
        assert!(json.contains("\"journal\": {\"total\":2,\"evicted\":0,\"retained\":2}"));
        assert!(json.contains("\"resolution\":\"ticketed:fs\""));
        assert!(json.contains("\"p50\""));
        // Balanced braces/brackets — cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn label_escaping_covers_backslash_quote_and_newline() {
        assert_eq!(escape_label(r"a\b"), r"a\\b");
        assert_eq!(escape_label("a\"b"), "a\\\"b");
        assert_eq!(escape_label("a\nb"), "a\\nb");
        let r = Registry::default();
        r.counter("core", "weird", "x\"y\\z\nw").inc();
        let h = r.histogram("core", "weird_ns", "x\"y\\z\nw");
        h.observe(7);
        let text = prometheus(&r);
        // The raw newline must never reach the exposition: every metric
        // stays on one line, with the escaped form in both the counter
        // suffix and the histogram bucket labels.
        assert!(text.lines().all(|l| !l.is_empty()));
        assert!(text.contains("legosdn_core_weird{label=\"x\\\"y\\\\z\\nw\"} 1"));
        assert!(text.contains("le=\"+Inf\",label=\"x\\\"y\\\\z\\nw\"}"));
    }

    /// Invert `escape_label` — the escaping must be lossless.
    fn unescape_label(s: &str) -> String {
        let mut out = String::new();
        let mut chars = s.chars();
        while let Some(c) = chars.next() {
            if c != '\\' {
                out.push(c);
                continue;
            }
            match chars.next() {
                Some('n') => out.push('\n'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            }
        }
        out
    }

    #[test]
    fn label_escaping_roundtrips_tabs_backslash_runs_and_utf8() {
        // Adversarial fixed cases: tab (passes through raw — legal and
        // still single-line), backslash runs, multi-byte UTF-8 next to
        // the escaped bytes, and trailing backslash.
        for raw in [
            "a\tb",
            "run\\\\\\of\\backslashes\\",
            "π→∞ \"quoted\" \n tab\there λ",
            "\\n is literal backslash-n, not a newline",
            "mixed\n\t\"\\\u{1F500}",
        ] {
            let esc = escape_label(raw);
            assert!(!esc.contains('\n'), "raw newline survived in {esc:?}");
            assert_eq!(unescape_label(&esc), raw, "lossy escape of {raw:?}");
        }

        // Seeded property sweep over strings mixing ASCII, the three
        // escaped characters, tabs, and multi-byte code points.
        let alphabet: Vec<char> = "ab\"\\\n\tπλ✓\u{1F500}z".chars().collect();
        let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for _ in 0..200 {
            let len = (next() % 24) as usize;
            let raw: String = (0..len)
                .map(|_| alphabet[(next() as usize) % alphabet.len()])
                .collect();
            let esc = escape_label(&raw);
            // Single-line: the exposition writer relies on it.
            assert!(!esc.contains('\n'), "raw newline survived in {esc:?}");
            // Every '"' is preceded by a backslash, so the label value
            // never terminates the quoted suffix early.
            let bytes = esc.as_bytes();
            for (i, b) in bytes.iter().enumerate() {
                if *b == b'"' {
                    assert!(i > 0 && bytes[i - 1] == b'\\', "unescaped quote in {esc:?}");
                }
            }
            // Lossless.
            assert_eq!(unescape_label(&esc), raw, "lossy escape of {raw:?}");
        }
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
