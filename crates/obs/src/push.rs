//! Push export: remote-write-style shipping of one campaign's [`Obs`]
//! state to a fleet aggregator.
//!
//! The pull endpoint shows a single process. Fleet experiments — N
//! `campaign` daemons crashing apps concurrently — need the inverse
//! topology: every campaign *pushes* its snapshot to one
//! [`crate::aggregate::Aggregator`], which merges and re-serves them. The
//! exporter here is deliberately an at-least-once, loss-tolerant client:
//!
//! - Each [`PushFrame`] carries the full cumulative metric snapshot (so a
//!   lost frame costs freshness, never correctness) plus the journal
//!   *delta* since the aggregator's last acknowledged sequence number.
//! - The aggregator's ack is its own high-water mark. A restarted
//!   aggregator acks low (or `none`), and the exporter simply rewinds and
//!   resends whatever the local journal ring still retains — the ring's
//!   drop-oldest eviction *is* the bounded buffer, so a dead aggregator
//!   can neither block the campaign nor grow its memory.
//! - Failures back off exponentially between [`PushConfig::backoff_initial`]
//!   and [`PushConfig::backoff_max`]; every attempt is bounded by
//!   [`PushConfig::deadline`] end to end (connect + send + ack).
//!
//! Frames travel as `POST /push` bodies encoded with `legosdn-codec` over
//! the same std-only HTTP/1.1 used everywhere else in this repo.

use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use legosdn_codec::Codec;

use crate::error::ObsError;
use crate::journal::Record;
use crate::metrics::Key;
use crate::trace::Trace;
use crate::Obs;

/// Cap on traces shipped per frame: the most recent ones win, matching
/// the flight recorder's drop-oldest semantics.
pub const MAX_TRACES_PER_FRAME: usize = 64;

/// One histogram as it travels on the wire: the summary scalars plus the
/// per-bucket `(upper_bound_ns, count)` rows the aggregator needs for
/// bucket-wise merging.
#[derive(Clone, Debug, PartialEq, Eq, Codec)]
pub struct WireHistogram {
    pub key: Key,
    pub count: u64,
    pub sum: u64,
    pub max: u64,
    /// Non-cumulative `(upper_bound, count)` per occupied bucket.
    pub buckets: Vec<(u64, u64)>,
}

/// One push: the sender's identity, a cumulative metric snapshot, and the
/// journal delta since the last acknowledged sequence number.
///
/// Field order is the wire format — append new fields at the end only.
#[derive(Clone, Debug, PartialEq, Eq, Codec)]
pub struct PushFrame {
    /// Campaign name; becomes the `campaign` label on every series.
    pub campaign: String,
    /// Sender-local push attempt counter (1-based), for diagnostics.
    pub push_seq: u64,
    /// Sender clock at serialization, ns since its `Obs` was created.
    pub at_ns: u64,
    pub counters: Vec<(Key, u64)>,
    pub gauges: Vec<(Key, i64)>,
    pub histograms: Vec<WireHistogram>,
    /// Journal records ever appended at the sender (including evicted).
    pub journal_total: u64,
    /// Journal records lost to ring eviction at the sender.
    pub journal_evicted: u64,
    /// Records with `seq` greater than the last ack, oldest first.
    pub records: Vec<Record>,
    /// Most recent causal traces from the sender's flight recorder,
    /// oldest first. Shipped cumulatively; the aggregator deduplicates
    /// by [`Trace::trace_seq`] (last write wins, so a trace that gained
    /// events since the previous push is upserted whole).
    pub traces: Vec<Trace>,
    /// Traces evicted from the sender's flight recorder.
    pub traces_dropped: u64,
}

/// The aggregator's reply to a push: its high-water journal sequence for
/// this campaign (`None` until it has seen any record — or again after a
/// restart lost its state, which tells the exporter to rewind).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PushAck {
    pub acked: Option<u64>,
}

impl Obs {
    /// Build a [`PushFrame`] for `campaign`: the full cumulative metric
    /// snapshot plus journal records after `since` (all retained records
    /// when `None`), capped at `max_records` oldest-first so one frame
    /// stays bounded. `push_seq` is left 0 for the caller to stamp.
    #[must_use]
    pub fn frame(&self, campaign: &str, since: Option<u64>, max_records: usize) -> PushFrame {
        let mut records = self.journal().snapshot_since(since);
        records.truncate(max_records.max(1));
        PushFrame {
            campaign: campaign.to_string(),
            push_seq: 0,
            at_ns: self.now_ns(),
            counters: self.registry().counters(),
            gauges: self.registry().gauges(),
            histograms: self
                .registry()
                .histograms()
                .into_iter()
                .map(|(key, summary, buckets)| WireHistogram {
                    key,
                    count: summary.count,
                    sum: summary.sum,
                    max: summary.max,
                    buckets,
                })
                .collect(),
            journal_total: self.journal().total_recorded(),
            journal_evicted: self.journal().evicted(),
            records,
            traces: self.recent_traces(MAX_TRACES_PER_FRAME),
            traces_dropped: self.traces_dropped(),
        }
    }
}

/// Time left before `deadline` elapses from `start`, or `Err(Deadline)`.
fn left(start: Instant, deadline: Duration) -> Result<Duration, ObsError> {
    deadline
        .checked_sub(start.elapsed())
        .filter(|d| !d.is_zero())
        .ok_or(ObsError::Deadline)
}

/// Ship one frame to `target` and parse the ack. The whole exchange —
/// connect, send, receive — happens within `deadline`. The client closes
/// the connection first (after reading exactly the response), so repeated
/// pushes leave `TIME_WAIT` state on the campaign's ephemeral ports, not
/// on the aggregator's listening port.
pub fn push_frame(
    target: SocketAddr,
    frame: &PushFrame,
    deadline: Duration,
) -> Result<PushAck, ObsError> {
    let begun = Instant::now();
    let body = legosdn_codec::to_bytes(frame)
        .map_err(|e| ObsError::Protocol(format!("encode push frame: {e}")))?;

    let mut stream = TcpStream::connect_timeout(&target, left(begun, deadline)?)?;
    stream.set_write_timeout(Some(left(begun, deadline)?))?;
    let head = format!(
        "POST /push HTTP/1.1\r\nHost: aggregator\r\n\
         Content-Type: application/octet-stream\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(&body)?;
    stream.flush()?;

    stream.set_read_timeout(Some(left(begun, deadline)?))?;
    let reply = read_reply(&mut stream, begun, deadline)?;
    // Client closes first: TIME_WAIT lands here, not on the aggregator.
    let _ = stream.shutdown(Shutdown::Both);
    drop(stream);

    match reply.status {
        200 => parse_ack(&reply.body),
        503 => Err(ObsError::Overload),
        status => Err(ObsError::Protocol(format!(
            "aggregator answered {status}: {}",
            reply.body.trim()
        ))),
    }
}

struct Reply {
    status: u16,
    body: String,
}

/// Read status line, headers, and exactly `Content-Length` body bytes.
fn read_reply(
    stream: &mut TcpStream,
    begun: Instant,
    deadline: Duration,
) -> Result<Reply, ObsError> {
    let mut buf = Vec::with_capacity(256);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(end) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break end;
        }
        if buf.len() > 64 * 1024 {
            return Err(ObsError::Protocol("oversized ack head".into()));
        }
        stream.set_read_timeout(Some(left(begun, deadline)?))?;
        match stream.read(&mut chunk) {
            Ok(0) => return Err(ObsError::Protocol("peer closed before ack".into())),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                return Err(ObsError::Deadline)
            }
            Err(e) => return Err(e.into()),
        }
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| ObsError::Protocol("non-utf8 ack head".into()))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ObsError::Protocol("malformed status line".into()))?;
    let content_length: usize = head
        .lines()
        .filter_map(|l| l.split_once(':'))
        .find(|(n, _)| n.trim().eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.trim().parse().ok())
        .unwrap_or(0);

    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        stream.set_read_timeout(Some(left(begun, deadline)?))?;
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                return Err(ObsError::Deadline)
            }
            Err(e) => return Err(e.into()),
        }
    }
    body.truncate(content_length);
    Ok(Reply {
        status,
        body: String::from_utf8_lossy(&body).into_owned(),
    })
}

/// Parse `ack=<seq>` / `ack=none`.
fn parse_ack(body: &str) -> Result<PushAck, ObsError> {
    let token = body
        .trim()
        .strip_prefix("ack=")
        .ok_or_else(|| ObsError::Protocol(format!("unexpected ack body: {body:?}")))?;
    if token == "none" {
        return Ok(PushAck { acked: None });
    }
    token
        .parse::<u64>()
        .map(|seq| PushAck { acked: Some(seq) })
        .map_err(|_| ObsError::Protocol(format!("unexpected ack body: {body:?}")))
}

/// Exporter knobs.
#[derive(Clone, Debug)]
pub struct PushConfig {
    /// Where the aggregator listens.
    pub target: SocketAddr,
    /// Campaign name stamped on every frame.
    pub campaign: String,
    /// Steady-state interval between successful pushes.
    pub period: Duration,
    /// End-to-end deadline per push attempt (connect + send + ack).
    pub deadline: Duration,
    /// First retry delay after a failed push.
    pub backoff_initial: Duration,
    /// Retry delay ceiling; doubling stops here.
    pub backoff_max: Duration,
    /// Journal records per frame, oldest first; the rest wait for the
    /// next push.
    pub max_records: usize,
}

impl PushConfig {
    /// Defaults: 250 ms period, 1 s deadline, 100 ms → 5 s backoff,
    /// 4096 records per frame.
    #[must_use]
    pub fn new(target: SocketAddr, campaign: impl Into<String>) -> Self {
        PushConfig {
            target,
            campaign: campaign.into(),
            period: Duration::from_millis(250),
            deadline: Duration::from_secs(1),
            backoff_initial: Duration::from_millis(100),
            backoff_max: Duration::from_secs(5),
            max_records: 4096,
        }
    }
}

/// Background thread pushing an [`Obs`] to an aggregator until shut down.
///
/// Self-instruments into the same `Obs` it exports:
/// `push.frames_total{label=<"ok"|error kind>}` and
/// `push.records_acked_total` — so the fleet view shows each campaign's
/// own export health.
pub struct PushExporter {
    shared: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<JoinHandle<()>>,
}

impl PushExporter {
    /// Spawn the export loop. Never blocks the caller: all socket work
    /// happens on the `obs-push` thread.
    #[must_use]
    pub fn start(obs: Obs, cfg: PushConfig) -> PushExporter {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("obs-push".into())
            .spawn(move || export_loop(&obs, &cfg, &thread_shared))
            .expect("spawn obs-push thread");
        PushExporter {
            shared,
            handle: Some(handle),
        }
    }

    /// Signal the loop to stop, let it attempt one final flush push, and
    /// join the thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        {
            let (stopped, cv) = &*self.shared;
            *stopped.lock().unwrap() = true;
            cv.notify_all();
        }
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for PushExporter {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn export_loop(obs: &Obs, cfg: &PushConfig, shared: &Arc<(Mutex<bool>, Condvar)>) {
    let mut push_seq = 0u64;
    let mut last_acked: Option<u64> = None;
    let mut backoff = cfg.backoff_initial;
    loop {
        push_seq += 1;
        let wait = match push_once(obs, cfg, push_seq, &mut last_acked) {
            Ok(()) => {
                backoff = cfg.backoff_initial;
                cfg.period
            }
            Err(_) => {
                let wait = backoff;
                backoff = (backoff * 2).min(cfg.backoff_max);
                wait
            }
        };
        if sleep_or_stopped(shared, wait) {
            // Final flush: ship whatever accumulated since the last ack so
            // short-lived campaigns (tiny `--rounds` smoke runs) still land
            // at least one complete frame.
            push_seq += 1;
            let _ = push_once(obs, cfg, push_seq, &mut last_acked);
            return;
        }
    }
}

/// One push attempt; on success advances `last_acked` to the aggregator's
/// high-water mark (which may *rewind* after an aggregator restart —
/// exactly what makes retained records get resent).
fn push_once(
    obs: &Obs,
    cfg: &PushConfig,
    push_seq: u64,
    last_acked: &mut Option<u64>,
) -> Result<(), ObsError> {
    let mut frame = obs.frame(&cfg.campaign, *last_acked, cfg.max_records);
    frame.push_seq = push_seq;
    let shipped = frame.records.len() as u64;
    match push_frame(cfg.target, &frame, cfg.deadline) {
        Ok(ack) => {
            *last_acked = ack.acked;
            obs.counter("push", "frames_total", "ok").inc();
            obs.counter("push", "records_acked_total", "").add(shipped);
            Ok(())
        }
        Err(e) => {
            obs.counter("push", "frames_total", e.kind()).inc();
            Err(e)
        }
    }
}

/// Wait up to `dur` or until shutdown is signalled; returns whether the
/// exporter should stop.
fn sleep_or_stopped(shared: &Arc<(Mutex<bool>, Condvar)>, dur: Duration) -> bool {
    let (stopped, cv) = &**shared;
    let mut guard = stopped.lock().unwrap();
    let begun = Instant::now();
    while !*guard {
        let Some(remaining) = dur.checked_sub(begun.elapsed()) else {
            return false;
        };
        let (g, timeout) = cv.wait_timeout(guard, remaining).unwrap();
        guard = g;
        if timeout.timed_out() {
            return *guard;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RecordKind;
    use std::net::TcpListener;

    fn crash(app: &str) -> RecordKind {
        RecordKind::AppCrash {
            app: app.into(),
            detail: "panic".into(),
        }
    }

    #[test]
    fn frame_carries_snapshot_and_journal_delta() {
        let obs = Obs::new();
        obs.counter("core", "events", "").add(3);
        obs.gauge("core", "apps_alive", "").set(2);
        obs.histogram("appvisor", "deliver_ns", "").observe(100);
        obs.record(crash("a"));
        obs.record(crash("b"));

        let full = obs.frame("alpha", None, 4096);
        assert_eq!(full.campaign, "alpha");
        assert_eq!(full.records.len(), 2);
        assert_eq!(full.counters.len(), 1);
        assert_eq!(full.gauges.len(), 1);
        assert_eq!(full.histograms.len(), 1);
        assert_eq!(full.histograms[0].count, 1);
        assert_eq!(full.journal_total, 2);

        let delta = obs.frame("alpha", Some(0), 4096);
        assert_eq!(delta.records.len(), 1);
        assert_eq!(delta.records[0].seq, 1);
        // Metrics stay cumulative even in a delta frame.
        assert_eq!(delta.counters, full.counters);

        let capped = obs.frame("alpha", None, 1);
        assert_eq!(capped.records.len(), 1);
        assert_eq!(capped.records[0].seq, 0, "oldest first under the cap");
    }

    #[test]
    fn frames_roundtrip_through_the_codec() {
        let obs = Obs::new();
        obs.counter("core", "events", "x\"y").add(7);
        obs.histogram("h", "ns", "").observe(42);
        obs.record(crash("alpha"));
        let mut frame = obs.frame("alpha", None, 4096);
        frame.push_seq = 9;
        let bytes = legosdn_codec::to_bytes(&frame).unwrap();
        let back: PushFrame = legosdn_codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, frame);
    }

    #[test]
    fn ack_parsing() {
        assert_eq!(parse_ack("ack=17\n").unwrap(), PushAck { acked: Some(17) });
        assert_eq!(parse_ack("ack=none\n").unwrap(), PushAck { acked: None });
        assert!(matches!(parse_ack("nak"), Err(ObsError::Protocol(_))));
        assert!(matches!(parse_ack("ack=zz"), Err(ObsError::Protocol(_))));
    }

    #[test]
    fn push_to_unreachable_target_is_io_error() {
        let obs = Obs::new();
        // Bind then drop a listener to get a port that refuses connections.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let frame = obs.frame("alpha", None, 16);
        let err = push_frame(addr, &frame, Duration::from_secs(2)).unwrap_err();
        assert!(matches!(err, ObsError::Io(_) | ObsError::Deadline));
    }

    #[test]
    fn push_to_silent_listener_hits_the_deadline() {
        let obs = Obs::new();
        // Accepts but never responds.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let hold = std::thread::spawn(move || listener.accept().map(|(s, _)| s));
        let frame = obs.frame("alpha", None, 16);
        let begun = Instant::now();
        let err = push_frame(addr, &frame, Duration::from_millis(200)).unwrap_err();
        assert!(matches!(err, ObsError::Deadline), "got {err}");
        assert!(begun.elapsed() < Duration::from_secs(2), "deadline bounded");
        drop(hold.join());
    }

    #[test]
    fn exporter_backs_off_and_never_blocks_its_owner() {
        let obs = Obs::new();
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let mut cfg = PushConfig::new(addr, "alpha");
        cfg.period = Duration::from_millis(5);
        cfg.deadline = Duration::from_millis(100);
        cfg.backoff_initial = Duration::from_millis(5);
        cfg.backoff_max = Duration::from_millis(20);
        let exporter = PushExporter::start(obs.clone(), cfg);
        // The owner keeps recording at full speed while pushes fail.
        for i in 0..100 {
            obs.record(crash(&format!("app{i}")));
        }
        std::thread::sleep(Duration::from_millis(60));
        exporter.shutdown();
        let failures = obs.counter("push", "frames_total", "io").get()
            + obs.counter("push", "frames_total", "deadline").get();
        assert!(failures >= 1, "at least one failed push was counted");
        assert_eq!(obs.counter("push", "frames_total", "ok").get(), 0);
        assert_eq!(obs.journal().total_recorded(), 100);
    }
}
