//! Bounded ring-buffer journal of structured recovery-lifecycle records.
//!
//! Every record carries a monotonic sequence number (assigned under the
//! ring lock, so sequence order equals journal order) and a timestamp in
//! nanoseconds relative to the owning `Obs`'s start instant. The journal is
//! the raw material the [`crate::timeline`] reconstructor stitches into
//! per-incident reports.

use std::collections::VecDeque;
use std::sync::Mutex;

use legosdn_codec::Codec;

/// What happened. App-scoped kinds name the app; transaction kinds name
/// the NetLog transaction id.
///
/// `Codec` so records travel inside push frames (`crate::push`) — the
/// variant order is therefore part of the wire format; append new kinds at
/// the end.
#[derive(Clone, Debug, PartialEq, Eq, Codec)]
pub enum RecordKind {
    /// An app panicked while handling an event (fail-stop detection).
    AppCrash { app: String, detail: String },
    /// The proxy lost contact with an app's stub (timeout / disconnect).
    CommFailure { app: String },
    /// The invariant checker vetoed an app's commands.
    ByzantineBlocked { app: String, violations: u64 },
    /// A liveness sweep found an app's heartbeat stale.
    HeartbeatMiss { app: String },
    /// Crash-Pad serialized an app snapshot.
    CheckpointTaken {
        app: String,
        bytes: u64,
        dur_ns: u64,
    },
    /// Crash-Pad restored an app from its last snapshot.
    CheckpointRestored {
        app: String,
        bytes: u64,
        dur_ns: u64,
    },
    /// Post-restore event replay finished.
    ReplayDone {
        app: String,
        events_replayed: u64,
        dur_ns: u64,
    },
    /// A NetLog transaction opened.
    TxnBegin { txn: u64, app: String },
    /// A NetLog transaction committed.
    TxnCommit { txn: u64, ops: u64 },
    /// A NetLog transaction rolled back, undoing `undo_ops` network ops.
    TxnRollback { txn: u64, undo_ops: u64 },
    /// The compromise-policy engine chose a recovery action.
    PolicyDecision {
        app: String,
        policy: String,
        verdict: String,
    },
    /// An event was rewritten into an equivalent one during recovery.
    EventTransformed { app: String },
    /// An event was dropped to get past a deterministic crash.
    EventDropped { app: String },
    /// A problem ticket was filed (incident closes).
    TicketFiled { app: String, failure: String },
    /// The app was declared dead (incident closes without a ticket).
    AppDead { app: String },
}

impl RecordKind {
    /// The app this record belongs to, if app-scoped.
    #[must_use]
    pub fn app(&self) -> Option<&str> {
        match self {
            RecordKind::AppCrash { app, .. }
            | RecordKind::CommFailure { app }
            | RecordKind::ByzantineBlocked { app, .. }
            | RecordKind::HeartbeatMiss { app }
            | RecordKind::CheckpointTaken { app, .. }
            | RecordKind::CheckpointRestored { app, .. }
            | RecordKind::ReplayDone { app, .. }
            | RecordKind::TxnBegin { app, .. }
            | RecordKind::PolicyDecision { app, .. }
            | RecordKind::EventTransformed { app }
            | RecordKind::EventDropped { app }
            | RecordKind::TicketFiled { app, .. }
            | RecordKind::AppDead { app } => Some(app),
            RecordKind::TxnCommit { .. } | RecordKind::TxnRollback { .. } => None,
        }
    }

    /// Whether this record opens an incident (a failure detection).
    #[must_use]
    pub fn is_detection(&self) -> bool {
        matches!(
            self,
            RecordKind::AppCrash { .. }
                | RecordKind::CommFailure { .. }
                | RecordKind::ByzantineBlocked { .. }
                | RecordKind::HeartbeatMiss { .. }
        )
    }

    /// Short stable name for exports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            RecordKind::AppCrash { .. } => "app_crash",
            RecordKind::CommFailure { .. } => "comm_failure",
            RecordKind::ByzantineBlocked { .. } => "byzantine_blocked",
            RecordKind::HeartbeatMiss { .. } => "heartbeat_miss",
            RecordKind::CheckpointTaken { .. } => "checkpoint_taken",
            RecordKind::CheckpointRestored { .. } => "checkpoint_restored",
            RecordKind::ReplayDone { .. } => "replay_done",
            RecordKind::TxnBegin { .. } => "txn_begin",
            RecordKind::TxnCommit { .. } => "txn_commit",
            RecordKind::TxnRollback { .. } => "txn_rollback",
            RecordKind::PolicyDecision { .. } => "policy_decision",
            RecordKind::EventTransformed { .. } => "event_transformed",
            RecordKind::EventDropped { .. } => "event_dropped",
            RecordKind::TicketFiled { .. } => "ticket_filed",
            RecordKind::AppDead { .. } => "app_dead",
        }
    }
}

/// One journal entry.
#[derive(Clone, Debug, PartialEq, Eq, Codec)]
pub struct Record {
    /// Monotonic sequence number; total order over all records.
    pub seq: u64,
    /// Nanoseconds since the owning `Obs` was created.
    pub at_ns: u64,
    pub kind: RecordKind,
}

/// Fixed-capacity ring of [`Record`]s; oldest entries are evicted first.
#[derive(Debug)]
pub struct Journal {
    inner: Mutex<Ring>,
    capacity: usize,
}

#[derive(Debug, Default)]
struct Ring {
    records: VecDeque<Record>,
    next_seq: u64,
    evicted: u64,
}

impl Journal {
    /// A journal holding at most `capacity` records.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Journal {
            inner: Mutex::new(Ring::default()),
            capacity: capacity.max(1),
        }
    }

    /// Append a record stamped `at_ns`; returns its sequence number.
    pub fn record_at(&self, at_ns: u64, kind: RecordKind) -> u64 {
        self.record_at_evicting(at_ns, kind).0
    }

    /// Append a record and report whether the ring dropped its oldest
    /// record to make room — [`crate::Obs::record`] mirrors that bit into
    /// the `journal_dropped` counter so silent eviction shows up in
    /// `/metrics` and push frames, not just in [`Journal::evicted`].
    pub fn record_at_evicting(&self, at_ns: u64, kind: RecordKind) -> (u64, bool) {
        let mut ring = self.inner.lock().unwrap();
        let seq = ring.next_seq;
        ring.next_seq += 1;
        let mut dropped = false;
        if ring.records.len() == self.capacity {
            ring.records.pop_front();
            ring.evicted += 1;
            dropped = true;
        }
        ring.records.push_back(Record { seq, at_ns, kind });
        (seq, dropped)
    }

    /// Snapshot of the retained records, oldest first.
    #[must_use]
    pub fn snapshot(&self) -> Vec<Record> {
        self.inner.lock().unwrap().records.iter().cloned().collect()
    }

    /// The retained records with sequence numbers strictly greater than
    /// `since` (all retained records when `None`), oldest first — the
    /// delta a push exporter ships between acks. Records evicted by the
    /// ring before being requested are simply gone: the ring itself is
    /// the drop-oldest buffer that keeps a dead consumer from growing
    /// this process without bound.
    #[must_use]
    pub fn snapshot_since(&self, since: Option<u64>) -> Vec<Record> {
        let ring = self.inner.lock().unwrap();
        match since {
            None => ring.records.iter().cloned().collect(),
            Some(seq) => ring
                .records
                .iter()
                .filter(|r| r.seq > seq)
                .cloned()
                .collect(),
        }
    }

    /// Total records ever appended (including evicted ones).
    #[must_use]
    pub fn total_recorded(&self) -> u64 {
        self.inner.lock().unwrap().next_seq
    }

    /// Records lost to ring eviction.
    #[must_use]
    pub fn evicted(&self) -> u64 {
        self.inner.lock().unwrap().evicted
    }

    /// Maximum records retained.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crash(app: &str) -> RecordKind {
        RecordKind::AppCrash {
            app: app.into(),
            detail: "panic".into(),
        }
    }

    #[test]
    fn sequence_numbers_are_monotonic_and_dense() {
        let j = Journal::new(16);
        for i in 0..10 {
            assert_eq!(j.record_at(i, crash("a")), i);
        }
        let snap = j.snapshot();
        assert_eq!(snap.len(), 10);
        for (i, rec) in snap.iter().enumerate() {
            assert_eq!(rec.seq, i as u64);
        }
    }

    #[test]
    fn ring_wraparound_keeps_newest() {
        let j = Journal::new(4);
        for i in 0..10u64 {
            j.record_at(
                i,
                RecordKind::TxnBegin {
                    txn: i,
                    app: "a".into(),
                },
            );
        }
        let snap = j.snapshot();
        assert_eq!(snap.len(), 4);
        assert_eq!(snap.first().unwrap().seq, 6, "oldest retained");
        assert_eq!(snap.last().unwrap().seq, 9, "newest retained");
        assert_eq!(j.evicted(), 6);
        assert_eq!(j.total_recorded(), 10);
        // Still dense and ordered after wrap.
        for w in snap.windows(2) {
            assert_eq!(w[1].seq, w[0].seq + 1);
        }
    }

    #[test]
    fn record_at_evicting_reports_the_drop() {
        let j = Journal::new(2);
        assert_eq!(j.record_at_evicting(0, crash("a")), (0, false));
        assert_eq!(j.record_at_evicting(1, crash("a")), (1, false));
        assert_eq!(j.record_at_evicting(2, crash("a")), (2, true));
        assert_eq!(j.evicted(), 1);
    }

    #[test]
    fn snapshot_since_returns_the_delta() {
        let j = Journal::new(8);
        for i in 0..5 {
            j.record_at(i, crash("a"));
        }
        assert_eq!(j.snapshot_since(None).len(), 5);
        let delta = j.snapshot_since(Some(2));
        assert_eq!(delta.len(), 2);
        assert_eq!(delta[0].seq, 3);
        assert_eq!(delta[1].seq, 4);
        assert!(j.snapshot_since(Some(4)).is_empty());
        // An ack pointing past eviction still yields only retained records.
        assert_eq!(j.snapshot_since(Some(100)).len(), 0);
    }

    #[test]
    fn records_roundtrip_through_the_codec() {
        let j = Journal::new(8);
        j.record_at(7, crash("alpha"));
        j.record_at(
            9,
            RecordKind::CheckpointTaken {
                app: "alpha".into(),
                bytes: 128,
                dur_ns: 42,
            },
        );
        for rec in j.snapshot() {
            let bytes = legosdn_codec::to_bytes(&rec).unwrap();
            let back: Record = legosdn_codec::from_bytes(&bytes).unwrap();
            assert_eq!(back, rec);
        }
    }

    #[test]
    fn capacity_of_zero_is_clamped_to_one() {
        let j = Journal::new(0);
        j.record_at(0, crash("a"));
        j.record_at(1, crash("b"));
        assert_eq!(j.snapshot().len(), 1);
    }

    #[test]
    fn kind_app_scoping() {
        assert_eq!(crash("x").app(), Some("x"));
        assert_eq!(RecordKind::TxnCommit { txn: 1, ops: 2 }.app(), None);
        assert!(crash("x").is_detection());
        assert!(!RecordKind::TicketFiled {
            app: "x".into(),
            failure: "f".into()
        }
        .is_detection());
    }
}
