//! Property tests for the recovery-timeline reconstructor: for *any*
//! interleaving of journal records across apps and transactions, the
//! reconstructed incidents are fully ordered by detection sequence and,
//! per app, their `[detection_seq, end_seq]` ranges never overlap.

use legosdn_obs::{reconstruct, Journal, RecordKind, Resolution};
use legosdn_testkit::{forall, Rng};

/// One random record concerning one of `apps`, possibly referencing a
/// transaction id drawn from a small shared pool so rollbacks interleave
/// across apps.
fn random_record(rng: &mut Rng, apps: &[&str], txns: &mut Vec<(u64, String)>) -> RecordKind {
    let app = (*rng.pick(apps)).to_string();
    match rng.gen_range(0u32..12) {
        0 => RecordKind::AppCrash {
            app,
            detail: "bug".into(),
        },
        1 => RecordKind::CommFailure { app },
        2 => RecordKind::ByzantineBlocked {
            app,
            violations: rng.gen_range(1u64..5),
        },
        3 => RecordKind::HeartbeatMiss { app },
        4 => RecordKind::CheckpointTaken {
            app,
            bytes: rng.gen_range(1u64..4096),
            dur_ns: rng.gen_range(1u64..10_000),
        },
        5 => RecordKind::CheckpointRestored {
            app,
            bytes: rng.gen_range(1u64..4096),
            dur_ns: rng.gen_range(1u64..10_000),
        },
        6 => RecordKind::ReplayDone {
            app,
            events_replayed: rng.gen_range(0u64..8),
            dur_ns: rng.gen_range(1u64..10_000),
        },
        7 => {
            let id = rng.gen_range(1u64..1_000_000);
            txns.push((id, app.clone()));
            RecordKind::TxnBegin { txn: id, app }
        }
        8 => match rng.pick_opt(txns) {
            Some((id, _)) => RecordKind::TxnCommit {
                txn: *id,
                ops: rng.gen_range(0u64..6),
            },
            None => RecordKind::EventTransformed { app },
        },
        9 => match rng.pick_opt(txns) {
            Some((id, _)) => RecordKind::TxnRollback {
                txn: *id,
                undo_ops: rng.gen_range(0u64..6),
            },
            None => RecordKind::EventDropped { app },
        },
        10 => RecordKind::TicketFiled {
            app,
            failure: "fail_stop".into(),
        },
        _ => RecordKind::AppDead { app },
    }
}

/// `Rng::pick` panics on empty slices; the pool starts empty.
trait PickOpt {
    fn pick_opt<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T>;
}
impl PickOpt for Rng {
    fn pick_opt<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(self.pick(items))
        }
    }
}

#[test]
fn any_interleaving_yields_ordered_non_overlapping_incidents() {
    forall(200, |rng| {
        let apps = ["alpha", "beta", "gamma"];
        let journal = Journal::new(512);
        let mut txns = Vec::new();
        let n = rng.gen_range(0usize..120);
        let mut at = 0u64;
        for _ in 0..n {
            at += rng.gen_range(1u64..5_000);
            let kind = random_record(rng, &apps, &mut txns);
            journal.record_at(at, kind);
        }

        let records = journal.snapshot();
        let incidents = reconstruct(&records);

        // Fully ordered by detection seq, globally.
        for pair in incidents.windows(2) {
            assert!(
                pair[0].detection_seq <= pair[1].detection_seq,
                "incidents out of order: {} then {}",
                pair[0].detection_seq,
                pair[1].detection_seq
            );
        }

        for inc in &incidents {
            // The range is well-formed and lies within the journal.
            assert!(inc.detection_seq <= inc.end_seq);
            assert!(inc.detection_at_ns <= inc.end_at_ns);
            assert!(records.iter().any(|r| r.seq == inc.detection_seq));
            // Every incident starts at a detection record for its own app.
            let det = records.iter().find(|r| r.seq == inc.detection_seq).unwrap();
            assert!(det.kind.is_detection());
            assert_eq!(det.kind.app(), Some(inc.app.as_str()));
        }

        // Per app: ranges never overlap, and at most one incident is
        // unresolved (Open) — the last one.
        for app in apps {
            let mine: Vec<_> = incidents.iter().filter(|i| i.app == app).collect();
            for pair in mine.windows(2) {
                assert!(
                    pair[0].end_seq < pair[1].detection_seq,
                    "app {app}: incident [{}..{}] overlaps [{}..{}]",
                    pair[0].detection_seq,
                    pair[0].end_seq,
                    pair[1].detection_seq,
                    pair[1].end_seq
                );
            }
            let open = mine
                .iter()
                .filter(|i| i.resolution == Resolution::Open)
                .count();
            assert!(open <= 1, "app {app}: {open} open incidents");
            if open == 1 {
                assert_eq!(mine.last().unwrap().resolution, Resolution::Open);
            }
        }

        // Reconstruction is a pure function of the record set: shuffling
        // the input order changes nothing.
        let mut shuffled = records.clone();
        for i in (1..shuffled.len()).rev() {
            let j = rng.gen_range(0usize..i + 1);
            shuffled.swap(i, j);
        }
        assert_eq!(reconstruct(&shuffled), incidents);
    });
}
