//! Property: for ANY interleaving of journal records — multiple apps,
//! interleaved transactions, arbitrary kinds in arbitrary order — the
//! reconstructor yields incident timelines that are fully ordered by
//! detection sequence and non-overlapping per app, with every attributed
//! record inside its incident's `[detection_seq, end_seq]` range.

use legosdn_obs::{reconstruct, Journal, RecordKind};
use legosdn_testkit::{forall, Rng};

const APPS: [&str; 4] = ["fwd", "lb", "fw", "mon"];

fn arb_kind(rng: &mut Rng, next_txn: &mut u64, open_txns: &mut Vec<u64>) -> RecordKind {
    let app = (*rng.pick(&APPS)).to_string();
    match rng.gen_range(0u32..14) {
        0 => RecordKind::AppCrash {
            app,
            detail: rng.gen_name(0..6),
        },
        1 => RecordKind::CommFailure { app },
        2 => RecordKind::ByzantineBlocked {
            app,
            violations: rng.gen_range(1u64..5),
        },
        3 => RecordKind::HeartbeatMiss { app },
        4 => RecordKind::CheckpointTaken {
            app,
            bytes: rng.gen_range(1u64..4096),
            dur_ns: rng.gen_range(1u64..100_000),
        },
        5 => RecordKind::CheckpointRestored {
            app,
            bytes: rng.gen_range(1u64..4096),
            dur_ns: rng.gen_range(1u64..100_000),
        },
        6 => RecordKind::ReplayDone {
            app,
            events_replayed: rng.gen_range(0u64..10),
            dur_ns: rng.gen_range(1u64..100_000),
        },
        7 => {
            let txn = *next_txn;
            *next_txn += 1;
            open_txns.push(txn);
            RecordKind::TxnBegin { txn, app }
        }
        8 | 9 if !open_txns.is_empty() => {
            let txn = open_txns.remove(rng.gen_range(0..open_txns.len()));
            if rng.gen_bool(0.5) {
                RecordKind::TxnCommit {
                    txn,
                    ops: rng.gen_range(0u64..8),
                }
            } else {
                RecordKind::TxnRollback {
                    txn,
                    undo_ops: rng.gen_range(0u64..8),
                }
            }
        }
        10 => RecordKind::PolicyDecision {
            app,
            policy: rng.gen_name(1..8),
            verdict: rng.gen_name(1..8),
        },
        11 => RecordKind::EventTransformed { app },
        12 => RecordKind::EventDropped { app },
        13 => RecordKind::TicketFiled {
            app,
            failure: rng.gen_name(1..8),
        },
        _ => RecordKind::AppDead { app },
    }
}

#[test]
fn any_interleaving_yields_ordered_non_overlapping_incidents() {
    forall(256, |rng| {
        let journal = Journal::new(512);
        let mut next_txn = 0u64;
        let mut open_txns = Vec::new();
        let n = rng.gen_range(0usize..120);
        let mut t = 0u64;
        for _ in 0..n {
            t += rng.gen_range(1u64..1000);
            journal.record_at(t, arb_kind(rng, &mut next_txn, &mut open_txns));
        }

        let records = journal.snapshot();
        let incidents = reconstruct(&records);

        // Fully ordered by detection seq, globally.
        for w in incidents.windows(2) {
            assert!(
                w[0].detection_seq < w[1].detection_seq,
                "incidents out of order: {} !< {}",
                w[0].detection_seq,
                w[1].detection_seq
            );
        }

        for inc in &incidents {
            // An incident's range is well-formed and time-consistent.
            assert!(inc.detection_seq <= inc.end_seq);
            assert!(inc.detection_at_ns <= inc.end_at_ns);
            // Every detection record actually opens an incident of its kind.
            let det = records.iter().find(|r| r.seq == inc.detection_seq).unwrap();
            assert!(det.kind.is_detection());
            assert_eq!(det.kind.app(), Some(inc.app.as_str()));
        }

        // Per app: non-overlapping [detection_seq, end_seq] ranges.
        for app in APPS {
            let mut per_app: Vec<_> = incidents.iter().filter(|i| i.app == app).collect();
            per_app.sort_by_key(|i| i.detection_seq);
            for w in per_app.windows(2) {
                assert!(
                    w[0].end_seq < w[1].detection_seq,
                    "app {app}: incident [{}, {}] overlaps [{}, {}]",
                    w[0].detection_seq,
                    w[0].end_seq,
                    w[1].detection_seq,
                    w[1].end_seq
                );
            }
        }

        // Incident count equals detection-record count (each detection
        // opens exactly one incident).
        let detections = records.iter().filter(|r| r.kind.is_detection()).count();
        assert_eq!(incidents.len(), detections);

        // Reconstruction is deterministic.
        assert_eq!(reconstruct(&records), incidents);
    });
}
