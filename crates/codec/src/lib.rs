//! A compact, non-self-describing binary codec for application snapshots
//! and RPC frames — std-only, zero external dependencies.
//!
//! Crash-Pad's checkpoint primitive (the CRIU stand-in, DESIGN.md §2) is
//! "serialize the app's complete state before each event"; AppVisor's
//! proxy⇄stub RPC carries the same encoding on the wire. The format is
//! bincode-like: fixed-width little-endian integers, `u64` length-prefixed
//! sequences and strings, one-byte option/bool tags, and `u32` enum variant
//! indices. It is implemented locally because the build environment has no
//! registry access — the [`Codec`] derive replaces `serde` entirely.
//!
//! The format is not self-describing: decoding must use the same types as
//! encoding.

// The derive macro emits `::legosdn_codec::…` paths; alias ourselves so
// `#[derive(Codec)]` also works inside this crate (mirrors serde's trick).
extern crate self as legosdn_codec;

pub use legosdn_codec_derive::Codec;

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;

/// Encode `value` to bytes.
pub fn to_bytes<T: Codec>(value: &T) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::new();
    value.encode(&mut out);
    Ok(out)
}

/// Decode a `T` from bytes produced by [`to_bytes`].
pub fn from_bytes<T: Codec>(bytes: &[u8]) -> Result<T, CodecError> {
    let mut r = Reader {
        input: bytes,
        pos: 0,
    };
    let value = T::decode(&mut r)?;
    if r.pos != bytes.len() {
        return Err(CodecError::Trailing(bytes.len() - r.pos));
    }
    Ok(value)
}

/// Codec failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// Ran out of input.
    Eof,
    /// Input bytes left over after a complete value.
    Trailing(usize),
    /// Structurally invalid input (bad tag, bad UTF-8, absurd length).
    Invalid(String),
    /// Caller-reported error.
    Message(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Eof => write!(f, "unexpected end of input"),
            CodecError::Trailing(n) => write!(f, "{n} trailing bytes"),
            CodecError::Invalid(s) => write!(f, "invalid input: {s}"),
            CodecError::Message(s) => write!(f, "{s}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// A cursor over input bytes.
pub struct Reader<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `input`, positioned at the start.
    #[must_use]
    pub fn new(input: &'a [u8]) -> Self {
        Reader { input, pos: 0 }
    }

    /// Take the next `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.input.len() - self.pos < n {
            return Err(CodecError::Eof);
        }
        let out = &self.input[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read a `u64 LE` length prefix with a plausibility bound: a length
    /// can't exceed remaining bytes ×8 (every element is at least one
    /// byte, except units; allow slack).
    pub fn get_len(&mut self) -> Result<usize, CodecError> {
        let b = self.take(8)?;
        let len = u64::from_le_bytes(b.try_into().unwrap());
        let remaining = (self.input.len() - self.pos) as u64;
        if len > remaining.saturating_mul(8).saturating_add(64) {
            return Err(CodecError::Invalid(format!("length {len} implausible")));
        }
        Ok(len as usize)
    }
}

/// A value with a stable binary encoding.
pub trait Codec: Sized {
    /// Append this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decode one value from the reader.
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError>;
}

macro_rules! num_codec {
    ($($ty:ty),*) => {$(
        impl Codec for $ty {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
                Ok(<$ty>::from_le_bytes(r.take(size_of::<$ty>())?.try_into().unwrap()))
            }
        }
    )*};
}

num_codec!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128);

// usize/isize travel as fixed 64-bit so snapshots are portable.
impl Codec for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(u64::decode(r)? as usize)
    }
}

impl Codec for isize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as i64).encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(i64::decode(r)? as isize)
    }
}

impl Codec for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.take(1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CodecError::Invalid(format!("bool tag {other}"))),
        }
    }
}

impl Codec for f32 {
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bits().encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(f32::from_bits(u32::decode(r)?))
    }
}

impl Codec for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bits().encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(f64::from_bits(u64::decode(r)?))
    }
}

impl Codec for char {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u32).encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let v = u32::decode(r)?;
        char::from_u32(v).ok_or_else(|| CodecError::Invalid(format!("char {v}")))
    }
}

impl Codec for String {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u64).to_le_bytes());
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let len = r.get_len()?;
        let bytes = r.take(len)?;
        std::str::from_utf8(bytes)
            .map(str::to_owned)
            .map_err(|_| CodecError::Invalid("non-UTF-8 string".into()))
    }
}

impl Codec for () {
    fn encode(&self, _out: &mut Vec<u8>) {}
    fn decode(_r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(())
    }
}

impl<T: Codec> Codec for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.take(1)?[0] {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            other => Err(CodecError::Invalid(format!("option tag {other}"))),
        }
    }
}

impl<T: Codec> Codec for Box<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (**self).encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Box::new(T::decode(r)?))
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u64).to_le_bytes());
        for v in self {
            v.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let len = r.get_len()?;
        let mut v = Vec::with_capacity(len.min(4096));
        for _ in 0..len {
            v.push(T::decode(r)?);
        }
        Ok(v)
    }
}

impl<T: Codec> Codec for std::collections::VecDeque<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u64).to_le_bytes());
        for v in self {
            v.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let len = r.get_len()?;
        let mut v = std::collections::VecDeque::with_capacity(len.min(4096));
        for _ in 0..len {
            v.push_back(T::decode(r)?);
        }
        Ok(v)
    }
}

impl<T: Codec, const N: usize> Codec for [T; N] {
    fn encode(&self, out: &mut Vec<u8>) {
        for v in self {
            v.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        // Arrays encode as fixed-length tuples: no length prefix.
        let mut v = Vec::with_capacity(N);
        for _ in 0..N {
            v.push(T::decode(r)?);
        }
        v.try_into().map_err(|_| CodecError::Eof)
    }
}

impl<K: Codec + Ord, V: Codec> Codec for BTreeMap<K, V> {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u64).to_le_bytes());
        for (k, v) in self {
            k.encode(out);
            v.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let len = r.get_len()?;
        let mut m = BTreeMap::new();
        for _ in 0..len {
            m.insert(K::decode(r)?, V::decode(r)?);
        }
        Ok(m)
    }
}

impl<K: Codec + Eq + Hash, V: Codec> Codec for HashMap<K, V> {
    fn encode(&self, out: &mut Vec<u8>) {
        // Deterministic encoding requires a stable order; collect and sort
        // by encoded key bytes.
        let mut entries: Vec<(Vec<u8>, Vec<u8>)> = self
            .iter()
            .map(|(k, v)| {
                let (mut kb, mut vb) = (Vec::new(), Vec::new());
                k.encode(&mut kb);
                v.encode(&mut vb);
                (kb, vb)
            })
            .collect();
        entries.sort();
        out.extend_from_slice(&(entries.len() as u64).to_le_bytes());
        for (kb, vb) in entries {
            out.extend_from_slice(&kb);
            out.extend_from_slice(&vb);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let len = r.get_len()?;
        let mut m = HashMap::with_capacity(len.min(4096));
        for _ in 0..len {
            let k = K::decode(r)?;
            let v = V::decode(r)?;
            m.insert(k, v);
        }
        Ok(m)
    }
}

impl<T: Codec + Ord> Codec for BTreeSet<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u64).to_le_bytes());
        for v in self {
            v.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let len = r.get_len()?;
        let mut s = BTreeSet::new();
        for _ in 0..len {
            s.insert(T::decode(r)?);
        }
        Ok(s)
    }
}

impl<T: Codec + Eq + Hash + Ord> Codec for HashSet<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        out.extend_from_slice(&(items.len() as u64).to_le_bytes());
        for v in items {
            v.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let len = r.get_len()?;
        let mut s = HashSet::with_capacity(len.min(4096));
        for _ in 0..len {
            s.insert(T::decode(r)?);
        }
        Ok(s)
    }
}

macro_rules! tuple_codec {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Codec),+> Codec for ($($t,)+) {
            fn encode(&self, out: &mut Vec<u8>) {
                $(self.$n.encode(out);)+
            }
            fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
                Ok(($($t::decode(r)?,)+))
            }
        }
    )+};
}

tuple_codec!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F),
);

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Codec + PartialEq + fmt::Debug>(value: T) {
        let bytes = to_bytes(&value).expect("encode");
        let back: T = from_bytes(&bytes).expect("decode");
        assert_eq!(back, value);
    }

    #[derive(Codec, PartialEq, Debug)]
    struct Nested {
        name: String,
        items: Vec<(u32, bool)>,
        lookup: BTreeMap<String, u64>,
        maybe: Option<Box<Nested>>,
    }

    #[derive(Codec, PartialEq, Debug)]
    enum Shape {
        Unit,
        Newtype(u32),
        Tuple(u8, String),
        Struct { x: i64, y: Option<f64> },
    }

    #[derive(Codec, PartialEq, Debug)]
    struct Pair(pub u32, pub String);

    #[derive(Codec, PartialEq, Debug, Default)]
    struct Skippy {
        kept: u64,
        #[codec(skip)]
        scratch: u64,
    }

    #[test]
    fn primitives() {
        roundtrip(0u8);
        roundtrip(u64::MAX);
        roundtrip(-123i32);
        roundtrip(i64::MIN);
        roundtrip(true);
        roundtrip(false);
        roundtrip('\u{1F980}');
        roundtrip(3.25f32);
        roundtrip(-0.0f64);
        roundtrip(String::from("hello snapshot"));
        roundtrip(String::new());
        roundtrip(7usize);
    }

    #[test]
    fn collections() {
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<String>::new());
        roundtrip(BTreeMap::from([
            ("a".to_string(), 1u8),
            ("b".to_string(), 2),
        ]));
        roundtrip((1u8, "x".to_string(), vec![true, false]));
        roundtrip(Some(vec![Some(1u16), None]));
        roundtrip([1u8, 2, 3, 4, 5, 6]);
        roundtrip(HashMap::from([
            (1u32, "a".to_string()),
            (2, "b".to_string()),
        ]));
        roundtrip(BTreeSet::from([3u16, 1, 2]));
    }

    #[test]
    fn structs_and_enums() {
        roundtrip(Nested {
            name: "root".into(),
            items: vec![(1, true), (2, false)],
            lookup: BTreeMap::from([("k".to_string(), 9u64)]),
            maybe: Some(Box::new(Nested {
                name: "leaf".into(),
                items: vec![],
                lookup: BTreeMap::new(),
                maybe: None,
            })),
        });
        roundtrip(Shape::Unit);
        roundtrip(Shape::Newtype(7));
        roundtrip(Shape::Tuple(1, "t".into()));
        roundtrip(Shape::Struct {
            x: -5,
            y: Some(2.5),
        });
        roundtrip(vec![Shape::Unit, Shape::Newtype(1)]);
        roundtrip(Pair(9, "p".into()));
    }

    #[test]
    fn variant_indices_are_stable_u32() {
        assert_eq!(to_bytes(&Shape::Unit).unwrap(), 0u32.to_le_bytes());
        let bytes = to_bytes(&Shape::Newtype(7)).unwrap();
        assert_eq!(&bytes[..4], 1u32.to_le_bytes());
        assert_eq!(&bytes[4..], 7u32.to_le_bytes());
    }

    #[test]
    fn skip_fields_are_not_encoded_and_default_on_decode() {
        let v = Skippy {
            kept: 5,
            scratch: 99,
        };
        let bytes = to_bytes(&v).unwrap();
        assert_eq!(bytes.len(), 8, "only `kept` travels");
        let back: Skippy = from_bytes(&bytes).unwrap();
        assert_eq!(back.kept, 5);
        assert_eq!(back.scratch, 0, "skipped field defaults");
    }

    #[test]
    fn truncated_input_errors() {
        let bytes = to_bytes(&vec![1u64, 2, 3]).unwrap();
        for cut in 0..bytes.len() {
            assert!(
                from_bytes::<Vec<u64>>(&bytes[..cut]).is_err(),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn trailing_input_errors() {
        let mut bytes = to_bytes(&7u32).unwrap();
        bytes.push(0);
        assert_eq!(from_bytes::<u32>(&bytes), Err(CodecError::Trailing(1)));
    }

    #[test]
    fn bad_tags_error() {
        assert!(from_bytes::<bool>(&[7]).is_err());
        assert!(from_bytes::<Option<u8>>(&[9, 1]).is_err());
        // Absurd length prefix.
        let mut bytes = u64::MAX.to_le_bytes().to_vec();
        bytes.push(0);
        assert!(from_bytes::<String>(&bytes).is_err());
        // Out-of-range enum variant.
        assert!(from_bytes::<Shape>(&99u32.to_le_bytes()).is_err());
    }

    #[test]
    fn type_confusion_is_detected_or_differs() {
        // Not self-describing: decoding as the wrong type either errors or
        // yields different bytes — it must never panic.
        let bytes = to_bytes(&("abc".to_string(), 42u64)).unwrap();
        let _ = from_bytes::<Vec<u8>>(&bytes);
        let _ = from_bytes::<u64>(&bytes);
    }
}
