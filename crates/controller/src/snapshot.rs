//! A compact, non-self-describing binary serde codec for application
//! snapshots.
//!
//! Crash-Pad's checkpoint primitive (the CRIU stand-in, DESIGN.md §2) is
//! "serialize the app's complete state before each event". This module is
//! the wire format those snapshots use: fixed-width little-endian integers,
//! length-prefixed sequences and strings, one-byte option/bool tags, and
//! `u32` enum variant indices — bincode-like semantics, implemented locally
//! because the approved dependency set has `serde` but no serde format
//! crate.
//!
//! Like bincode, the format is not self-describing: decoding must use the
//! same types as encoding. `deserialize_any` is unsupported.

use serde::de::{self, DeserializeSeed, IntoDeserializer, SeqAccess, Visitor};
use serde::ser::{self, Serialize};
use serde::Deserialize;
use std::fmt;

/// Serialize `value` to bytes.
pub fn to_bytes<T: Serialize>(value: &T) -> Result<Vec<u8>, CodecError> {
    let mut ser = Serializer { out: Vec::new() };
    value.serialize(&mut ser)?;
    Ok(ser.out)
}

/// Deserialize a `T` from bytes produced by [`to_bytes`].
pub fn from_bytes<'a, T: Deserialize<'a>>(bytes: &'a [u8]) -> Result<T, CodecError> {
    let mut de = Deserializer { input: bytes, pos: 0 };
    let value = T::deserialize(&mut de)?;
    if de.pos != bytes.len() {
        return Err(CodecError::Trailing(bytes.len() - de.pos));
    }
    Ok(value)
}

/// Codec failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// Ran out of input.
    Eof,
    /// Input bytes left over after a complete value.
    Trailing(usize),
    /// Structurally invalid input (bad tag, bad UTF-8, absurd length).
    Invalid(String),
    /// Serde-reported error.
    Message(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Eof => write!(f, "unexpected end of snapshot"),
            CodecError::Trailing(n) => write!(f, "{n} trailing bytes in snapshot"),
            CodecError::Invalid(s) => write!(f, "invalid snapshot: {s}"),
            CodecError::Message(s) => write!(f, "{s}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl ser::Error for CodecError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        CodecError::Message(msg.to_string())
    }
}

impl de::Error for CodecError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        CodecError::Message(msg.to_string())
    }
}

// -------------------------------------------------------------------------
// serializer
// -------------------------------------------------------------------------

struct Serializer {
    out: Vec<u8>,
}

impl Serializer {
    fn put_len(&mut self, len: usize) {
        self.out.extend_from_slice(&(len as u64).to_le_bytes());
    }
}

impl ser::Serializer for &mut Serializer {
    type Ok = ();
    type Error = CodecError;
    type SerializeSeq = Self;
    type SerializeTuple = Self;
    type SerializeTupleStruct = Self;
    type SerializeTupleVariant = Self;
    type SerializeMap = Self;
    type SerializeStruct = Self;
    type SerializeStructVariant = Self;

    fn serialize_bool(self, v: bool) -> Result<(), CodecError> {
        self.out.push(u8::from(v));
        Ok(())
    }
    fn serialize_i8(self, v: i8) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_i16(self, v: i16) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_i32(self, v: i32) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_i64(self, v: i64) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_u8(self, v: u8) -> Result<(), CodecError> {
        self.out.push(v);
        Ok(())
    }
    fn serialize_u16(self, v: u16) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_u32(self, v: u32) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_u64(self, v: u64) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_f32(self, v: f32) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_bits().to_le_bytes());
        Ok(())
    }
    fn serialize_f64(self, v: f64) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_bits().to_le_bytes());
        Ok(())
    }
    fn serialize_char(self, v: char) -> Result<(), CodecError> {
        self.serialize_u32(v as u32)
    }
    fn serialize_str(self, v: &str) -> Result<(), CodecError> {
        self.put_len(v.len());
        self.out.extend_from_slice(v.as_bytes());
        Ok(())
    }
    fn serialize_bytes(self, v: &[u8]) -> Result<(), CodecError> {
        self.put_len(v.len());
        self.out.extend_from_slice(v);
        Ok(())
    }
    fn serialize_none(self) -> Result<(), CodecError> {
        self.out.push(0);
        Ok(())
    }
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), CodecError> {
        self.out.push(1);
        value.serialize(self)
    }
    fn serialize_unit(self) -> Result<(), CodecError> {
        Ok(())
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), CodecError> {
        Ok(())
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<(), CodecError> {
        self.serialize_u32(variant_index)
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(self)
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        self.serialize_u32(variant_index)?;
        value.serialize(self)
    }
    fn serialize_seq(self, len: Option<usize>) -> Result<Self, CodecError> {
        let len = len.ok_or_else(|| CodecError::Message("sequence length required".into()))?;
        self.put_len(len);
        Ok(self)
    }
    fn serialize_tuple(self, _len: usize) -> Result<Self, CodecError> {
        Ok(self)
    }
    fn serialize_tuple_struct(self, _name: &'static str, _len: usize) -> Result<Self, CodecError> {
        Ok(self)
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, CodecError> {
        self.serialize_u32(variant_index)?;
        Ok(self)
    }
    fn serialize_map(self, len: Option<usize>) -> Result<Self, CodecError> {
        let len = len.ok_or_else(|| CodecError::Message("map length required".into()))?;
        self.put_len(len);
        Ok(self)
    }
    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Self, CodecError> {
        Ok(self)
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, CodecError> {
        self.serialize_u32(variant_index)?;
        Ok(self)
    }
}

macro_rules! forward_compound {
    ($trait:path, $method:ident $(, $key:ident)?) => {
        impl<'a> $trait for &'a mut Serializer {
            type Ok = ();
            type Error = CodecError;
            $(
                fn $key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), CodecError> {
                    key.serialize(&mut **self)
                }
            )?
            fn $method<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
                value.serialize(&mut **self)
            }
            fn end(self) -> Result<(), CodecError> {
                Ok(())
            }
        }
    };
}

forward_compound!(ser::SerializeSeq, serialize_element);
forward_compound!(ser::SerializeTuple, serialize_element);
forward_compound!(ser::SerializeTupleStruct, serialize_field);
forward_compound!(ser::SerializeTupleVariant, serialize_field);
forward_compound!(ser::SerializeMap, serialize_value, serialize_key);

impl ser::SerializeStruct for &mut Serializer {
    type Ok = ();
    type Error = CodecError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl ser::SerializeStructVariant for &mut Serializer {
    type Ok = ();
    type Error = CodecError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

// -------------------------------------------------------------------------
// deserializer
// -------------------------------------------------------------------------

struct Deserializer<'de> {
    input: &'de [u8],
    pos: usize,
}

impl<'de> Deserializer<'de> {
    fn take(&mut self, n: usize) -> Result<&'de [u8], CodecError> {
        if self.input.len() - self.pos < n {
            return Err(CodecError::Eof);
        }
        let out = &self.input[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn get_len(&mut self) -> Result<usize, CodecError> {
        let b = self.take(8)?;
        let len = u64::from_le_bytes(b.try_into().unwrap());
        let remaining = (self.input.len() - self.pos) as u64;
        // Cheap sanity bound: a length can't exceed remaining bytes (every
        // element is at least one byte... except units; allow slack x8).
        if len > remaining.saturating_mul(8).saturating_add(64) {
            return Err(CodecError::Invalid(format!("length {len} implausible")));
        }
        Ok(len as usize)
    }

    fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }
    fn get_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
}

macro_rules! de_num {
    ($method:ident, $visit:ident, $ty:ty, $n:expr) => {
        fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
            let b = self.take($n)?;
            visitor.$visit(<$ty>::from_le_bytes(b.try_into().unwrap()))
        }
    };
}

impl<'de> de::Deserializer<'de> for &mut Deserializer<'de> {
    type Error = CodecError;

    fn deserialize_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, CodecError> {
        Err(CodecError::Message("snapshot format is not self-describing".into()))
    }

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        match self.get_u8()? {
            0 => visitor.visit_bool(false),
            1 => visitor.visit_bool(true),
            other => Err(CodecError::Invalid(format!("bool tag {other}"))),
        }
    }

    de_num!(deserialize_i8, visit_i8, i8, 1);
    de_num!(deserialize_i16, visit_i16, i16, 2);
    de_num!(deserialize_i32, visit_i32, i32, 4);
    de_num!(deserialize_i64, visit_i64, i64, 8);
    de_num!(deserialize_u16, visit_u16, u16, 2);
    de_num!(deserialize_u32, visit_u32, u32, 4);
    de_num!(deserialize_u64, visit_u64, u64, 8);

    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let v = self.get_u8()?;
        visitor.visit_u8(v)
    }

    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let b = self.take(4)?;
        visitor.visit_f32(f32::from_bits(u32::from_le_bytes(b.try_into().unwrap())))
    }
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let b = self.take(8)?;
        visitor.visit_f64(f64::from_bits(u64::from_le_bytes(b.try_into().unwrap())))
    }

    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let v = self.get_u32()?;
        let c = char::from_u32(v).ok_or_else(|| CodecError::Invalid(format!("char {v}")))?;
        visitor.visit_char(c)
    }

    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.get_len()?;
        let bytes = self.take(len)?;
        let s = std::str::from_utf8(bytes)
            .map_err(|_| CodecError::Invalid("non-UTF-8 string".into()))?;
        visitor.visit_borrowed_str(s)
    }

    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        self.deserialize_str(visitor)
    }

    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.get_len()?;
        visitor.visit_borrowed_bytes(self.take(len)?)
    }

    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        self.deserialize_bytes(visitor)
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        match self.get_u8()? {
            0 => visitor.visit_none(),
            1 => visitor.visit_some(self),
            other => Err(CodecError::Invalid(format!("option tag {other}"))),
        }
    }

    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        visitor.visit_unit()
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_unit()
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.get_len()?;
        visitor.visit_seq(Counted { de: self, remaining: len })
    }

    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_seq(Counted { de: self, remaining: len })
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        self.deserialize_tuple(len, visitor)
    }

    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.get_len()?;
        visitor.visit_map(Counted { de: self, remaining: len })
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        self.deserialize_tuple(fields.len(), visitor)
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_enum(EnumAccess { de: self })
    }

    fn deserialize_identifier<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, CodecError> {
        Err(CodecError::Message("identifiers are not encoded".into()))
    }

    fn deserialize_ignored_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, CodecError> {
        Err(CodecError::Message("cannot skip values in a non-self-describing format".into()))
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

struct Counted<'a, 'de> {
    de: &'a mut Deserializer<'de>,
    remaining: usize,
}

impl<'a, 'de> SeqAccess<'de> for Counted<'a, 'de> {
    type Error = CodecError;
    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, CodecError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }
    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

impl<'a, 'de> de::MapAccess<'de> for Counted<'a, 'de> {
    type Error = CodecError;
    fn next_key_seed<K: DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, CodecError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }
    fn next_value_seed<V: DeserializeSeed<'de>>(&mut self, seed: V) -> Result<V::Value, CodecError> {
        seed.deserialize(&mut *self.de)
    }
    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

struct EnumAccess<'a, 'de> {
    de: &'a mut Deserializer<'de>,
}

impl<'a, 'de> de::EnumAccess<'de> for EnumAccess<'a, 'de> {
    type Error = CodecError;
    type Variant = VariantAccess<'a, 'de>;
    fn variant_seed<V: DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), CodecError> {
        let idx = self.de.get_u32()?;
        let value = seed.deserialize(idx.into_deserializer())?;
        Ok((value, VariantAccess { de: self.de }))
    }
}

struct VariantAccess<'a, 'de> {
    de: &'a mut Deserializer<'de>,
}

impl<'a, 'de> de::VariantAccess<'de> for VariantAccess<'a, 'de> {
    type Error = CodecError;
    fn unit_variant(self) -> Result<(), CodecError> {
        Ok(())
    }
    fn newtype_variant_seed<T: DeserializeSeed<'de>>(self, seed: T) -> Result<T::Value, CodecError> {
        seed.deserialize(self.de)
    }
    fn tuple_variant<V: Visitor<'de>>(self, len: usize, visitor: V) -> Result<V::Value, CodecError> {
        de::Deserializer::deserialize_tuple(self.de, len, visitor)
    }
    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        de::Deserializer::deserialize_tuple(self.de, fields.len(), visitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use std::collections::BTreeMap;

    fn roundtrip<T: Serialize + for<'a> Deserialize<'a> + PartialEq + fmt::Debug>(value: T) {
        let bytes = to_bytes(&value).expect("serialize");
        let back: T = from_bytes(&bytes).expect("deserialize");
        assert_eq!(back, value);
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    struct Nested {
        name: String,
        items: Vec<(u32, bool)>,
        lookup: BTreeMap<String, u64>,
        maybe: Option<Box<Nested>>,
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    enum Shape {
        Unit,
        Newtype(u32),
        Tuple(u8, String),
        Struct { x: i64, y: Option<f64> },
    }

    #[test]
    fn primitives() {
        roundtrip(0u8);
        roundtrip(u64::MAX);
        roundtrip(-123i32);
        roundtrip(i64::MIN);
        roundtrip(true);
        roundtrip(false);
        roundtrip('\u{1F980}');
        roundtrip(3.25f32);
        roundtrip(-0.0f64);
        roundtrip(String::from("hello snapshot"));
        roundtrip(String::new());
    }

    #[test]
    fn collections() {
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<String>::new());
        roundtrip(BTreeMap::from([("a".to_string(), 1u8), ("b".to_string(), 2)]));
        roundtrip((1u8, "x".to_string(), vec![true, false]));
        roundtrip(Some(vec![Some(1u16), None]));
    }

    #[test]
    fn structs_and_enums() {
        roundtrip(Nested {
            name: "root".into(),
            items: vec![(1, true), (2, false)],
            lookup: BTreeMap::from([("k".to_string(), 9u64)]),
            maybe: Some(Box::new(Nested {
                name: "leaf".into(),
                items: vec![],
                lookup: BTreeMap::new(),
                maybe: None,
            })),
        });
        roundtrip(Shape::Unit);
        roundtrip(Shape::Newtype(7));
        roundtrip(Shape::Tuple(1, "t".into()));
        roundtrip(Shape::Struct { x: -5, y: Some(2.5) });
        roundtrip(vec![Shape::Unit, Shape::Newtype(1)]);
    }

    #[test]
    fn real_domain_types_roundtrip() {
        use crate::services::{DeviceView, TopologyView};
        use legosdn_netsim::{Endpoint, SimTime};
        use legosdn_openflow::prelude::*;

        let mut topo = TopologyView::default();
        topo.switch_up(DatapathId(1), vec![PortDesc::up(PortNo::Phys(1), MacAddr::from_index(1))]);
        topo.link_up(Endpoint::new(DatapathId(1), 1), Endpoint::new(DatapathId(2), 2));
        let bytes = to_bytes(&topo).unwrap();
        let back: TopologyView = from_bytes(&bytes).unwrap();
        assert_eq!(back, topo);

        let mut dev = DeviceView::default();
        dev.learn(
            MacAddr::from_index(3),
            Some(Ipv4Addr::from_index(3)),
            Endpoint::new(DatapathId(1), 4),
            SimTime::from_secs(9),
        );
        let bytes = to_bytes(&dev).unwrap();
        let back: DeviceView = from_bytes(&bytes).unwrap();
        assert_eq!(back, dev);
    }

    #[test]
    fn event_roundtrip() {
        use crate::event::Event;
        use legosdn_openflow::prelude::*;
        let ev = Event::PacketIn(
            DatapathId(4),
            PacketIn {
                buffer_id: BufferId(9),
                in_port: PortNo::Phys(2),
                reason: PacketInReason::NoMatch,
                packet: Packet::tcp(
                    MacAddr::from_index(1),
                    MacAddr::from_index(2),
                    Ipv4Addr::from_index(1),
                    Ipv4Addr::from_index(2),
                    123,
                    80,
                ),
            },
        );
        let bytes = to_bytes(&ev).unwrap();
        let back: Event = from_bytes(&bytes).unwrap();
        assert_eq!(back, ev);
    }

    #[test]
    fn truncated_input_errors() {
        let bytes = to_bytes(&vec![1u64, 2, 3]).unwrap();
        for cut in 0..bytes.len() {
            assert!(from_bytes::<Vec<u64>>(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_input_errors() {
        let mut bytes = to_bytes(&7u32).unwrap();
        bytes.push(0);
        assert_eq!(from_bytes::<u32>(&bytes), Err(CodecError::Trailing(1)));
    }

    #[test]
    fn bad_tags_error() {
        assert!(from_bytes::<bool>(&[7]).is_err());
        assert!(from_bytes::<Option<u8>>(&[9, 1]).is_err());
        // Absurd length prefix.
        let mut bytes = u64::MAX.to_le_bytes().to_vec();
        bytes.push(0);
        assert!(from_bytes::<String>(&bytes).is_err());
    }

    #[test]
    fn type_confusion_is_detected_or_differs() {
        // Not self-describing: decoding as the wrong type either errors or
        // yields different bytes — it must never panic.
        let bytes = to_bytes(&("abc".to_string(), 42u64)).unwrap();
        let _ = from_bytes::<Vec<u8>>(&bytes);
        let _ = from_bytes::<u64>(&bytes);
    }
}
