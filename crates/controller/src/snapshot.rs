//! Application snapshot encoding — a thin facade over [`legosdn_codec`].
//!
//! Historically this module carried its own serde-based serializer; the
//! build environment is fully offline, so the format now lives in the
//! std-only `legosdn-codec` crate (same wire format: fixed-width
//! little-endian integers, `u64` length prefixes, one-byte option/bool
//! tags, `u32` enum variant indices). This module stays as the stable
//! import path for apps and Crash-Pad: `snapshot::to_bytes` /
//! `snapshot::from_bytes` / `snapshot::CodecError`.
//!
//! The format is not self-describing: decoding must use the same types as
//! encoding.

pub use legosdn_codec::{from_bytes, to_bytes, Codec, CodecError};

#[cfg(test)]
mod tests {
    use super::*;

    // Primitive/collection/derive coverage lives in `legosdn-codec`; the
    // tests here pin the *domain* types to the wire format.

    #[test]
    fn real_domain_types_roundtrip() {
        use crate::services::{DeviceView, TopologyView};
        use legosdn_netsim::{Endpoint, SimTime};
        use legosdn_openflow::prelude::*;

        let mut topo = TopologyView::default();
        topo.switch_up(
            DatapathId(1),
            vec![PortDesc::up(PortNo::Phys(1), MacAddr::from_index(1))],
        );
        topo.link_up(
            Endpoint::new(DatapathId(1), 1),
            Endpoint::new(DatapathId(2), 2),
        );
        let bytes = to_bytes(&topo).unwrap();
        let back: TopologyView = from_bytes(&bytes).unwrap();
        assert_eq!(back, topo);

        let mut dev = DeviceView::default();
        dev.learn(
            MacAddr::from_index(3),
            Some(Ipv4Addr::from_index(3)),
            Endpoint::new(DatapathId(1), 4),
            SimTime::from_secs(9),
        );
        let bytes = to_bytes(&dev).unwrap();
        let back: DeviceView = from_bytes(&bytes).unwrap();
        assert_eq!(back, dev);
    }

    #[test]
    fn event_roundtrip() {
        use crate::event::Event;
        use legosdn_openflow::prelude::*;
        let ev = Event::PacketIn(
            DatapathId(4),
            PacketIn {
                buffer_id: BufferId(9),
                in_port: PortNo::Phys(2),
                reason: PacketInReason::NoMatch,
                packet: Packet::tcp(
                    MacAddr::from_index(1),
                    MacAddr::from_index(2),
                    Ipv4Addr::from_index(1),
                    Ipv4Addr::from_index(2),
                    123,
                    80,
                ),
            },
        );
        let bytes = to_bytes(&ev).unwrap();
        let back: Event = from_bytes(&bytes).unwrap();
        assert_eq!(back, ev);
    }

    #[test]
    fn error_api_is_preserved() {
        let mut bytes = to_bytes(&7u32).unwrap();
        bytes.push(0);
        assert_eq!(from_bytes::<u32>(&bytes), Err(CodecError::Trailing(1)));
        assert!(from_bytes::<bool>(&[7]).is_err());
    }
}
