//! Event-driven SDN controller platform.
//!
//! This crate is the stand-in for FloodLight's core (DESIGN.md §2): the app
//! interface ([`app::SdnApp`]), the controller services apps consult
//! ([`services`]), the translation pipeline from raw network events to
//! app-level [`event::Event`]s including switch handshake and LLDP link
//! discovery ([`translate`]), and the **monolithic baseline runtime**
//! ([`monolithic`]) whose fate-sharing failure mode the paper opens with:
//! one app panic kills the controller and every other app.
//!
//! The LegoSDN runtime (crate `legosdn`) reuses everything here except the
//! monolithic dispatcher, replacing it with AppVisor isolation, NetLog
//! transactions, and Crash-Pad recovery.

pub mod app;
pub mod event;
pub mod monolithic;
pub mod services;
pub mod snapshot;
pub mod translate;

pub use app::{Command, Ctx, RestoreError, SdnApp};
pub use event::{Event, EventKind};
pub use monolithic::{ControllerStats, CrashInfo, CycleReport, MonolithicController};
pub use services::{Device, DeviceView, LinkKey, TopologyView};
pub use translate::EventTranslator;
