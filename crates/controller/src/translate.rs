//! Translation from raw simulator events to controller-level [`Event`]s,
//! including the switch handshake and LLDP link discovery.
//!
//! This is the controller core the paper treats as "a common layer that is
//! highly reused" (§1): switch manager, link discovery, and device manager
//! rolled into one deterministic pipeline. Both the monolithic baseline and
//! the LegoSDN runtime drive their app dispatch from this translator, so the
//! two architectures see byte-identical event streams — the property the
//! availability experiments depend on.

use crate::event::Event;
use crate::services::{DeviceView, TopologyView};
use legosdn_netsim::{Endpoint, NetEvent, Network};
use legosdn_openflow::messages::{PacketOut, StatsRequest};
use legosdn_openflow::packet::EtherType;
use legosdn_openflow::prelude::{
    Action, BufferId, DatapathId, MacAddr, Message, Packet, PortNo, Xid,
};

/// Translates raw network events into app-facing events while maintaining
/// the controller's topology and device views.
#[derive(Debug, Default)]
pub struct EventTranslator {
    /// The switch/link view (switch manager + link discovery state).
    pub topology: TopologyView,
    /// The end-host view (device manager state).
    pub devices: DeviceView,
    next_xid: Xid,
    /// Count of translator-level protocol actions (handshakes, probes).
    pub control_messages_sent: u64,
}

impl EventTranslator {
    /// Fresh translator with empty views.
    #[must_use]
    pub fn new() -> Self {
        EventTranslator::default()
    }

    fn xid(&mut self) -> Xid {
        let x = self.next_xid;
        self.next_xid = self.next_xid.next();
        x
    }

    /// Process one raw event, updating views and producing app events.
    pub fn process(&mut self, net: &mut Network, raw: NetEvent) -> Vec<Event> {
        match raw {
            NetEvent::SwitchConnected(dpid) => self.handle_switch_connected(net, dpid),
            NetEvent::SwitchDisconnected(dpid) => self.handle_switch_disconnected(dpid),
            NetEvent::FromSwitch(dpid, msg) => self.handle_message(net, dpid, msg),
        }
    }

    fn handle_switch_connected(&mut self, net: &mut Network, dpid: DatapathId) -> Vec<Event> {
        // Handshake: features request → port inventory.
        let _ = self.xid();
        self.control_messages_sent += 1;
        let ports = match net.apply(dpid, &Message::FeaturesRequest) {
            Ok(out) => out
                .replies
                .into_iter()
                .find_map(|m| match m {
                    Message::FeaturesReply(f) => Some(f.ports),
                    _ => None,
                })
                .unwrap_or_default(),
            Err(_) => return Vec::new(),
        };
        self.topology.switch_up(dpid, ports);
        let mut events = vec![Event::SwitchUp(dpid)];
        events.extend(self.probe_switch(net, dpid));
        events
    }

    fn handle_switch_disconnected(&mut self, dpid: DatapathId) -> Vec<Event> {
        let dead = self.topology.switch_down(dpid);
        self.devices.purge_switch(dpid);
        let mut events: Vec<Event> = dead
            .into_iter()
            .map(|l| Event::LinkDown { a: l.a, b: l.b })
            .collect();
        events.push(Event::SwitchDown(dpid));
        events
    }

    fn handle_message(&mut self, net: &mut Network, dpid: DatapathId, msg: Message) -> Vec<Event> {
        match msg {
            Message::PacketIn(pi) => {
                if pi.packet.eth_type == EtherType::Lldp {
                    return self.handle_lldp(dpid, &pi.packet, pi.in_port);
                }
                // Learn the source host — but never on a port we know to be
                // an inter-switch link.
                if let Some(p) = pi.in_port.phys() {
                    let at = Endpoint::new(dpid, p);
                    if self.topology.link_at(at).is_none() {
                        self.devices
                            .learn(pi.packet.eth_src, pi.packet.ip_src, at, net.now());
                    }
                }
                vec![Event::PacketIn(dpid, pi)]
            }
            Message::PortStatus(ps) => {
                let mut events = Vec::new();
                // Keep the port inventory current.
                if let Some(ports) = self.topology.switches.get_mut(&dpid) {
                    if let Some(slot) = ports.iter_mut().find(|p| p.port_no == ps.desc.port_no) {
                        *slot = ps.desc.clone();
                    }
                }
                if let Some(p) = ps.desc.port_no.phys() {
                    let at = Endpoint::new(dpid, p);
                    if !ps.desc.is_live() {
                        if let Some(link) = self.topology.link_at(at) {
                            self.topology.link_down(link.a, link.b);
                            events.push(Event::LinkDown {
                                a: link.a,
                                b: link.b,
                            });
                        }
                    } else {
                        // Port came back: re-probe to rediscover the link.
                        events.extend(self.probe_port(net, dpid, p));
                    }
                }
                events.push(Event::PortStatus(dpid, ps));
                events
            }
            Message::FlowRemoved(fr) => vec![Event::FlowRemoved(dpid, fr)],
            Message::StatsReply(sr) => vec![Event::StatsReply(dpid, sr)],
            Message::Error(e) => vec![Event::Error(dpid, e)],
            // Handshake echoes and the like carry no app-level meaning.
            _ => Vec::new(),
        }
    }

    fn handle_lldp(&mut self, dpid: DatapathId, pkt: &Packet, in_port: PortNo) -> Vec<Event> {
        let (Some(origin_ip), Some(origin_port), Some(p)) =
            (pkt.ip_src, pkt.tp_src, in_port.phys())
        else {
            return Vec::new();
        };
        let origin = Endpoint::new(DatapathId(u64::from(origin_ip.0)), origin_port);
        let here = Endpoint::new(dpid, p);
        if self.topology.link_up(origin, here) {
            let key = crate::services::LinkKey::new(origin, here);
            // A trunk port can't host a device; forget anything mislearned.
            vec![Event::LinkUp { a: key.a, b: key.b }]
        } else {
            Vec::new()
        }
    }

    /// Send LLDP probes out every live port of `dpid`. Probes that reach a
    /// neighbor switch punt to the controller and are consumed by
    /// [`Self::process`], yielding `LinkUp` events synchronously (the
    /// simulator walks packets inline).
    pub fn probe_switch(&mut self, net: &mut Network, dpid: DatapathId) -> Vec<Event> {
        let ports: Vec<u16> = match net.switch(dpid) {
            Some(sw) => sw.live_ports().collect(),
            None => return Vec::new(),
        };
        let mut events = Vec::new();
        for p in ports {
            events.extend(self.probe_port(net, dpid, p));
        }
        events
    }

    /// Probe one port, consuming any resulting LLDP packet-ins.
    fn probe_port(&mut self, net: &mut Network, dpid: DatapathId, port: u16) -> Vec<Event> {
        let hw = net
            .switch(dpid)
            .and_then(|s| s.port(port))
            .map(|p| p.desc.hw_addr)
            .unwrap_or(MacAddr::from_index(0));
        let probe = Packet::lldp(hw, dpid.0 as u32, port);
        let po = PacketOut {
            buffer_id: BufferId::NONE,
            in_port: PortNo::None,
            actions: vec![Action::Output(PortNo::Phys(port))],
            packet: Some(probe),
        };
        self.control_messages_sent += 1;
        if net.apply(dpid, &Message::PacketOut(po)).is_err() {
            return Vec::new();
        }
        // The probe's packet-in (if the far end is a switch) is now queued;
        // consume LLDP arrivals, leaving other events untouched.
        let mut events = Vec::new();
        let pending = net.poll_events();
        for ev in pending {
            match ev {
                NetEvent::FromSwitch(d, Message::PacketIn(pi))
                    if pi.packet.eth_type == EtherType::Lldp =>
                {
                    events.extend(self.handle_lldp(d, &pi.packet, pi.in_port));
                }
                other => events.extend(self.process(net, other)),
            }
        }
        events
    }

    /// Issue a flow-stats request to a switch (helper for monitoring apps
    /// running in-process with the controller core).
    pub fn request_flow_stats(&mut self, net: &mut Network, dpid: DatapathId) -> Vec<Event> {
        self.control_messages_sent += 1;
        let req = Message::StatsRequest(StatsRequest::Flow {
            mat: legosdn_openflow::prelude::Match::any(),
            out_port: PortNo::None,
        });
        match net.apply(dpid, &req) {
            Ok(out) => out
                .replies
                .into_iter()
                .filter_map(|m| match m {
                    Message::StatsReply(sr) => Some(Event::StatsReply(dpid, sr)),
                    _ => None,
                })
                .collect(),
            Err(_) => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legosdn_netsim::Topology;

    fn boot(topo: &Topology) -> (Network, EventTranslator, Vec<Event>) {
        let mut net = Network::new(topo);
        let mut tr = EventTranslator::new();
        let mut events = Vec::new();
        let raw = net.poll_events();
        for r in raw {
            events.extend(tr.process(&mut net, r));
        }
        (net, tr, events)
    }

    #[test]
    fn handshake_registers_switches() {
        let topo = Topology::linear(3, 1);
        let (_, tr, events) = boot(&topo);
        assert_eq!(tr.topology.switches.len(), 3);
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e, Event::SwitchUp(_)))
                .count(),
            3
        );
    }

    #[test]
    fn lldp_discovers_every_link() {
        let topo = Topology::linear(4, 1);
        let (_, tr, events) = boot(&topo);
        assert_eq!(tr.topology.n_links(), 3, "all linear links discovered");
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e, Event::LinkUp { .. }))
                .count(),
            3
        );
    }

    #[test]
    fn lldp_discovers_fat_tree() {
        let topo = Topology::fat_tree(4);
        let (_, tr, _) = boot(&topo);
        assert_eq!(tr.topology.n_links(), 32);
    }

    #[test]
    fn discovered_paths_match_topology() {
        let topo = Topology::linear(4, 0);
        let (_, tr, _) = boot(&topo);
        let path = tr
            .topology
            .shortest_path(DatapathId(1), DatapathId(4))
            .unwrap();
        assert_eq!(path.len(), 3);
    }

    #[test]
    fn packet_in_learns_host_and_emits_event() {
        let topo = Topology::linear(2, 1);
        let (mut net, mut tr, _) = boot(&topo);
        let a = topo.hosts[0].clone();
        let b = topo.hosts[1].clone();
        net.inject(a.mac, Packet::ethernet(a.mac, b.mac)).unwrap();
        let mut events = Vec::new();
        for r in net.poll_events() {
            events.extend(tr.process(&mut net, r));
        }
        assert!(events.iter().any(|e| matches!(e, Event::PacketIn(..))));
        let dev = tr.devices.get(a.mac).expect("host learned");
        assert_eq!(dev.attach, a.attach);
    }

    #[test]
    fn hosts_never_learned_on_trunk_ports() {
        // Inject across switches so the second switch sees the packet on its
        // inter-switch port; the host must stay attached to the first.
        let topo = Topology::linear(2, 1);
        let (mut net, mut tr, _) = boot(&topo);
        let a = topo.hosts[0].clone();
        let b = topo.hosts[1].clone();
        // Flood everywhere so the packet reaches switch 2 via the trunk.
        for sw in topo.switches.keys() {
            let fm =
                legosdn_openflow::prelude::FlowMod::add(legosdn_openflow::prelude::Match::any())
                    .action(Action::Output(PortNo::Flood))
                    .action(Action::Output(PortNo::Controller));
            net.apply(*sw, &Message::FlowMod(fm)).unwrap();
        }
        net.inject(a.mac, Packet::ethernet(a.mac, b.mac)).unwrap();
        for r in net.poll_events() {
            tr.process(&mut net, r);
        }
        let dev = tr.devices.get(a.mac).expect("learned somewhere");
        assert_eq!(
            dev.attach, a.attach,
            "must be learned at the edge, not the trunk"
        );
    }

    #[test]
    fn switch_down_produces_linkdowns_then_switchdown() {
        let topo = Topology::linear(3, 0);
        let (mut net, mut tr, _) = boot(&topo);
        net.set_switch_up(DatapathId(2), false).unwrap();
        let mut events = Vec::new();
        for r in net.poll_events() {
            events.extend(tr.process(&mut net, r));
        }
        let downs: Vec<_> = events
            .iter()
            .filter(|e| matches!(e, Event::LinkDown { .. }))
            .collect();
        assert_eq!(downs.len(), 2, "middle switch had two links: {events:?}");
        let sd_pos = events
            .iter()
            .position(|e| matches!(e, Event::SwitchDown(_)))
            .unwrap();
        let ld_pos = events
            .iter()
            .position(|e| matches!(e, Event::LinkDown { .. }))
            .unwrap();
        assert!(ld_pos < sd_pos, "link-downs precede the switch-down");
        assert_eq!(tr.topology.n_links(), 0);
    }

    #[test]
    fn link_down_translates_via_port_status() {
        let topo = Topology::linear(2, 0);
        let (mut net, mut tr, _) = boot(&topo);
        net.set_link_up(0, false).unwrap();
        let mut events = Vec::new();
        for r in net.poll_events() {
            events.extend(tr.process(&mut net, r));
        }
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e, Event::LinkDown { .. }))
                .count(),
            1,
            "one LinkDown despite two port-status reports: {events:?}"
        );
        assert_eq!(tr.topology.n_links(), 0);
        // Restore: port-status up triggers re-probe and rediscovery.
        net.set_link_up(0, true).unwrap();
        let mut events = Vec::new();
        for r in net.poll_events() {
            events.extend(tr.process(&mut net, r));
        }
        assert!(events.iter().any(|e| matches!(e, Event::LinkUp { .. })));
        assert_eq!(tr.topology.n_links(), 1);
    }

    #[test]
    fn stats_request_helper_roundtrips() {
        let topo = Topology::linear(1, 1);
        let (mut net, mut tr, _) = boot(&topo);
        let events = tr.request_flow_stats(&mut net, DatapathId(1));
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0], Event::StatsReply(..)));
    }

    #[test]
    fn switch_reconnect_rediscovers() {
        let topo = Topology::linear(2, 0);
        let (mut net, mut tr, _) = boot(&topo);
        net.set_switch_up(DatapathId(2), false).unwrap();
        for r in net.poll_events() {
            tr.process(&mut net, r);
        }
        assert_eq!(tr.topology.n_links(), 0);
        net.set_switch_up(DatapathId(2), true).unwrap();
        let mut events = Vec::new();
        for r in net.poll_events() {
            events.extend(tr.process(&mut net, r));
        }
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::SwitchUp(d) if *d == DatapathId(2))));
        assert_eq!(
            tr.topology.n_links(),
            1,
            "link rediscovered after reconnect"
        );
    }
}
