//! The monolithic controller baseline — FloodLight's architecture, and the
//! paper's villain.
//!
//! All apps run in the controller's fault domain. An unhandled panic in any
//! app's event handler crashes the whole stack: the controller stops
//! processing events, every other app stops receiving them, and the network
//! is left with whatever (possibly partial) state the crashed app installed
//! (paper §2.1, Table 1). Recovery requires a full [`reboot`], which loses
//! all application state — exactly the behaviour LegoSDN eliminates.
//!
//! [`reboot`]: MonolithicController::reboot

use crate::app::{Command, Ctx, SdnApp};
use crate::event::Event;
use crate::translate::EventTranslator;
use legosdn_netsim::Network;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Details of an application crash.
#[derive(Clone, Debug, PartialEq)]
pub struct CrashInfo {
    /// The app that crashed.
    pub app: String,
    /// The event being processed when it crashed (the paper's assumed
    /// trigger: "the cause of an SDN-App's failure is simply the last event
    /// processed").
    pub event: Event,
    /// The captured panic payload.
    pub panic_message: String,
}

/// Counters describing a controller's life so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ControllerStats {
    /// App-facing events produced by translation.
    pub events_translated: u64,
    /// (app, event) deliveries attempted.
    pub dispatches: u64,
    /// Commands executed against the network.
    pub commands_executed: u64,
    /// Fatal crashes (monolithic: at most 1 per boot).
    pub crashes: u64,
    /// Events that arrived while the controller was dead.
    pub events_lost_while_down: u64,
    /// Controller reboots.
    pub reboots: u64,
}

/// Report of one [`MonolithicController::run_cycle`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CycleReport {
    /// App events dispatched this cycle.
    pub events: usize,
    /// Commands executed this cycle.
    pub commands: usize,
    /// The crash that ended the cycle, if any.
    pub crash: Option<CrashInfo>,
}

struct AppSlot {
    app: Box<dyn SdnApp>,
    /// State at attach time; a reboot restores this (apps lose everything).
    initial_snapshot: Vec<u8>,
}

/// The monolithic (fate-sharing) controller.
pub struct MonolithicController {
    translator: EventTranslator,
    apps: Vec<AppSlot>,
    crashed: Option<CrashInfo>,
    stats: ControllerStats,
}

impl Default for MonolithicController {
    fn default() -> Self {
        Self::new()
    }
}

impl MonolithicController {
    /// An empty controller.
    #[must_use]
    pub fn new() -> Self {
        MonolithicController {
            translator: EventTranslator::new(),
            apps: Vec::new(),
            crashed: None,
            stats: ControllerStats::default(),
        }
    }

    /// Attach an application. Its current state is recorded as the
    /// post-reboot state.
    pub fn attach(&mut self, app: Box<dyn SdnApp>) {
        let initial_snapshot = app.snapshot();
        self.apps.push(AppSlot {
            app,
            initial_snapshot,
        });
    }

    /// Names of attached apps.
    #[must_use]
    pub fn app_names(&self) -> Vec<String> {
        self.apps.iter().map(|s| s.app.name().to_string()).collect()
    }

    /// Is the stack dead?
    #[must_use]
    pub fn is_crashed(&self) -> bool {
        self.crashed.is_some()
    }

    /// The crash that killed the stack, if any.
    #[must_use]
    pub fn crash_info(&self) -> Option<&CrashInfo> {
        self.crashed.as_ref()
    }

    /// Lifetime counters.
    #[must_use]
    pub fn stats(&self) -> ControllerStats {
        self.stats
    }

    /// The controller core's topology/device views.
    #[must_use]
    pub fn translator(&self) -> &EventTranslator {
        &self.translator
    }

    /// Drain network events, translate, and dispatch to apps.
    ///
    /// If any app panics, the cycle aborts immediately: remaining events are
    /// lost, the controller is dead until [`Self::reboot`] — the fate-sharing
    /// relationship under study.
    pub fn run_cycle(&mut self, net: &mut Network) -> CycleReport {
        let mut report = CycleReport::default();
        let raw = net.poll_events();
        if self.crashed.is_some() {
            self.stats.events_lost_while_down += raw.len() as u64;
            return report;
        }
        for r in raw {
            if self.crashed.is_some() {
                self.stats.events_lost_while_down += 1;
                continue;
            }
            let events = self.translator.process(net, r);
            self.stats.events_translated += events.len() as u64;
            for ev in events {
                if self.crashed.is_some() {
                    self.stats.events_lost_while_down += 1;
                    continue;
                }
                report.events += 1;
                if let Err(crash) = self.dispatch(net, &ev, &mut report) {
                    self.stats.crashes += 1;
                    self.crashed = Some(*crash.clone());
                    report.crash = Some(*crash);
                }
            }
        }
        report
    }

    /// Deliver a Tick to subscribed apps (periodic app timers).
    pub fn tick_apps(&mut self, net: &mut Network) -> CycleReport {
        let mut report = CycleReport::default();
        if self.crashed.is_some() {
            return report;
        }
        let ev = Event::Tick(net.now());
        report.events += 1;
        if let Err(crash) = self.dispatch(net, &ev, &mut report) {
            self.stats.crashes += 1;
            self.crashed = Some(*crash.clone());
            report.crash = Some(*crash);
        }
        report
    }

    fn dispatch(
        &mut self,
        net: &mut Network,
        event: &Event,
        report: &mut CycleReport,
    ) -> Result<(), Box<CrashInfo>> {
        let kind = event.kind();
        for slot in &mut self.apps {
            if !slot.app.subscriptions().contains(&kind) {
                continue;
            }
            self.stats.dispatches += 1;
            let mut ctx = Ctx::new(
                net.now(),
                &self.translator.topology,
                &self.translator.devices,
            );
            let result = catch_unwind(AssertUnwindSafe(|| {
                slot.app.on_event(event, &mut ctx);
            }));
            match result {
                Ok(()) => {
                    let commands = ctx.into_commands();
                    report.commands += commands.len();
                    execute(net, &commands, &mut self.stats);
                }
                Err(payload) => {
                    // Fate-sharing: the panic unwinds the shared process.
                    // Commands from the partially-executed handler are
                    // *already sent* in FloodLight (no buffering); our Ctx
                    // buffers them, and the monolithic baseline mimics
                    // FloodLight by sending what was queued before the
                    // crash point.
                    let commands = ctx.into_commands();
                    report.commands += commands.len();
                    execute(net, &commands, &mut self.stats);
                    return Err(Box::new(CrashInfo {
                        app: slot.app.name().to_string(),
                        event: event.clone(),
                        panic_message: panic_text(&*payload),
                    }));
                }
            }
        }
        Ok(())
    }

    /// Reboot the stack: apps revert to attach-time state, the controller
    /// core forgets everything, and the crash flag clears. Models the
    /// "controller upgrade / restart" cost of the monolithic design.
    pub fn reboot(&mut self) {
        for slot in &mut self.apps {
            // Restore is best-effort: an app whose snapshot no longer
            // restores stays at whatever state it had (it will be
            // re-driven by fresh events).
            let _ = slot.app.restore(&slot.initial_snapshot);
        }
        self.translator = EventTranslator::new();
        self.crashed = None;
        self.stats.reboots += 1;
    }
}

fn execute(net: &mut Network, commands: &[Command], stats: &mut ControllerStats) {
    for c in commands {
        stats.commands_executed += 1;
        let _ = net.apply(c.dpid, &c.msg);
    }
}

/// Render a panic payload as text (panics carry `String` or `&str`).
#[must_use]
pub fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::RestoreError;
    use crate::event::EventKind;
    use legosdn_netsim::Topology;
    use legosdn_openflow::prelude::*;

    /// Floods every packet-in; crashes when it sees a packet to a poisoned
    /// destination.
    struct CrashyFlooder {
        poison: Option<MacAddr>,
        handled: u32,
    }

    impl SdnApp for CrashyFlooder {
        fn name(&self) -> &str {
            "crashy-flooder"
        }
        fn subscriptions(&self) -> Vec<EventKind> {
            vec![EventKind::PacketIn]
        }
        fn on_event(&mut self, event: &Event, ctx: &mut Ctx<'_>) {
            let Event::PacketIn(dpid, pi) = event else {
                return;
            };
            if Some(pi.packet.eth_dst) == self.poison {
                panic!("poisoned destination");
            }
            self.handled += 1;
            let packet = if pi.buffer_id.is_some() {
                None
            } else {
                Some(pi.packet.clone())
            };
            ctx.send(
                *dpid,
                Message::PacketOut(PacketOut {
                    buffer_id: pi.buffer_id,
                    in_port: pi.in_port,
                    actions: vec![Action::Output(PortNo::Flood)],
                    packet,
                }),
            );
        }
        fn snapshot(&self) -> Vec<u8> {
            self.handled.to_be_bytes().to_vec()
        }
        fn restore(&mut self, bytes: &[u8]) -> Result<(), RestoreError> {
            self.handled =
                u32::from_be_bytes(bytes.try_into().map_err(|_| RestoreError("len".into()))?);
            Ok(())
        }
    }

    /// Counts every event it sees; never crashes.
    struct Counter {
        count: u32,
    }

    impl SdnApp for Counter {
        fn name(&self) -> &str {
            "counter"
        }
        fn subscriptions(&self) -> Vec<EventKind> {
            EventKind::ALL.to_vec()
        }
        fn on_event(&mut self, _event: &Event, _ctx: &mut Ctx<'_>) {
            self.count += 1;
        }
        fn snapshot(&self) -> Vec<u8> {
            self.count.to_be_bytes().to_vec()
        }
        fn restore(&mut self, bytes: &[u8]) -> Result<(), RestoreError> {
            self.count =
                u32::from_be_bytes(bytes.try_into().map_err(|_| RestoreError("len".into()))?);
            Ok(())
        }
    }

    fn setup(poison: Option<MacAddr>) -> (Network, MonolithicController, Topology) {
        let topo = Topology::linear(2, 1);
        let net = Network::new(&topo);
        let mut ctl = MonolithicController::new();
        ctl.attach(Box::new(CrashyFlooder { poison, handled: 0 }));
        ctl.attach(Box::new(Counter { count: 0 }));
        (net, ctl, topo)
    }

    #[test]
    fn healthy_cycle_floods_packets() {
        let (mut net, mut ctl, topo) = setup(None);
        ctl.run_cycle(&mut net); // handshake
        let a = topo.hosts[0].mac;
        let b = topo.hosts[1].mac;
        net.inject(a, Packet::ethernet(a, b)).unwrap();
        let report = ctl.run_cycle(&mut net);
        assert!(report.crash.is_none());
        assert!(report.commands >= 1);
        assert!(!ctl.is_crashed());
    }

    #[test]
    fn app_panic_kills_the_whole_stack() {
        let (mut net, mut ctl, topo) = setup(Some(topo_host(1)));
        fn topo_host(_i: usize) -> MacAddr {
            MacAddr::from_index(2)
        }
        ctl.run_cycle(&mut net);
        let a = topo.hosts[0].mac;
        let b = topo.hosts[1].mac; // MacAddr::from_index(2) == poison
        net.inject(a, Packet::ethernet(a, b)).unwrap();
        let report = ctl.run_cycle(&mut net);
        let crash = report.crash.expect("must crash");
        assert_eq!(crash.app, "crashy-flooder");
        assert!(
            crash.panic_message.contains("poisoned"),
            "got: {:?}",
            crash.panic_message
        );
        assert!(ctl.is_crashed());
        // Subsequent events are lost — the fate-sharing cost.
        net.inject(a, Packet::ethernet(a, MacAddr::from_index(9)))
            .unwrap();
        let report = ctl.run_cycle(&mut net);
        assert_eq!(report.events, 0);
        assert!(ctl.stats().events_lost_while_down > 0);
    }

    #[test]
    fn crash_starves_innocent_apps() {
        let (mut net, mut ctl, topo) = setup(Some(MacAddr::from_index(2)));
        ctl.run_cycle(&mut net);
        let baseline = ctl.stats().dispatches;
        let a = topo.hosts[0].mac;
        net.inject(a, Packet::ethernet(a, MacAddr::from_index(2)))
            .unwrap();
        ctl.run_cycle(&mut net);
        let after_crash = ctl.stats().dispatches;
        // The crashing app was dispatched; the counter app (attached after)
        // never saw the event.
        assert_eq!(after_crash - baseline, 1);
    }

    #[test]
    fn reboot_revives_but_amnesiac() {
        let (mut net, mut ctl, topo) = setup(Some(MacAddr::from_index(2)));
        ctl.run_cycle(&mut net);
        assert!(ctl.translator().topology.n_links() > 0);
        let a = topo.hosts[0].mac;
        net.inject(a, Packet::ethernet(a, MacAddr::from_index(2)))
            .unwrap();
        ctl.run_cycle(&mut net);
        assert!(ctl.is_crashed());
        ctl.reboot();
        assert!(!ctl.is_crashed());
        assert_eq!(ctl.stats().reboots, 1);
        // Controller core forgot the topology — must rediscover.
        assert_eq!(ctl.translator().topology.n_links(), 0);
        // And it still works for non-poisoned traffic.
        net.inject(a, Packet::ethernet(a, MacAddr::from_index(9)))
            .unwrap();
        let report = ctl.run_cycle(&mut net);
        assert!(report.crash.is_none());
        assert!(report.events > 0);
    }

    #[test]
    fn tick_reaches_subscribers() {
        let (mut net, mut ctl, _) = setup(None);
        ctl.run_cycle(&mut net);
        let before = ctl.stats().dispatches;
        let report = ctl.tick_apps(&mut net);
        assert_eq!(report.events, 1);
        // Only the counter subscribes to Tick.
        assert_eq!(ctl.stats().dispatches - before, 1);
    }

    #[test]
    fn stats_track_commands() {
        let (mut net, mut ctl, topo) = setup(None);
        ctl.run_cycle(&mut net);
        let a = topo.hosts[0].mac;
        net.inject(a, Packet::ethernet(a, topo.hosts[1].mac))
            .unwrap();
        ctl.run_cycle(&mut net);
        assert!(ctl.stats().commands_executed >= 1);
        assert!(ctl.stats().events_translated >= 1);
    }

    #[test]
    fn app_names_are_listed() {
        let (_, ctl, _) = setup(None);
        assert_eq!(
            ctl.app_names(),
            vec!["crashy-flooder".to_string(), "counter".to_string()]
        );
    }
}
