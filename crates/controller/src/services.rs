//! Core controller services: the switch/link topology view and the end-host
//! (device) view.
//!
//! These are the FloodLight-style services apps consult (switch manager,
//! link discovery, device manager). They are plain serializable data so the
//! AppVisor stub can reconstruct them for an isolated app from RPC bytes.

use legosdn_codec::Codec;
use legosdn_netsim::{Endpoint, SimTime};
use legosdn_openflow::messages::PortDesc;
use legosdn_openflow::prelude::{DatapathId, Ipv4Addr, MacAddr};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A normalized (smaller endpoint first) inter-switch link.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Codec)]
pub struct LinkKey {
    pub a: Endpoint,
    pub b: Endpoint,
}

impl LinkKey {
    /// Normalize endpoint order so each physical link has one key.
    #[must_use]
    pub fn new(x: Endpoint, y: Endpoint) -> Self {
        if (x.dpid, x.port) <= (y.dpid, y.port) {
            LinkKey { a: x, b: y }
        } else {
            LinkKey { a: y, b: x }
        }
    }

    /// Does this link touch `dpid`?
    #[must_use]
    pub fn touches(&self, dpid: DatapathId) -> bool {
        self.a.dpid == dpid || self.b.dpid == dpid
    }

    /// The endpoint on `dpid`, if any.
    #[must_use]
    pub fn endpoint_on(&self, dpid: DatapathId) -> Option<Endpoint> {
        if self.a.dpid == dpid {
            Some(self.a)
        } else if self.b.dpid == dpid {
            Some(self.b)
        } else {
            None
        }
    }
}

/// The controller's view of switches and inter-switch links.
#[derive(Clone, Debug, Default, PartialEq, Codec)]
pub struct TopologyView {
    /// Connected switches and their last-reported port descriptors.
    pub switches: BTreeMap<DatapathId, Vec<PortDesc>>,
    /// Discovered links.
    pub links: BTreeSet<LinkKey>,
    /// Links each switch carried when it was last seen alive. Consulted by
    /// Crash-Pad's equivalence transform: by the time a `SwitchDown` event
    /// is dispatched, the live link set no longer contains the dead
    /// switch's links.
    graveyard: BTreeMap<DatapathId, Vec<LinkKey>>,
}

impl TopologyView {
    /// Register (or refresh) a switch.
    pub fn switch_up(&mut self, dpid: DatapathId, ports: Vec<PortDesc>) {
        self.switches.insert(dpid, ports);
    }

    /// Remove a switch; returns the links that died with it. The dead
    /// links are remembered (see [`Self::last_known_links`]).
    pub fn switch_down(&mut self, dpid: DatapathId) -> Vec<LinkKey> {
        self.switches.remove(&dpid);
        let dead: Vec<LinkKey> = self
            .links
            .iter()
            .filter(|l| l.touches(dpid))
            .copied()
            .collect();
        for l in &dead {
            self.links.remove(l);
        }
        self.graveyard.insert(dpid, dead.clone());
        dead
    }

    /// The links a switch carries now — or, if it just went down, the
    /// links it carried when last alive.
    #[must_use]
    pub fn last_known_links(&self, dpid: DatapathId) -> Vec<LinkKey> {
        let live = self.links_of(dpid);
        if !live.is_empty() {
            return live;
        }
        self.graveyard.get(&dpid).cloned().unwrap_or_default()
    }

    /// Record a discovered link. Returns true if it was new.
    pub fn link_up(&mut self, x: Endpoint, y: Endpoint) -> bool {
        self.links.insert(LinkKey::new(x, y))
    }

    /// Remove a link. Returns true if it was present.
    pub fn link_down(&mut self, x: Endpoint, y: Endpoint) -> bool {
        self.links.remove(&LinkKey::new(x, y))
    }

    /// Is the switch known?
    #[must_use]
    pub fn has_switch(&self, dpid: DatapathId) -> bool {
        self.switches.contains_key(&dpid)
    }

    /// The link (if any) with an endpoint at `(dpid, port)`.
    #[must_use]
    pub fn link_at(&self, at: Endpoint) -> Option<LinkKey> {
        self.links.iter().find(|l| l.a == at || l.b == at).copied()
    }

    /// Links touching a switch.
    #[must_use]
    pub fn links_of(&self, dpid: DatapathId) -> Vec<LinkKey> {
        self.links
            .iter()
            .filter(|l| l.touches(dpid))
            .copied()
            .collect()
    }

    /// Neighbors of a switch: `(out_port, neighbor_dpid, neighbor_in_port)`.
    #[must_use]
    pub fn neighbors(&self, dpid: DatapathId) -> Vec<(u16, Endpoint)> {
        let mut out = Vec::new();
        for l in &self.links {
            if l.a.dpid == dpid {
                out.push((l.a.port, l.b));
            } else if l.b.dpid == dpid {
                out.push((l.b.port, l.a));
            }
        }
        out
    }

    /// BFS shortest switch-path from `src` to `dst`.
    ///
    /// Returns the hops as `(switch, out_port)` pairs: forwarding a packet
    /// at each listed switch out the listed port walks it to `dst`. Empty
    /// path when `src == dst`.
    #[must_use]
    pub fn shortest_path(
        &self,
        src: DatapathId,
        dst: DatapathId,
    ) -> Option<Vec<(DatapathId, u16)>> {
        if !self.has_switch(src) || !self.has_switch(dst) {
            return None;
        }
        if src == dst {
            return Some(Vec::new());
        }
        let mut prev: BTreeMap<DatapathId, (DatapathId, u16)> = BTreeMap::new();
        let mut queue = VecDeque::new();
        queue.push_back(src);
        'bfs: while let Some(cur) = queue.pop_front() {
            for (out_port, peer) in self.neighbors(cur) {
                if peer.dpid == src || prev.contains_key(&peer.dpid) {
                    continue;
                }
                prev.insert(peer.dpid, (cur, out_port));
                if peer.dpid == dst {
                    break 'bfs;
                }
                queue.push_back(peer.dpid);
            }
        }
        if !prev.contains_key(&dst) {
            return None;
        }
        let mut path = Vec::new();
        let mut cur = dst;
        while cur != src {
            let (p, port) = prev[&cur];
            path.push((p, port));
            cur = p;
        }
        path.reverse();
        Some(path)
    }

    /// Number of known links.
    #[must_use]
    pub fn n_links(&self) -> usize {
        self.links.len()
    }
}

/// A known end host.
#[derive(Clone, Debug, PartialEq, Eq, Codec)]
pub struct Device {
    pub mac: MacAddr,
    pub ip: Option<Ipv4Addr>,
    pub attach: Endpoint,
    pub last_seen: SimTime,
}

/// The controller's view of end hosts, learned from packet-ins.
#[derive(Clone, Debug, Default, PartialEq, Codec)]
pub struct DeviceView {
    devices: BTreeMap<MacAddr, Device>,
}

impl DeviceView {
    /// Learn (or refresh) a host from an observed packet.
    pub fn learn(&mut self, mac: MacAddr, ip: Option<Ipv4Addr>, attach: Endpoint, now: SimTime) {
        if mac.is_multicast() {
            return;
        }
        let dev = self.devices.entry(mac).or_insert(Device {
            mac,
            ip,
            attach,
            last_seen: now,
        });
        dev.attach = attach;
        dev.last_seen = now;
        if ip.is_some() {
            dev.ip = ip;
        }
    }

    /// Look up a host.
    #[must_use]
    pub fn get(&self, mac: MacAddr) -> Option<&Device> {
        self.devices.get(&mac)
    }

    /// Look up a host by IP.
    #[must_use]
    pub fn by_ip(&self, ip: Ipv4Addr) -> Option<&Device> {
        self.devices.values().find(|d| d.ip == Some(ip))
    }

    /// Forget every host attached to `dpid` (switch died).
    pub fn purge_switch(&mut self, dpid: DatapathId) {
        self.devices.retain(|_, d| d.attach.dpid != dpid);
    }

    /// Number of known hosts.
    #[must_use]
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// True when no hosts are known.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Iterate over known devices.
    pub fn iter(&self) -> impl Iterator<Item = &Device> {
        self.devices.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ep(d: u64, p: u16) -> Endpoint {
        Endpoint::new(DatapathId(d), p)
    }

    fn line3() -> TopologyView {
        // 1 -(p1:p1)- 2 -(p2:p1)- 3
        let mut t = TopologyView::default();
        for d in 1..=3 {
            t.switch_up(DatapathId(d), vec![]);
        }
        t.link_up(ep(1, 1), ep(2, 1));
        t.link_up(ep(2, 2), ep(3, 1));
        t
    }

    #[test]
    fn link_key_normalizes() {
        assert_eq!(
            LinkKey::new(ep(2, 1), ep(1, 1)),
            LinkKey::new(ep(1, 1), ep(2, 1))
        );
        let k = LinkKey::new(ep(2, 1), ep(1, 1));
        assert_eq!(k.a, ep(1, 1));
        assert!(k.touches(DatapathId(2)));
        assert!(!k.touches(DatapathId(3)));
        assert_eq!(k.endpoint_on(DatapathId(2)), Some(ep(2, 1)));
    }

    #[test]
    fn duplicate_links_dedupe() {
        let mut t = TopologyView::default();
        assert!(t.link_up(ep(1, 1), ep(2, 1)));
        assert!(!t.link_up(ep(2, 1), ep(1, 1)));
        assert_eq!(t.n_links(), 1);
    }

    #[test]
    fn shortest_path_line() {
        let t = line3();
        let path = t.shortest_path(DatapathId(1), DatapathId(3)).unwrap();
        assert_eq!(path, vec![(DatapathId(1), 1), (DatapathId(2), 2)]);
        assert_eq!(
            t.shortest_path(DatapathId(1), DatapathId(1)).unwrap(),
            vec![]
        );
    }

    #[test]
    fn shortest_path_prefers_fewer_hops() {
        // Triangle: 1-2, 2-3, 1-3. Path 1→3 must be direct.
        let mut t = line3();
        t.link_up(ep(1, 2), ep(3, 2));
        let path = t.shortest_path(DatapathId(1), DatapathId(3)).unwrap();
        assert_eq!(path.len(), 1);
        assert_eq!(path[0], (DatapathId(1), 2));
    }

    #[test]
    fn shortest_path_unreachable() {
        let mut t = line3();
        t.switch_up(DatapathId(9), vec![]);
        assert_eq!(t.shortest_path(DatapathId(1), DatapathId(9)), None);
        assert_eq!(t.shortest_path(DatapathId(1), DatapathId(42)), None);
    }

    #[test]
    fn switch_down_kills_its_links() {
        let mut t = line3();
        let dead = t.switch_down(DatapathId(2));
        assert_eq!(dead.len(), 2);
        assert_eq!(t.n_links(), 0);
        assert!(!t.has_switch(DatapathId(2)));
        assert_eq!(t.shortest_path(DatapathId(1), DatapathId(3)), None);
    }

    #[test]
    fn link_at_and_neighbors() {
        let t = line3();
        assert!(t.link_at(ep(2, 1)).is_some());
        assert!(t.link_at(ep(2, 9)).is_none());
        let mut n = t.neighbors(DatapathId(2));
        n.sort_unstable_by_key(|(p, _)| *p);
        assert_eq!(n, vec![(1, ep(1, 1)), (2, ep(3, 1))]);
    }

    #[test]
    fn device_learning_updates_attachment() {
        let mut d = DeviceView::default();
        let mac = MacAddr::from_index(1);
        d.learn(mac, Some(Ipv4Addr::from_index(1)), ep(1, 3), SimTime::ZERO);
        assert_eq!(d.get(mac).unwrap().attach, ep(1, 3));
        // Host moves.
        d.learn(mac, None, ep(2, 4), SimTime::from_secs(5));
        let dev = d.get(mac).unwrap();
        assert_eq!(dev.attach, ep(2, 4));
        assert_eq!(
            dev.ip,
            Some(Ipv4Addr::from_index(1)),
            "IP survives a None refresh"
        );
        assert_eq!(dev.last_seen, SimTime::from_secs(5));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn multicast_sources_are_not_learned() {
        let mut d = DeviceView::default();
        d.learn(MacAddr::BROADCAST, None, ep(1, 1), SimTime::ZERO);
        assert!(d.is_empty());
    }

    #[test]
    fn by_ip_and_purge() {
        let mut d = DeviceView::default();
        d.learn(
            MacAddr::from_index(1),
            Some(Ipv4Addr::from_index(1)),
            ep(1, 3),
            SimTime::ZERO,
        );
        d.learn(
            MacAddr::from_index(2),
            Some(Ipv4Addr::from_index(2)),
            ep(2, 3),
            SimTime::ZERO,
        );
        assert_eq!(
            d.by_ip(Ipv4Addr::from_index(2)).unwrap().mac,
            MacAddr::from_index(2)
        );
        d.purge_switch(DatapathId(1));
        assert_eq!(d.len(), 1);
        assert!(d.get(MacAddr::from_index(1)).is_none());
    }
}
