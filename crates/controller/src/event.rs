//! The controller-level event vocabulary delivered to SDN applications.
//!
//! Raw `NetEvent`s from the simulator are translated (by
//! [`crate::translate::EventTranslator`]) into these higher-level events —
//! the same vocabulary FloodLight exposes to its modules. Crash-Pad's
//! *Equivalence Compromise* (paper §3.3) rewrites events in this vocabulary:
//! a `SwitchDown` becomes a series of `LinkDown`s and vice versa.

use legosdn_codec::Codec;
use legosdn_netsim::Endpoint;
use legosdn_netsim::SimTime;
use legosdn_openflow::messages::{ErrorMsg, FlowRemoved, PacketIn, PortStatus, StatsReply};
use legosdn_openflow::prelude::DatapathId;

/// An event delivered to SDN applications.
#[derive(Clone, Debug, PartialEq, Codec)]
pub enum Event {
    /// A switch joined the control plane (handshake complete).
    SwitchUp(DatapathId),
    /// A switch left the control plane.
    SwitchDown(DatapathId),
    /// An inter-switch link was discovered or came back.
    LinkUp { a: Endpoint, b: Endpoint },
    /// An inter-switch link failed.
    LinkDown { a: Endpoint, b: Endpoint },
    /// A port changed state (admin or physical).
    PortStatus(DatapathId, PortStatus),
    /// A packet was punted to the controller.
    PacketIn(DatapathId, PacketIn),
    /// A flow expired or was deleted with notification.
    FlowRemoved(DatapathId, FlowRemoved),
    /// A statistics reply arrived.
    StatsReply(DatapathId, StatsReply),
    /// The switch reported a protocol error.
    Error(DatapathId, ErrorMsg),
    /// A periodic timer tick (virtual time).
    Tick(SimTime),
}

/// Event kind, the subscription and policy-language key.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Codec)]
pub enum EventKind {
    SwitchUp,
    SwitchDown,
    LinkUp,
    LinkDown,
    PortStatus,
    PacketIn,
    FlowRemoved,
    StatsReply,
    Error,
    Tick,
}

impl EventKind {
    /// Every kind.
    pub const ALL: [EventKind; 10] = [
        EventKind::SwitchUp,
        EventKind::SwitchDown,
        EventKind::LinkUp,
        EventKind::LinkDown,
        EventKind::PortStatus,
        EventKind::PacketIn,
        EventKind::FlowRemoved,
        EventKind::StatsReply,
        EventKind::Error,
        EventKind::Tick,
    ];
}

impl Event {
    /// The kind discriminant.
    #[must_use]
    pub fn kind(&self) -> EventKind {
        match self {
            Event::SwitchUp(_) => EventKind::SwitchUp,
            Event::SwitchDown(_) => EventKind::SwitchDown,
            Event::LinkUp { .. } => EventKind::LinkUp,
            Event::LinkDown { .. } => EventKind::LinkDown,
            Event::PortStatus(..) => EventKind::PortStatus,
            Event::PacketIn(..) => EventKind::PacketIn,
            Event::FlowRemoved(..) => EventKind::FlowRemoved,
            Event::StatsReply(..) => EventKind::StatsReply,
            Event::Error(..) => EventKind::Error,
            Event::Tick(_) => EventKind::Tick,
        }
    }

    /// The switch this event concerns, if it concerns exactly one.
    #[must_use]
    pub fn dpid(&self) -> Option<DatapathId> {
        match self {
            Event::SwitchUp(d) | Event::SwitchDown(d) => Some(*d),
            Event::PortStatus(d, _)
            | Event::PacketIn(d, _)
            | Event::FlowRemoved(d, _)
            | Event::StatsReply(d, _)
            | Event::Error(d, _) => Some(*d),
            Event::LinkUp { .. } | Event::LinkDown { .. } | Event::Tick(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable() {
        assert_eq!(Event::SwitchUp(DatapathId(1)).kind(), EventKind::SwitchUp);
        assert_eq!(Event::Tick(SimTime::ZERO).kind(), EventKind::Tick);
        let a = Endpoint::new(DatapathId(1), 1);
        let b = Endpoint::new(DatapathId(2), 1);
        assert_eq!(Event::LinkDown { a, b }.kind(), EventKind::LinkDown);
    }

    #[test]
    fn dpid_extraction() {
        assert_eq!(Event::SwitchDown(DatapathId(7)).dpid(), Some(DatapathId(7)));
        assert_eq!(Event::Tick(SimTime::ZERO).dpid(), None);
        let a = Endpoint::new(DatapathId(1), 1);
        let b = Endpoint::new(DatapathId(2), 1);
        assert_eq!(Event::LinkUp { a, b }.dpid(), None);
    }

    #[test]
    fn all_kinds_distinct() {
        let mut v = EventKind::ALL.to_vec();
        v.sort();
        v.dedup();
        assert_eq!(v.len(), 10);
    }
}
