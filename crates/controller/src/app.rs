//! The SDN application interface.
//!
//! Applications are event-driven: they subscribe to [`EventKind`]s, receive
//! [`Event`]s with a context exposing the controller's services, and emit
//! [`Command`]s (OpenFlow messages toward switches).
//!
//! For LegoSDN, two aspects of the trait are load-bearing:
//!
//! - `snapshot`/`restore` give Crash-Pad its checkpoint primitive — the
//!   stand-in for CRIU in the paper's prototype (DESIGN.md §2). Apps
//!   serialize their *entire* state; restoring the bytes must reproduce the
//!   exact pre-event state.
//! - `on_event` is allowed to panic. A panic is the fail-stop crash the
//!   whole system is designed around; who it kills depends on the runtime
//!   (the monolithic baseline dies with the app, AppVisor contains it).

use crate::event::{Event, EventKind};
use crate::services::{DeviceView, TopologyView};
use legosdn_codec::Codec;
use legosdn_netsim::SimTime;
use legosdn_openflow::prelude::{DatapathId, Message};
use std::fmt;

/// A command an app asks the controller to execute.
#[derive(Clone, Debug, PartialEq, Codec)]
pub struct Command {
    pub dpid: DatapathId,
    pub msg: Message,
}

/// Error restoring an app snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RestoreError(pub String);

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "snapshot restore failed: {}", self.0)
    }
}

impl std::error::Error for RestoreError {}

/// The context handed to an app for one event: read access to controller
/// services, write access to a command buffer.
///
/// The context is plain serializable data plus a buffer, so it can be
/// reconstructed on the far side of the AppVisor RPC for isolated apps.
#[derive(Debug)]
pub struct Ctx<'a> {
    /// Virtual time at dispatch.
    pub now: SimTime,
    /// The controller's view of switches and links.
    pub topology: &'a TopologyView,
    /// The controller's view of end hosts.
    pub devices: &'a DeviceView,
    commands: Vec<Command>,
}

impl<'a> Ctx<'a> {
    /// Build a context for one dispatch.
    #[must_use]
    pub fn new(now: SimTime, topology: &'a TopologyView, devices: &'a DeviceView) -> Self {
        Ctx {
            now,
            topology,
            devices,
            commands: Vec::new(),
        }
    }

    /// Queue an OpenFlow message toward a switch.
    pub fn send(&mut self, dpid: DatapathId, msg: Message) {
        self.commands.push(Command { dpid, msg });
    }

    /// Commands queued so far.
    #[must_use]
    pub fn commands(&self) -> &[Command] {
        &self.commands
    }

    /// Consume the context, yielding the queued commands.
    #[must_use]
    pub fn into_commands(self) -> Vec<Command> {
        self.commands
    }
}

/// An SDN application.
pub trait SdnApp: Send {
    /// Unique application name (used for registration, policies, tickets).
    fn name(&self) -> &str;

    /// Event kinds this app wants delivered.
    fn subscriptions(&self) -> Vec<EventKind>;

    /// Handle one event. May send commands through `ctx`. May panic — a
    /// panic models a fail-stop application bug.
    fn on_event(&mut self, event: &Event, ctx: &mut Ctx<'_>);

    /// Serialize the app's complete state.
    fn snapshot(&self) -> Vec<u8>;

    /// Restore state from a previous [`SdnApp::snapshot`].
    fn restore(&mut self, bytes: &[u8]) -> Result<(), RestoreError>;
}

/// Blanket helper: does the app subscribe to this event?
#[must_use]
pub fn subscribes(app: &dyn SdnApp, event: &Event) -> bool {
    app.subscriptions().contains(&event.kind())
}

#[cfg(test)]
mod tests {
    use super::*;
    use legosdn_openflow::prelude::{FlowMod, Match};

    struct Probe {
        seen: u32,
    }

    impl SdnApp for Probe {
        fn name(&self) -> &str {
            "probe"
        }
        fn subscriptions(&self) -> Vec<EventKind> {
            vec![EventKind::PacketIn, EventKind::SwitchUp]
        }
        fn on_event(&mut self, _event: &Event, ctx: &mut Ctx<'_>) {
            self.seen += 1;
            ctx.send(DatapathId(1), Message::FlowMod(FlowMod::add(Match::any())));
        }
        fn snapshot(&self) -> Vec<u8> {
            self.seen.to_be_bytes().to_vec()
        }
        fn restore(&mut self, bytes: &[u8]) -> Result<(), RestoreError> {
            let arr: [u8; 4] = bytes
                .try_into()
                .map_err(|_| RestoreError("bad length".into()))?;
            self.seen = u32::from_be_bytes(arr);
            Ok(())
        }
    }

    #[test]
    fn ctx_buffers_commands() {
        let topo = TopologyView::default();
        let dev = DeviceView::default();
        let mut ctx = Ctx::new(SimTime::ZERO, &topo, &dev);
        let mut app = Probe { seen: 0 };
        app.on_event(&Event::SwitchUp(DatapathId(1)), &mut ctx);
        assert_eq!(ctx.commands().len(), 1);
        let cmds = ctx.into_commands();
        assert_eq!(cmds[0].dpid, DatapathId(1));
    }

    #[test]
    fn subscribes_filters_by_kind() {
        let app = Probe { seen: 0 };
        assert!(subscribes(&app, &Event::SwitchUp(DatapathId(1))));
        assert!(!subscribes(&app, &Event::SwitchDown(DatapathId(1))));
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut app = Probe { seen: 42 };
        let snap = app.snapshot();
        app.seen = 0;
        app.restore(&snap).unwrap();
        assert_eq!(app.seen, 42);
        assert!(app.restore(&[1, 2]).is_err());
    }
}
