//! Property tests for Crash-Pad: the recovery protocol preserves app-state
//! semantics for arbitrary event streams and crash points; the policy
//! language round-trips; the checkpoint store's plans are always
//! consistent with what was delivered.

use legosdn_codec::Codec;
use legosdn_controller::app::{Ctx, RestoreError, SdnApp};
use legosdn_controller::event::{Event, EventKind};
use legosdn_controller::services::{DeviceView, TopologyView};
use legosdn_crashpad::{
    CheckpointPolicy, CompromisePolicy, CrashPad, CrashPadConfig, DispatchResult, LocalSandbox,
    PolicyTable, TransformDirection,
};
use legosdn_netsim::SimTime;
use legosdn_openflow::prelude::DatapathId;
use legosdn_testkit::{forall, Rng};

/// An app whose state is the exact multiset of event kinds it has
/// processed; crashes on SwitchDown events carrying a poisoned dpid.
#[derive(Default)]
struct Ledger {
    state: LedgerState,
    poison: u64,
}

#[derive(Clone, Debug, Default, PartialEq, Codec)]
struct LedgerState {
    switch_ups: Vec<u64>,
    switch_downs: Vec<u64>,
    ticks: u64,
}

impl SdnApp for Ledger {
    fn name(&self) -> &str {
        "ledger"
    }
    fn subscriptions(&self) -> Vec<EventKind> {
        EventKind::ALL.to_vec()
    }
    fn on_event(&mut self, event: &Event, _ctx: &mut Ctx<'_>) {
        match event {
            Event::SwitchUp(d) => self.state.switch_ups.push(d.0),
            Event::SwitchDown(d) => {
                if d.0 == self.poison {
                    panic!("poisoned switch-down");
                }
                self.state.switch_downs.push(d.0);
            }
            Event::Tick(_) => self.state.ticks += 1,
            _ => {}
        }
    }
    fn snapshot(&self) -> Vec<u8> {
        legosdn_controller::snapshot::to_bytes(&self.state).unwrap()
    }
    fn restore(&mut self, bytes: &[u8]) -> Result<(), RestoreError> {
        self.state = legosdn_controller::snapshot::from_bytes(bytes)
            .map_err(|e| RestoreError(e.to_string()))?;
        Ok(())
    }
}

const POISON: u64 = 666;

#[derive(Clone, Debug)]
enum Step {
    Up(u64),
    Down(u64),
    PoisonDown,
    Tick,
}

fn arb_step(rng: &mut Rng) -> Step {
    match rng.gen_range(0u32..4) {
        0 => Step::Up(rng.gen_range(1u64..20)),
        1 => Step::Down(rng.gen_range(1u64..20)),
        2 => Step::PoisonDown,
        _ => Step::Tick,
    }
}

fn to_event(s: &Step) -> Event {
    match s {
        Step::Up(d) => Event::SwitchUp(DatapathId(*d)),
        Step::Down(d) => Event::SwitchDown(DatapathId(*d)),
        Step::PoisonDown => Event::SwitchDown(DatapathId(POISON)),
        Step::Tick => Event::Tick(SimTime::ZERO),
    }
}

/// Expected state: the poisoned events simply never happened (Absolute).
fn expected_state(steps: &[Step]) -> LedgerState {
    let mut st = LedgerState::default();
    for s in steps {
        match s {
            Step::Up(d) => st.switch_ups.push(*d),
            Step::Down(d) => st.switch_downs.push(*d),
            Step::PoisonDown => {}
            Step::Tick => st.ticks += 1,
        }
    }
    st
}

fn ledger_state(sandbox: &LocalSandbox) -> LedgerState {
    legosdn_controller::snapshot::from_bytes(&sandbox.app().snapshot()).unwrap()
}

/// THE Crash-Pad theorem under Absolute Compromise: for any event
/// stream with arbitrary crash points and any checkpoint interval, the
/// app ends in exactly the state of the stream with the poisoned
/// events removed, and is always alive at the end.
#[test]
fn recovery_equals_stream_without_poison() {
    forall(128, |rng| {
        let steps = rng.gen_vec(1..40, arb_step);
        let interval = rng.gen_range(1u64..10);
        let mut pad = CrashPad::new(CrashPadConfig {
            checkpoints: CheckpointPolicy {
                interval,
                history: 8,
                ..CheckpointPolicy::default()
            },
            policies: PolicyTable::with_default(CompromisePolicy::Absolute),
            transform_direction: TransformDirection::Decompose,
        });
        let mut sandbox = LocalSandbox::new(Box::new(Ledger {
            poison: POISON,
            ..Ledger::default()
        }));
        let topo = TopologyView::default();
        let dev = DeviceView::default();
        for s in &steps {
            let ev = to_event(s);
            let result = pad.dispatch(&mut sandbox, "ledger", &ev, &topo, &dev, SimTime::ZERO);
            let recovered = matches!(result, DispatchResult::Recovered { .. });
            let delivered = matches!(result, DispatchResult::Delivered(_));
            match s {
                Step::PoisonDown => assert!(recovered, "poison must recover"),
                _ => assert!(delivered, "clean event must deliver"),
            }
        }
        assert!(!sandbox.is_dead());
        assert_eq!(ledger_state(&sandbox), expected_state(&steps));
    });
}

/// Under No-Compromise the first poisoned event kills the app and the
/// state freezes at the prefix before it.
#[test]
fn no_compromise_freezes_at_first_poison() {
    forall(128, |rng| {
        let steps = rng.gen_vec(1..30, arb_step);
        let mut pad = CrashPad::new(CrashPadConfig {
            checkpoints: CheckpointPolicy::default(),
            policies: PolicyTable::with_default(CompromisePolicy::NoCompromise),
            transform_direction: TransformDirection::Decompose,
        });
        let mut sandbox = LocalSandbox::new(Box::new(Ledger {
            poison: POISON,
            ..Ledger::default()
        }));
        let topo = TopologyView::default();
        let dev = DeviceView::default();
        let mut died = false;
        let mut survivors: Vec<Step> = Vec::new();
        for s in &steps {
            let ev = to_event(s);
            let result = pad.dispatch(&mut sandbox, "ledger", &ev, &topo, &dev, SimTime::ZERO);
            if matches!(result, DispatchResult::AppDead { .. }) {
                died = true;
                break;
            }
            if matches!(result, DispatchResult::Delivered(_)) {
                survivors.push(s.clone());
            }
        }
        let has_poison = steps.iter().any(|s| matches!(s, Step::PoisonDown));
        assert_eq!(died, has_poison);
    });
}

/// Ticket count equals the number of poisoned events dispatched.
#[test]
fn one_ticket_per_failure() {
    forall(128, |rng| {
        let steps = rng.gen_vec(1..40, arb_step);
        let mut pad = CrashPad::new(CrashPadConfig {
            checkpoints: CheckpointPolicy::default(),
            policies: PolicyTable::with_default(CompromisePolicy::Absolute),
            transform_direction: TransformDirection::Decompose,
        });
        let mut sandbox = LocalSandbox::new(Box::new(Ledger {
            poison: POISON,
            ..Ledger::default()
        }));
        let topo = TopologyView::default();
        let dev = DeviceView::default();
        for s in &steps {
            pad.dispatch(
                &mut sandbox,
                "ledger",
                &to_event(s),
                &topo,
                &dev,
                SimTime::ZERO,
            );
        }
        let poisons = steps
            .iter()
            .filter(|s| matches!(s, Step::PoisonDown))
            .count();
        assert_eq!(pad.tickets.len(), poisons);
        assert_eq!(pad.stats().failures, poisons as u64);
    });
}

/// The policy language round-trips through its own syntax.
#[test]
fn policy_table_parse_roundtrip() {
    forall(128, |rng| {
        let default_idx = rng.gen_range(0usize..3);
        let apps = rng.gen_vec(0..5, |r| (r.gen_name(1..9), r.gen_range(0usize..3)));
        let policies = [
            CompromisePolicy::Absolute,
            CompromisePolicy::NoCompromise,
            CompromisePolicy::Equivalence,
        ];
        let mut text = format!("default {}\n", policies[default_idx]);
        for (name, idx) in &apps {
            text.push_str(&format!("app {} use {}\n", name, policies[*idx]));
        }
        let table = PolicyTable::parse(&text).unwrap();
        assert_eq!(table.default, policies[default_idx]);
        for (name, idx) in &apps {
            // Later duplicate lines win, matching map-insert semantics:
            // find the LAST entry for this name.
            let last = apps.iter().rev().find(|(n, _)| n == name).unwrap();
            assert_eq!(table.lookup(name, EventKind::PacketIn), policies[last.1]);
            let _ = idx;
        }
    });
}
