//! Crash-Pad — the fault-tolerance layer built on AppVisor's isolation and
//! NetLog's atomic updates (paper §3.3).
//!
//! "Crash-Pad takes a snapshot of the state of the SDN-App prior to its
//! processing of an event and should a failure occur, it can easily revert
//! to this snapshot. Replay of the offending event, however, will most
//! likely cause the SDN-App to fail. Therefore, Crash-Pad either ignores or
//! transforms the event [...] prior to the replay."
//!
//! - [`checkpoint`]: per-event and every-N checkpointing with suffix replay
//!   (the §5 overhead optimisation) and checkpoint history (§5 STS).
//! - [`policy`]: the operator policy language — Absolute / No /
//!   Equivalence compromise, per app, per event kind.
//! - [`mod@transform`]: equivalence rewrites (switch-down ⇄ link-downs, …).
//! - [`ticket`]: problem tickets for developer triage.
//! - [`engine`]: the dispatch/recovery engine over any [`RecoverableApp`].

pub mod checkpoint;
pub mod diagnose;
pub mod engine;
pub mod policy;
pub mod ticket;
pub mod transform;

pub use checkpoint::{
    fnv1a, AppMigration, Checkpoint, CheckpointPolicy, CheckpointStore, RecoveryPlan,
};
pub use diagnose::{DiagnoseError, Diagnosis};
pub use engine::{
    CrashPad, CrashPadConfig, CrashPadStats, DeliveryResult, DispatchResult, LocalSandbox,
    RecoverableApp,
};
pub use policy::{CompromisePolicy, PolicyParseError, PolicyTable};
pub use ticket::{FailureKind, ProblemTicket, RecoveryTaken, TicketStore};
pub use transform::{transform, TransformDirection};
