//! STS-guided crash diagnosis (paper §5).
//!
//! "If the failure is induced as a cumulation of events, we plan on
//! extending LegoSDN to read a history of snapshots (or checkpoints of the
//! SDN-App) and use techniques like STS to detect the exact set of events
//! that induced the crash. STS allows us to determine which checkpoint to
//! roll back the application to."
//!
//! [`CrashPad::diagnose`] implements exactly that loop: walk backwards
//! through the retained checkpoints, replay each archived suffix (plus the
//! offending event) to find the first checkpoint from which the crash
//! reproduces, then run ddmin to extract the minimal causal sequence. The
//! app is restored to its pre-diagnosis state before returning — diagnosis
//! is a read-only operation from the outside.

use crate::engine::{CrashPad, DeliveryResult, RecoverableApp};
use legosdn_controller::event::Event;
use legosdn_controller::services::{DeviceView, TopologyView};
use legosdn_netsim::SimTime;
use legosdn_sts::{ddmin, MinimizeError, ReplayOracle};
use std::fmt;

/// A successful diagnosis.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnosis {
    /// How many checkpoints back the reproducing snapshot is (0 = latest).
    pub checkpoints_back: usize,
    /// Length of the replayed suffix (offending event included).
    pub suffix_len: usize,
    /// The minimal causal sequence that still reproduces the crash.
    pub minimal: Vec<Event>,
    /// Replays the search consumed.
    pub replays: usize,
}

/// Why diagnosis failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DiagnoseError {
    /// No checkpoints retained for this app.
    NoHistory,
    /// The crash does not reproduce from any retained checkpoint — the bug
    /// is non-deterministic, or its causes predate the archive.
    NotReproducible,
    /// The app's current state could not be captured/restored around the
    /// diagnosis (it stays restored to the newest reproducing checkpoint).
    RestoreFailed(String),
}

impl fmt::Display for DiagnoseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiagnoseError::NoHistory => write!(f, "no checkpoints retained"),
            DiagnoseError::NotReproducible => {
                write!(f, "crash does not reproduce from any retained checkpoint")
            }
            DiagnoseError::RestoreFailed(e) => write!(f, "restore around diagnosis failed: {e}"),
        }
    }
}

/// Oracle that replays candidate subsequences into the real app, restored
/// from a fixed snapshot before each attempt.
struct SnapshotOracle<'a> {
    app: &'a mut dyn RecoverableApp,
    snapshot: &'a [u8],
    topology: &'a TopologyView,
    devices: &'a DeviceView,
    now: SimTime,
}

impl ReplayOracle for SnapshotOracle<'_> {
    fn reproduces(&mut self, events: &[Event]) -> bool {
        if self.app.restore(self.snapshot).is_err() {
            return false;
        }
        for ev in events {
            match self.app.deliver(ev, self.topology, self.devices, self.now) {
                DeliveryResult::Ok(_) => {}
                _ => return true,
            }
        }
        false
    }
}

impl CrashPad {
    /// Search the checkpoint history for the snapshot from which replaying
    /// the archived event suffix plus `offending` reproduces the crash;
    /// minimize that suffix with ddmin.
    ///
    /// The search starts at the newest checkpoint and walks backwards —
    /// exactly the §5 "which checkpoint to roll back to" question. On
    /// success (and on `NotReproducible`) the app is restored to the state
    /// it had when `diagnose` was called; a dead app is revived to its
    /// newest checkpoint first so its state can be captured.
    pub fn diagnose(
        &mut self,
        app: &mut dyn RecoverableApp,
        name: &str,
        offending: &Event,
        topology: &TopologyView,
        devices: &DeviceView,
        now: SimTime,
    ) -> Result<Diagnosis, DiagnoseError> {
        let history_len = self.checkpoints.history_len(name);
        if history_len == 0 {
            return Err(DiagnoseError::NoHistory);
        }
        // Capture the state to come back to. A dead app can't snapshot;
        // revive it at the newest checkpoint first.
        let resume_state = match app.snapshot() {
            Ok(bytes) => bytes,
            Err(_) => {
                let plan = self
                    .checkpoints
                    .recovery_plan(name)
                    .ok_or(DiagnoseError::NoHistory)?;
                app.restore(&plan.snapshot.bytes)
                    .map_err(DiagnoseError::RestoreFailed)?;
                app.snapshot().map_err(DiagnoseError::RestoreFailed)?
            }
        };

        let mut result = Err(DiagnoseError::NotReproducible);
        for extra in 0..history_len {
            let Some(plan) = self.checkpoints.historical_plan(name, extra) else {
                continue;
            };
            let mut suffix = plan.replay.clone();
            suffix.push(offending.clone());
            let mut oracle = SnapshotOracle {
                app,
                snapshot: &plan.snapshot.bytes,
                topology,
                devices,
                now,
            };
            match ddmin(&suffix, &mut oracle) {
                Ok(report) => {
                    result = Ok(Diagnosis {
                        checkpoints_back: extra,
                        suffix_len: suffix.len(),
                        minimal: report.minimal,
                        replays: report.replays,
                    });
                    break;
                }
                Err(MinimizeError::NotReproducible | MinimizeError::EmptyHistory) => {}
            }
        }

        app.restore(&resume_state)
            .map_err(DiagnoseError::RestoreFailed)?;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::LocalSandbox;
    use crate::{CheckpointPolicy, CompromisePolicy, CrashPadConfig, PolicyTable};
    use legosdn_controller::app::{Ctx, RestoreError, SdnApp};
    use legosdn_controller::event::EventKind;
    use legosdn_openflow::prelude::DatapathId;

    /// Crashes once it has accumulated `fuse` switch-downs.
    struct FuseApp {
        seen: u32,
        fuse: u32,
    }

    impl SdnApp for FuseApp {
        fn name(&self) -> &str {
            "fuse"
        }
        fn subscriptions(&self) -> Vec<EventKind> {
            EventKind::ALL.to_vec()
        }
        fn on_event(&mut self, event: &Event, _ctx: &mut Ctx<'_>) {
            if matches!(event, Event::SwitchDown(_)) {
                self.seen += 1;
                if self.seen >= self.fuse {
                    panic!("fuse blown");
                }
            }
        }
        fn snapshot(&self) -> Vec<u8> {
            self.seen.to_be_bytes().to_vec()
        }
        fn restore(&mut self, b: &[u8]) -> Result<(), RestoreError> {
            self.seen = u32::from_be_bytes(b.try_into().map_err(|_| RestoreError("len".into()))?);
            Ok(())
        }
    }

    fn pad() -> CrashPad {
        CrashPad::new(CrashPadConfig {
            checkpoints: CheckpointPolicy {
                interval: 4,
                history: 16,
                archive: 256,
            },
            policies: PolicyTable::with_default(CompromisePolicy::Absolute),
            transform_direction: crate::TransformDirection::Decompose,
        })
    }

    fn up(d: u64) -> Event {
        Event::SwitchUp(DatapathId(d))
    }

    fn down(d: u64) -> Event {
        Event::SwitchDown(DatapathId(d))
    }

    #[test]
    fn cumulative_bug_is_localized_to_the_right_checkpoint() {
        // Fuse = 3: two switch-downs accumulate harmlessly, the third (the
        // offending event) blows. The latest checkpoint was taken after
        // both priors, so replay-from-latest DOES reproduce (seen=2 in the
        // snapshot); but roll back far enough and the minimal sequence
        // includes the earlier switch-downs.
        let mut pad = pad();
        let mut sandbox = LocalSandbox::new(Box::new(FuseApp { seen: 0, fuse: 3 }));
        let topo = TopologyView::default();
        let dev = DeviceView::default();
        // 20 noise events with 2 switch-downs buried at positions 5 and 13.
        for i in 0..20u64 {
            let ev = if i == 5 || i == 13 { down(i) } else { up(i) };
            let r = pad.dispatch(&mut sandbox, "fuse", &ev, &topo, &dev, SimTime::ZERO);
            assert!(
                matches!(r, crate::DispatchResult::Delivered(_)),
                "event {i}: {r:?}"
            );
        }
        // The offending third switch-down.
        let offending = down(99);
        let diagnosis = pad
            .diagnose(&mut sandbox, "fuse", &offending, &topo, &dev, SimTime::ZERO)
            .expect("must reproduce");
        // From the newest checkpoint (seen already == 2) the single
        // offending event suffices: minimal == [offending].
        assert_eq!(diagnosis.checkpoints_back, 0);
        assert_eq!(diagnosis.minimal, vec![offending.clone()]);
        // Diagnosis left the app in its pre-diagnosis state: alive, seen=2.
        assert!(!sandbox.is_dead());
        let state = sandbox.app().snapshot();
        assert_eq!(u32::from_be_bytes(state.try_into().unwrap()), 2);
    }

    #[test]
    fn diagnosis_finds_multi_event_cause_from_older_checkpoint() {
        // Checkpoint interval 4, fuse 2, both culprits inside ONE
        // checkpoint window, crash on the second: from the latest
        // checkpoint the pre-state may already hold seen=1; roll back far
        // enough and ddmin must pick up the in-window switch-down too.
        let mut pad = CrashPad::new(CrashPadConfig {
            checkpoints: CheckpointPolicy {
                interval: 8,
                history: 16,
                archive: 256,
            },
            policies: PolicyTable::with_default(CompromisePolicy::Absolute),
            transform_direction: crate::TransformDirection::Decompose,
        });
        let mut sandbox = LocalSandbox::new(Box::new(FuseApp { seen: 0, fuse: 2 }));
        let topo = TopologyView::default();
        let dev = DeviceView::default();
        // 6 events (inside the first window): one switch-down at pos 3.
        for i in 0..6u64 {
            let ev = if i == 3 { down(i) } else { up(i) };
            pad.dispatch(&mut sandbox, "fuse", &ev, &topo, &dev, SimTime::ZERO);
        }
        let offending = down(99);
        let diagnosis = pad
            .diagnose(&mut sandbox, "fuse", &offending, &topo, &dev, SimTime::ZERO)
            .expect("must reproduce");
        // The minimal causal sequence is the in-window switch-down plus the
        // offending one.
        assert_eq!(diagnosis.minimal.len(), 2, "{:?}", diagnosis.minimal);
        assert!(diagnosis.minimal.contains(&down(3)));
        assert!(diagnosis.minimal.contains(&offending));
    }

    #[test]
    fn dead_app_is_revived_for_diagnosis() {
        let mut pad = pad();
        let mut sandbox = LocalSandbox::new(Box::new(FuseApp { seen: 0, fuse: 1 }));
        let topo = TopologyView::default();
        let dev = DeviceView::default();
        pad.dispatch(&mut sandbox, "fuse", &up(1), &topo, &dev, SimTime::ZERO);
        // Kill it outside Crash-Pad's recovery (No-Compromise style).
        let r = sandbox.deliver(&down(9), &topo, &dev, SimTime::ZERO);
        assert!(matches!(r, DeliveryResult::Crashed { .. }));
        assert!(sandbox.is_dead());
        let diagnosis = pad
            .diagnose(&mut sandbox, "fuse", &down(9), &topo, &dev, SimTime::ZERO)
            .expect("must reproduce");
        assert_eq!(diagnosis.minimal, vec![down(9)]);
        assert!(!sandbox.is_dead(), "diagnosis revives and restores");
    }

    #[test]
    fn nondeterministic_crash_reports_not_reproducible() {
        // An app that never crashes on replay: the "offending" event is
        // benign, so nothing reproduces.
        let mut pad = pad();
        let mut sandbox = LocalSandbox::new(Box::new(FuseApp { seen: 0, fuse: 100 }));
        let topo = TopologyView::default();
        let dev = DeviceView::default();
        pad.dispatch(&mut sandbox, "fuse", &up(1), &topo, &dev, SimTime::ZERO);
        let err = pad
            .diagnose(&mut sandbox, "fuse", &up(2), &topo, &dev, SimTime::ZERO)
            .unwrap_err();
        assert_eq!(err, DiagnoseError::NotReproducible);
    }

    #[test]
    fn no_history_is_reported() {
        let mut pad = pad();
        let mut sandbox = LocalSandbox::new(Box::new(FuseApp { seen: 0, fuse: 1 }));
        let topo = TopologyView::default();
        let dev = DeviceView::default();
        let err = pad
            .diagnose(&mut sandbox, "ghost", &down(1), &topo, &dev, SimTime::ZERO)
            .unwrap_err();
        assert_eq!(err, DiagnoseError::NoHistory);
    }
}
