//! The checkpoint store — Crash-Pad's CRIU stand-in (paper §4.1, DESIGN.md
//! §2).
//!
//! "The proxy creates a checkpoint of an SDN-App process prior to
//! dispatching every message. In a normal scenario [...] the proxy simply
//! ignores the checkpoint created. In the event of crash, however, the
//! proxy restores the SDN-App to the checkpoint."
//!
//! §5 refines this: per-event checkpointing is "prohibitively expensive",
//! so the store supports checkpoint-every-N with an event replay buffer —
//! recovery restores the last snapshot and replays the events delivered
//! since. A bounded history of older checkpoints supports the STS-guided
//! multi-transaction rollback (§5).

use legosdn_codec::Codec;
use legosdn_controller::event::Event;
use std::collections::{BTreeMap, VecDeque};

/// How often to checkpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Codec)]
pub struct CheckpointPolicy {
    /// Take a snapshot before every `interval`-th event. `1` is the paper
    /// prototype (checkpoint before every event).
    pub interval: u64,
    /// How many past checkpoints to retain for history-based rollback.
    pub history: usize,
    /// How many delivered events to archive for STS-guided diagnosis.
    pub archive: usize,
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        CheckpointPolicy {
            interval: 1,
            history: 8,
            archive: 1024,
        }
    }
}

/// One retained checkpoint.
#[derive(Clone, Debug, PartialEq, Codec)]
pub struct Checkpoint {
    /// Index of the first event delivered *after* this snapshot.
    pub event_index: u64,
    /// Serialized app state.
    pub bytes: Vec<u8>,
}

/// A recovery plan: restore `snapshot`, then replay `replay` in order.
#[derive(Clone, Debug, PartialEq)]
pub struct RecoveryPlan {
    pub snapshot: Checkpoint,
    pub replay: Vec<Event>,
}

/// FNV-1a over the serialized state — cheap enough to run on every
/// snapshot, collision-resistant enough to gate *elision* (a false match
/// would reuse a stale checkpoint; at 64 bits that is vanishingly rarer
/// than the fault rates the paper's recovery machinery exists for).
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[derive(Clone, Debug, Default, Codec)]
struct AppCheckpoints {
    /// Most recent first is at the back.
    history: VecDeque<Checkpoint>,
    /// FNV-1a hash of the latest stored snapshot's bytes; used to elide
    /// a new snapshot whose serialized state is unchanged.
    last_hash: Option<u64>,
    /// Events delivered since the latest snapshot.
    replay_buffer: Vec<Event>,
    /// Total events delivered to this app.
    events_delivered: u64,
    /// Bounded archive of delivered events, spanning (at least) the
    /// retained checkpoint history — what §5's STS-guided diagnosis
    /// replays. `archive[0]` is event index `archive_start`.
    archive: VecDeque<Event>,
    archive_start: u64,
}

/// Per-app checkpoint bookkeeping.
#[derive(Clone, Debug)]
pub struct CheckpointStore {
    pub policy: CheckpointPolicy,
    apps: BTreeMap<String, AppCheckpoints>,
    /// Lifetime snapshots taken (the cost driver in E3).
    pub snapshots_taken: u64,
    /// Lifetime bytes snapshotted.
    pub bytes_snapshotted: u64,
    /// Snapshots elided because the serialized state was unchanged since
    /// the previous one (hash match — see [`CheckpointStore::record_snapshot`]).
    pub snapshots_elided: u64,
}

impl CheckpointStore {
    /// A store with the given policy.
    #[must_use]
    pub fn new(policy: CheckpointPolicy) -> Self {
        CheckpointStore {
            policy,
            apps: BTreeMap::new(),
            snapshots_taken: 0,
            bytes_snapshotted: 0,
            snapshots_elided: 0,
        }
    }

    /// Is a checkpoint due before delivering the app's next event?
    #[must_use]
    pub fn checkpoint_due(&self, app: &str) -> bool {
        self.checkpoint_due_ahead(app, 0)
    }

    /// Is a checkpoint due before the app's (next + `ahead`)-th event?
    /// The windowed dispatcher asks this speculatively while `ahead`
    /// earlier deliveries are still in flight; `ahead = 0` is the plain
    /// [`CheckpointStore::checkpoint_due`] question.
    #[must_use]
    pub fn checkpoint_due_ahead(&self, app: &str, ahead: u64) -> bool {
        let interval = self.policy.interval.max(1);
        match self.apps.get(app) {
            // First contact: the very first event always snapshots first,
            // later window slots follow the interval from zero.
            None => ahead.is_multiple_of(interval),
            Some(a) => (a.events_delivered + ahead).is_multiple_of(interval),
        }
    }

    /// Record a snapshot taken before the app's next event. Returns `true`
    /// if the snapshot was stored, `false` if it was *elided*: when the
    /// serialized state hashes identically to the latest stored snapshot,
    /// the store just re-dates that checkpoint (`event_index` := now) and
    /// clears the replay buffer — restore + empty replay reproduces the
    /// current state exactly, so recovery plans stay correct while the
    /// copy and its history slot are saved.
    pub fn record_snapshot(&mut self, app: &str, bytes: Vec<u8>) -> bool {
        let entry = self.apps.entry(app.to_string()).or_default();
        let hash = fnv1a(&bytes);
        if entry.last_hash == Some(hash) {
            if let Some(latest) = entry.history.back_mut() {
                latest.event_index = entry.events_delivered;
                entry.replay_buffer.clear();
                self.snapshots_elided += 1;
                return false;
            }
        }
        self.snapshots_taken += 1;
        self.bytes_snapshotted += bytes.len() as u64;
        entry.last_hash = Some(hash);
        entry.history.push_back(Checkpoint {
            event_index: entry.events_delivered,
            bytes,
        });
        while entry.history.len() > self.policy.history.max(1) {
            entry.history.pop_front();
        }
        entry.replay_buffer.clear();
        true
    }

    /// Record that an event was (successfully) delivered to the app.
    pub fn record_delivered(&mut self, app: &str, event: &Event) {
        let cap = self.policy.archive.max(1);
        let entry = self.apps.entry(app.to_string()).or_default();
        entry.events_delivered += 1;
        entry.replay_buffer.push(event.clone());
        entry.archive.push_back(event.clone());
        while entry.archive.len() > cap {
            entry.archive.pop_front();
            entry.archive_start += 1;
        }
    }

    /// Events delivered to the app so far.
    #[must_use]
    pub fn events_delivered(&self, app: &str) -> u64 {
        self.apps.get(app).map_or(0, |a| a.events_delivered)
    }

    /// The plan to recover the app to its state just before the offending
    /// event: the latest snapshot plus the events delivered since.
    #[must_use]
    pub fn recovery_plan(&self, app: &str) -> Option<RecoveryPlan> {
        let a = self.apps.get(app)?;
        let snapshot = a.history.back()?.clone();
        Some(RecoveryPlan {
            snapshot,
            replay: a.replay_buffer.clone(),
        })
    }

    /// A plan rolling back `extra` checkpoints further than the latest —
    /// the §5 "read a history of snapshots" mechanism for failures that
    /// span multiple events. Replay comes from the event archive: every
    /// event delivered after that snapshot, in order (empty if the archive
    /// has already evicted that span).
    #[must_use]
    pub fn historical_plan(&self, app: &str, extra: usize) -> Option<RecoveryPlan> {
        let a = self.apps.get(app)?;
        if extra == 0 {
            return self.recovery_plan(app);
        }
        let idx = a.history.len().checked_sub(1 + extra)?;
        let snapshot = a.history[idx].clone();
        let replay = if snapshot.event_index >= a.archive_start {
            let skip = (snapshot.event_index - a.archive_start) as usize;
            a.archive.iter().skip(skip).cloned().collect()
        } else {
            Vec::new()
        };
        Some(RecoveryPlan { snapshot, replay })
    }

    /// Number of retained checkpoints for an app.
    #[must_use]
    pub fn history_len(&self, app: &str) -> usize {
        self.apps.get(app).map_or(0, |a| a.history.len())
    }

    /// Retained checkpoints for an app (oldest first).
    #[must_use]
    pub fn history(&self, app: &str) -> Vec<&Checkpoint> {
        self.apps
            .get(app)
            .map(|a| a.history.iter().collect())
            .unwrap_or_default()
    }

    /// Forget an app entirely (it was detached).
    pub fn forget(&mut self, app: &str) {
        self.apps.remove(app);
    }

    /// Remove an app's checkpoint bookkeeping for migration to another
    /// store (the load balancer moving an app between worker shards).
    /// `None` if the app has no state here.
    pub fn extract(&mut self, app: &str) -> Option<AppMigration> {
        self.apps.remove(app).map(AppMigration)
    }

    /// Adopt bookkeeping extracted from another store. Replaces any state
    /// this store already holds for the app.
    pub fn adopt(&mut self, app: &str, migration: AppMigration) {
        self.apps.insert(app.to_string(), migration.0);
    }
}

/// Opaque per-app checkpoint state in transit between two
/// [`CheckpointStore`]s — see [`CheckpointStore::extract`].
#[derive(Clone, Debug)]
pub struct AppMigration(AppCheckpoints);

#[cfg(test)]
mod tests {
    use super::*;
    use legosdn_controller::event::Event;
    use legosdn_openflow::prelude::DatapathId;

    fn ev(d: u64) -> Event {
        Event::SwitchUp(DatapathId(d))
    }

    #[test]
    fn per_event_policy_checkpoints_every_time() {
        let mut store = CheckpointStore::new(CheckpointPolicy {
            interval: 1,
            history: 4,
            ..CheckpointPolicy::default()
        });
        for i in 0..5u64 {
            assert!(store.checkpoint_due("a"), "event {i}");
            store.record_snapshot("a", vec![i as u8]);
            store.record_delivered("a", &ev(i));
        }
        assert_eq!(store.snapshots_taken, 5);
        assert_eq!(store.events_delivered("a"), 5);
    }

    #[test]
    fn interval_policy_checkpoints_every_n() {
        let mut store = CheckpointStore::new(CheckpointPolicy {
            interval: 3,
            history: 4,
            ..CheckpointPolicy::default()
        });
        let mut taken = 0;
        for i in 0..9u64 {
            if store.checkpoint_due("a") {
                store.record_snapshot("a", vec![i as u8]);
                taken += 1;
            }
            store.record_delivered("a", &ev(i));
        }
        assert_eq!(taken, 3, "events 0, 3, 6");
    }

    #[test]
    fn recovery_plan_carries_replay_buffer() {
        let mut store = CheckpointStore::new(CheckpointPolicy {
            interval: 4,
            history: 4,
            ..CheckpointPolicy::default()
        });
        store.record_snapshot("a", vec![0xaa]);
        store.record_delivered("a", &ev(1));
        store.record_delivered("a", &ev(2));
        let plan = store.recovery_plan("a").unwrap();
        assert_eq!(plan.snapshot.bytes, vec![0xaa]);
        assert_eq!(plan.replay, vec![ev(1), ev(2)]);
        // A fresh snapshot clears the buffer.
        store.record_snapshot("a", vec![0xbb]);
        let plan = store.recovery_plan("a").unwrap();
        assert!(plan.replay.is_empty());
        assert_eq!(plan.snapshot.bytes, vec![0xbb]);
    }

    #[test]
    fn history_is_bounded_and_ordered() {
        let mut store = CheckpointStore::new(CheckpointPolicy {
            interval: 1,
            history: 3,
            ..CheckpointPolicy::default()
        });
        for i in 0..5u8 {
            store.record_snapshot("a", vec![i]);
            store.record_delivered("a", &ev(u64::from(i)));
        }
        let hist = store.history("a");
        assert_eq!(hist.len(), 3);
        assert_eq!(hist[0].bytes, vec![2]);
        assert_eq!(hist[2].bytes, vec![4]);
    }

    #[test]
    fn historical_plan_reaches_back() {
        let mut store = CheckpointStore::new(CheckpointPolicy {
            interval: 1,
            history: 4,
            ..CheckpointPolicy::default()
        });
        for i in 0..4u8 {
            store.record_snapshot("a", vec![i]);
            store.record_delivered("a", &ev(u64::from(i)));
        }
        assert_eq!(
            store.historical_plan("a", 0).unwrap().snapshot.bytes,
            vec![3]
        );
        assert_eq!(
            store.historical_plan("a", 2).unwrap().snapshot.bytes,
            vec![1]
        );
        assert!(store.historical_plan("a", 9).is_none());
    }

    #[test]
    fn unchanged_state_elides_the_snapshot_but_keeps_plans_correct() {
        let mut store = CheckpointStore::new(CheckpointPolicy {
            interval: 1,
            history: 4,
            ..CheckpointPolicy::default()
        });
        assert!(store.record_snapshot("a", vec![7, 7]));
        store.record_delivered("a", &ev(0));
        // State unchanged: elide, but the retained checkpoint must now
        // cover event 1 onward with nothing to replay.
        assert!(!store.record_snapshot("a", vec![7, 7]));
        store.record_delivered("a", &ev(1));
        assert_eq!(store.snapshots_taken, 1);
        assert_eq!(store.snapshots_elided, 1);
        assert_eq!(store.bytes_snapshotted, 2);
        assert_eq!(store.history_len("a"), 1);
        let plan = store.recovery_plan("a").unwrap();
        assert_eq!(plan.snapshot.event_index, 1);
        assert_eq!(plan.snapshot.bytes, vec![7, 7]);
        assert_eq!(plan.replay, vec![ev(1)]);
        // State changed again: stored as usual.
        assert!(store.record_snapshot("a", vec![7, 8]));
        assert_eq!(store.snapshots_taken, 2);
        assert_eq!(store.history_len("a"), 2);
    }

    #[test]
    fn elision_is_per_app() {
        let mut store = CheckpointStore::new(CheckpointPolicy::default());
        assert!(store.record_snapshot("a", vec![1]));
        // Same bytes, different app: no cross-talk.
        assert!(store.record_snapshot("b", vec![1]));
        assert!(!store.record_snapshot("a", vec![1]));
        assert_eq!(store.snapshots_elided, 1);
    }

    #[test]
    fn due_ahead_projects_the_interval_over_in_flight_deliveries() {
        let mut store = CheckpointStore::new(CheckpointPolicy {
            interval: 3,
            ..CheckpointPolicy::default()
        });
        // Nothing delivered yet: due at slots 0, 3, 6...
        assert!(store.checkpoint_due_ahead("a", 0));
        assert!(!store.checkpoint_due_ahead("a", 1));
        assert!(!store.checkpoint_due_ahead("a", 2));
        assert!(store.checkpoint_due_ahead("a", 3));
        for i in 0..2 {
            store.record_delivered("a", &ev(i));
        }
        // Two delivered: the next (ahead=0) is index 2, due at ahead=1.
        assert!(!store.checkpoint_due_ahead("a", 0));
        assert!(store.checkpoint_due_ahead("a", 1));
        assert_eq!(
            store.checkpoint_due("a"),
            store.checkpoint_due_ahead("a", 0)
        );
    }

    #[test]
    fn unknown_app_has_no_plan() {
        let store = CheckpointStore::new(CheckpointPolicy::default());
        assert!(store.recovery_plan("ghost").is_none());
        assert_eq!(store.events_delivered("ghost"), 0);
        assert!(
            store.checkpoint_due("ghost"),
            "first event always snapshots"
        );
    }

    #[test]
    fn forget_drops_state() {
        let mut store = CheckpointStore::new(CheckpointPolicy::default());
        store.record_snapshot("a", vec![1]);
        store.forget("a");
        assert!(store.recovery_plan("a").is_none());
    }

    #[test]
    fn extract_and_adopt_move_state_between_stores() {
        let mut from = CheckpointStore::new(CheckpointPolicy::default());
        from.record_snapshot("a", vec![0xaa]);
        from.record_delivered("a", &ev(1));
        let migration = from.extract("a").unwrap();
        assert!(from.recovery_plan("a").is_none(), "source forgot the app");
        assert!(from.extract("ghost").is_none());

        let mut to = CheckpointStore::new(CheckpointPolicy::default());
        to.adopt("a", migration);
        assert_eq!(to.events_delivered("a"), 1);
        let plan = to.recovery_plan("a").unwrap();
        assert_eq!(plan.snapshot.bytes, vec![0xaa]);
        assert_eq!(plan.replay, vec![ev(1)]);
    }
}
