//! Equivalence-compromise event transformations (paper §3.3).
//!
//! "Equivalence Compromise transforms the event into an equivalent one,
//! e.g. a switch down event can be transformed into a series of link down
//! events. Alternatively, a link down event may be transformed into a
//! switch down event. This transformation exploits the domain knowledge
//! that certain events are super-sets of other events and vice versa."

use legosdn_controller::event::Event;
use legosdn_controller::services::TopologyView;
use legosdn_openflow::messages::{PortStatus, PortStatusReason};
use legosdn_openflow::prelude::PacketInReason;

/// Direction of the equivalence rewrite.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransformDirection {
    /// Rewrite toward finer-grained events (switch-down → link-downs).
    Decompose,
    /// Rewrite toward coarser events (link-down → switch-down).
    Generalize,
}

/// Transform `event` into equivalent events using the topology's domain
/// knowledge. Returns `None` when no equivalence exists (the caller falls
/// back to Absolute Compromise and ignores the event).
#[must_use]
pub fn transform(
    event: &Event,
    topology: &TopologyView,
    direction: TransformDirection,
) -> Option<Vec<Event>> {
    match (event, direction) {
        // Switch-down ⇒ one link-down per link the switch carried (the
        // live view no longer has them, so consult the last-known set).
        (Event::SwitchDown(dpid), TransformDirection::Decompose) => {
            let links = topology.last_known_links(*dpid);
            if links.is_empty() {
                return None;
            }
            Some(
                links
                    .into_iter()
                    .map(|l| Event::LinkDown { a: l.a, b: l.b })
                    .collect(),
            )
        }
        // Link-down ⇒ the "superset" switch-down of one endpoint. We pick
        // the endpoint with fewer remaining links (less collateral damage).
        (Event::LinkDown { a, b }, TransformDirection::Generalize) => {
            let deg_a = topology.links_of(a.dpid).len();
            let deg_b = topology.links_of(b.dpid).len();
            let victim = if deg_a <= deg_b { a.dpid } else { b.dpid };
            Some(vec![Event::SwitchDown(victim)])
        }
        // Switch-up ⇒ link-ups (symmetric decomposition, useful when the
        // up-handler is the buggy path).
        (Event::SwitchUp(dpid), TransformDirection::Decompose) => {
            let links = topology.links_of(*dpid);
            if links.is_empty() {
                return None;
            }
            Some(
                links
                    .into_iter()
                    .map(|l| Event::LinkUp { a: l.a, b: l.b })
                    .collect(),
            )
        }
        // Link-up ⇒ switch-up of an endpoint.
        (Event::LinkUp { a, .. }, TransformDirection::Generalize) => {
            Some(vec![Event::SwitchUp(a.dpid)])
        }
        // Port-status down ⇒ the link-down it implies (if any).
        (Event::PortStatus(dpid, ps), TransformDirection::Decompose) => {
            decompose_port_status(*dpid, ps, topology)
        }
        // A packet-in's nearest equivalent: the same packet re-reported
        // with reason Action instead of NoMatch (some apps special-case the
        // reason; a bug keyed on it is sidestepped).
        (Event::PacketIn(dpid, pi), _) => {
            if pi.reason == PacketInReason::NoMatch {
                let mut alt = pi.clone();
                alt.reason = PacketInReason::Action;
                Some(vec![Event::PacketIn(*dpid, alt)])
            } else {
                None
            }
        }
        _ => None,
    }
}

fn decompose_port_status(
    dpid: legosdn_openflow::prelude::DatapathId,
    ps: &PortStatus,
    topology: &TopologyView,
) -> Option<Vec<Event>> {
    if ps.reason != PortStatusReason::Modify || ps.desc.is_live() {
        return None;
    }
    let port = ps.desc.port_no.phys()?;
    let link = topology.link_at(legosdn_netsim::Endpoint::new(dpid, port))?;
    Some(vec![Event::LinkDown {
        a: link.a,
        b: link.b,
    }])
}

#[cfg(test)]
mod tests {
    use super::*;
    use legosdn_netsim::Endpoint;
    use legosdn_openflow::prelude::*;

    fn topo() -> TopologyView {
        // 1 -(1:1)- 2 -(2:1)- 3; switch 2 has two links.
        let mut t = TopologyView::default();
        for d in 1..=3 {
            t.switch_up(DatapathId(d), vec![]);
        }
        t.link_up(
            Endpoint::new(DatapathId(1), 1),
            Endpoint::new(DatapathId(2), 1),
        );
        t.link_up(
            Endpoint::new(DatapathId(2), 2),
            Endpoint::new(DatapathId(3), 1),
        );
        t
    }

    #[test]
    fn switch_down_decomposes_into_its_link_downs() {
        let t = topo();
        let out = transform(
            &Event::SwitchDown(DatapathId(2)),
            &t,
            TransformDirection::Decompose,
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|e| matches!(e, Event::LinkDown { .. })));
    }

    #[test]
    fn isolated_switch_down_has_no_decomposition() {
        let mut t = topo();
        t.switch_up(DatapathId(9), vec![]);
        assert_eq!(
            transform(
                &Event::SwitchDown(DatapathId(9)),
                &t,
                TransformDirection::Decompose
            ),
            None
        );
    }

    #[test]
    fn link_down_generalizes_to_lower_degree_endpoint() {
        let t = topo();
        let ev = Event::LinkDown {
            a: Endpoint::new(DatapathId(1), 1),
            b: Endpoint::new(DatapathId(2), 1),
        };
        let out = transform(&ev, &t, TransformDirection::Generalize).unwrap();
        // Switch 1 has degree 1, switch 2 degree 2 → victim is 1.
        assert_eq!(out, vec![Event::SwitchDown(DatapathId(1))]);
    }

    #[test]
    fn switch_up_decomposes() {
        let t = topo();
        let out = transform(
            &Event::SwitchUp(DatapathId(2)),
            &t,
            TransformDirection::Decompose,
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|e| matches!(e, Event::LinkUp { .. })));
    }

    #[test]
    fn port_status_down_becomes_link_down() {
        let t = topo();
        let ps = PortStatus {
            reason: PortStatusReason::Modify,
            desc: PortDesc {
                port_no: PortNo::Phys(1),
                hw_addr: MacAddr::from_index(1),
                name: "eth1".into(),
                config_down: false,
                link_down: true,
            },
        };
        let out = transform(
            &Event::PortStatus(DatapathId(2), ps),
            &t,
            TransformDirection::Decompose,
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0], Event::LinkDown { .. }));
    }

    #[test]
    fn live_port_status_does_not_transform() {
        let t = topo();
        let ps = PortStatus {
            reason: PortStatusReason::Modify,
            desc: PortDesc::up(PortNo::Phys(1), MacAddr::from_index(1)),
        };
        assert_eq!(
            transform(
                &Event::PortStatus(DatapathId(2), ps),
                &t,
                TransformDirection::Decompose
            ),
            None
        );
    }

    #[test]
    fn packet_in_reason_flip() {
        let t = topo();
        let pi = PacketIn {
            buffer_id: BufferId::NONE,
            in_port: PortNo::Phys(1),
            reason: PacketInReason::NoMatch,
            packet: Packet::ethernet(MacAddr::from_index(1), MacAddr::from_index(2)),
        };
        let out = transform(
            &Event::PacketIn(DatapathId(1), pi),
            &t,
            TransformDirection::Decompose,
        )
        .unwrap();
        match &out[0] {
            Event::PacketIn(_, alt) => assert_eq!(alt.reason, PacketInReason::Action),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn tick_has_no_equivalent() {
        let t = topo();
        assert_eq!(
            transform(
                &Event::Tick(legosdn_netsim::SimTime::ZERO),
                &t,
                TransformDirection::Decompose
            ),
            None
        );
    }
}
