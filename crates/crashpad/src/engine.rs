//! The Crash-Pad dispatch/recovery engine (paper §3.3).
//!
//! For every event: checkpoint the app if due, deliver, and on failure run
//! the recovery protocol — restore the pre-event snapshot, replay the
//! post-checkpoint suffix, then handle the *offending event* per the
//! operator's compromise policy (ignore / transform / let die), filing a
//! problem ticket either way.
//!
//! The engine is agnostic to *where* the app runs: anything implementing
//! [`RecoverableApp`] can be protected. [`LocalSandbox`] wraps an in-process
//! app with panic containment; the LegoSDN runtime provides an
//! AppVisor-proxy-backed implementation for truly isolated apps.

use crate::checkpoint::{CheckpointPolicy, CheckpointStore};
use crate::policy::{CompromisePolicy, PolicyTable};
use crate::ticket::{FailureKind, RecoveryTaken, TicketStore};
use crate::transform::{transform, TransformDirection};
use legosdn_controller::app::{Command, Ctx, SdnApp};
use legosdn_controller::event::Event;
use legosdn_controller::monolithic::panic_text;
use legosdn_controller::services::{DeviceView, TopologyView};
use legosdn_netsim::SimTime;
use legosdn_obs::{Obs, RecordKind};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// Result of delivering one event to a protected app.
#[derive(Clone, Debug, PartialEq)]
pub enum DeliveryResult {
    /// Processed; here are the app's commands.
    Ok(Vec<Command>),
    /// The app crashed with this panic message.
    Crashed { panic_message: String },
    /// The app stopped responding (isolated apps only).
    CommFailure,
}

/// An app Crash-Pad can protect: deliver / snapshot / restore.
pub trait RecoverableApp {
    /// Deliver one event.
    fn deliver(
        &mut self,
        event: &Event,
        topology: &TopologyView,
        devices: &DeviceView,
        now: SimTime,
    ) -> DeliveryResult;

    /// Capture the app's full state.
    fn snapshot(&mut self) -> Result<Vec<u8>, String>;

    /// Restore state (revives a crashed app — the CRIU-restore analogue).
    fn restore(&mut self, bytes: &[u8]) -> Result<(), String>;
}

/// Outcome of a protected dispatch.
#[derive(Clone, Debug, PartialEq)]
pub enum DispatchResult {
    /// Normal delivery.
    Delivered(Vec<Command>),
    /// A failure occurred and was recovered from; `commands` are from the
    /// transformed events (empty when the event was ignored).
    Recovered {
        recovery: RecoveryTaken,
        commands: Vec<Command>,
        ticket: u64,
    },
    /// Policy was No-Compromise (or recovery impossible): the app is dead.
    AppDead { ticket: u64 },
}

impl DispatchResult {
    /// The commands to execute, whatever the path taken.
    #[must_use]
    pub fn commands(&self) -> &[Command] {
        match self {
            DispatchResult::Delivered(c) => c,
            DispatchResult::Recovered { commands, .. } => commands,
            DispatchResult::AppDead { .. } => &[],
        }
    }
}

/// Engine counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CrashPadStats {
    pub events_dispatched: u64,
    pub failures: u64,
    pub byzantine_failures: u64,
    pub recoveries: u64,
    pub events_ignored: u64,
    pub events_transformed: u64,
    pub transform_fallbacks: u64,
    pub apps_let_die: u64,
    pub events_replayed: u64,
    pub replay_failures: u64,
}

/// Crash-Pad configuration.
#[derive(Clone, Debug)]
pub struct CrashPadConfig {
    pub checkpoints: CheckpointPolicy,
    pub policies: PolicyTable,
    pub transform_direction: TransformDirection,
}

impl Default for CrashPadConfig {
    fn default() -> Self {
        CrashPadConfig {
            checkpoints: CheckpointPolicy::default(),
            policies: PolicyTable::default(),
            transform_direction: TransformDirection::Decompose,
        }
    }
}

/// The Crash-Pad engine.
pub struct CrashPad {
    pub checkpoints: CheckpointStore,
    pub policies: PolicyTable,
    pub tickets: TicketStore,
    pub transform_direction: TransformDirection,
    stats: CrashPadStats,
    obs: Obs,
}

impl CrashPad {
    /// An engine with the given configuration, reporting to [`Obs::global`].
    #[must_use]
    pub fn new(config: CrashPadConfig) -> Self {
        CrashPad {
            checkpoints: CheckpointStore::new(config.checkpoints),
            policies: config.policies,
            tickets: TicketStore::default(),
            transform_direction: config.transform_direction,
            stats: CrashPadStats::default(),
            obs: Obs::global(),
        }
    }

    /// Report metrics and journal records to `obs` instead of the global
    /// instance (isolated tests, side-by-side campaigns).
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Engine counters.
    #[must_use]
    pub fn stats(&self) -> CrashPadStats {
        self.stats
    }

    /// Deliver `event` to the app under Crash-Pad protection.
    ///
    /// This is the monolithic form of the protocol: [`CrashPad::prepare`]
    /// (checkpoint), the app's own [`RecoverableApp::deliver`], and
    /// [`CrashPad::complete`] (bookkeeping + recovery), back to back.
    /// Pipelined runtimes call the halves directly so deliveries can
    /// overlap across fault domains between the two.
    pub fn dispatch(
        &mut self,
        app: &mut dyn RecoverableApp,
        name: &str,
        event: &Event,
        topology: &TopologyView,
        devices: &DeviceView,
        now: SimTime,
    ) -> DispatchResult {
        self.prepare(app, name);
        let delivery = app.deliver(event, topology, devices, now);
        self.complete(app, name, event, delivery, topology, devices, now)
    }

    /// First half of a protected dispatch: count it and checkpoint the app
    /// if one is due. Must be called exactly once per delivery, *before*
    /// the event reaches the app — the snapshot taken here is what
    /// [`CrashPad::complete`] restores on failure.
    pub fn prepare(&mut self, app: &mut dyn RecoverableApp, name: &str) {
        self.note_dispatch();
        if self.checkpoints.checkpoint_due(name) {
            let started = Instant::now();
            if let Ok(bytes) = app.snapshot() {
                let dur_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                self.record_prepared(name, bytes, dur_ns);
            }
        }
    }

    /// Count one delivery attempt. [`CrashPad::prepare`] calls this; the
    /// windowed dispatcher calls it separately as each in-flight delivery
    /// is collected, so `events_dispatched` counts deliveries that
    /// actually completed rather than speculative sends.
    pub fn note_dispatch(&mut self) {
        self.stats.events_dispatched += 1;
    }

    /// Book a pre-event snapshot that took `dur_ns` to capture: journal
    /// and histogram the cost, then store (or elide) the bytes. The
    /// windowed dispatcher uses this directly because it captures
    /// snapshots remotely via the stub RPC queue rather than through a
    /// [`RecoverableApp`] handle.
    pub fn record_prepared(&mut self, name: &str, bytes: Vec<u8>, dur_ns: u64) {
        let size = bytes.len() as u64;
        self.obs.record(RecordKind::CheckpointTaken {
            app: name.to_string(),
            bytes: size,
            dur_ns,
        });
        self.obs
            .histogram("crashpad", "checkpoint_ns", "")
            .observe(dur_ns);
        self.obs
            .histogram("crashpad", "checkpoint_bytes", "")
            .observe(size);
        if !self.checkpoints.record_snapshot(name, bytes) {
            self.obs.counter("crashpad", "snapshots_elided", "").inc();
        }
    }

    /// Second half of a protected dispatch: fold the raw delivery outcome
    /// into checkpoint bookkeeping and, on failure, the recovery protocol.
    /// The `app` handle must be the same one [`CrashPad::prepare`]
    /// checkpointed for this delivery.
    #[allow(clippy::too_many_arguments)]
    pub fn complete(
        &mut self,
        app: &mut dyn RecoverableApp,
        name: &str,
        event: &Event,
        delivery: DeliveryResult,
        topology: &TopologyView,
        devices: &DeviceView,
        now: SimTime,
    ) -> DispatchResult {
        match delivery {
            DeliveryResult::Ok(commands) => {
                self.checkpoints.record_delivered(name, event);
                DispatchResult::Delivered(commands)
            }
            DeliveryResult::Crashed { panic_message } => {
                self.stats.failures += 1;
                self.obs.trace_event("deliver_fail", name, "crash");
                self.obs.record(RecordKind::AppCrash {
                    app: name.to_string(),
                    detail: panic_message.clone(),
                });
                self.recover(
                    app,
                    name,
                    event,
                    FailureKind::FailStop { panic_message },
                    topology,
                    devices,
                    now,
                )
            }
            DeliveryResult::CommFailure => {
                self.stats.failures += 1;
                self.obs.trace_event("deliver_fail", name, "comm_failure");
                self.obs.record(RecordKind::CommFailure {
                    app: name.to_string(),
                });
                self.recover(
                    app,
                    name,
                    event,
                    FailureKind::CommFailure,
                    topology,
                    devices,
                    now,
                )
            }
        }
    }

    /// Recover from a byzantine failure: the app ran fine but its output
    /// violated invariants (the commands were rejected by the gate before
    /// reaching the network). The app's internal state may assume its
    /// rejected rules exist, so it is rolled back to the pre-event snapshot
    /// and the offending event handled per policy.
    #[allow(clippy::too_many_arguments)]
    pub fn recover_byzantine(
        &mut self,
        app: &mut dyn RecoverableApp,
        name: &str,
        event: &Event,
        violations: usize,
        topology: &TopologyView,
        devices: &DeviceView,
        now: SimTime,
    ) -> DispatchResult {
        self.stats.byzantine_failures += 1;
        self.obs.trace_event("deliver_fail", name, "byzantine");
        self.obs.record(RecordKind::ByzantineBlocked {
            app: name.to_string(),
            violations: violations as u64,
        });
        self.recover(
            app,
            name,
            event,
            FailureKind::Byzantine { violations },
            topology,
            devices,
            now,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn recover(
        &mut self,
        app: &mut dyn RecoverableApp,
        name: &str,
        event: &Event,
        failure: FailureKind,
        topology: &TopologyView,
        devices: &DeviceView,
        now: SimTime,
    ) -> DispatchResult {
        let policy = self.policies.lookup(name, event.kind());
        let log = vec![
            format!("failure dispatching {:?} to '{name}'", event.kind()),
            format!("policy resolved to {policy}"),
        ];

        if policy == CompromisePolicy::NoCompromise {
            self.stats.apps_let_die += 1;
            self.obs.trace_event("app_dead", name, "let_die");
            self.record_verdict(name, policy, "let_die");
            let ticket = self.tickets.file(
                now,
                name,
                event.clone(),
                failure,
                log,
                RecoveryTaken::LetDie,
            );
            self.obs.record(RecordKind::AppDead {
                app: name.to_string(),
            });
            return DispatchResult::AppDead { ticket };
        }

        // Restore to the pre-event state and replay the suffix.
        if !self.restore_and_replay(app, name, topology, devices, now) {
            // No checkpoint to restore (snapshot never succeeded): dead.
            self.stats.apps_let_die += 1;
            self.obs.trace_event("app_dead", name, "no_checkpoint");
            self.record_verdict(name, policy, "no_checkpoint_let_die");
            let ticket = self.tickets.file(
                now,
                name,
                event.clone(),
                failure,
                log,
                RecoveryTaken::LetDie,
            );
            self.obs.record(RecordKind::AppDead {
                app: name.to_string(),
            });
            return DispatchResult::AppDead { ticket };
        }
        self.stats.recoveries += 1;

        if policy == CompromisePolicy::Equivalence {
            if let Some(equivalents) = transform(event, topology, self.transform_direction) {
                let mut commands = Vec::new();
                let mut all_ok = true;
                for ev in &equivalents {
                    match app.deliver(ev, topology, devices, now) {
                        DeliveryResult::Ok(mut cmds) => {
                            self.checkpoints.record_delivered(name, ev);
                            commands.append(&mut cmds);
                        }
                        _ => {
                            all_ok = false;
                            break;
                        }
                    }
                }
                if all_ok {
                    self.stats.events_transformed += 1;
                    self.obs.trace_event("transform", name, "equivalents_ok");
                    self.record_verdict(name, policy, "transformed");
                    self.obs.record(RecordKind::EventTransformed {
                        app: name.to_string(),
                    });
                    let failure_class = failure_class(&failure);
                    let ticket = self.tickets.file(
                        now,
                        name,
                        event.clone(),
                        failure,
                        log,
                        RecoveryTaken::Transformed,
                    );
                    self.obs.record(RecordKind::TicketFiled {
                        app: name.to_string(),
                        failure: failure_class.to_string(),
                    });
                    return DispatchResult::Recovered {
                        recovery: RecoveryTaken::Transformed,
                        commands,
                        ticket,
                    };
                }
                // The equivalent events crash too: restore once more and
                // fall through to ignoring.
                self.stats.transform_fallbacks += 1;
                let _ = self.restore_and_replay(app, name, topology, devices, now);
            } else {
                self.stats.transform_fallbacks += 1;
            }
        }

        // Absolute compromise: the offending event is dropped on the floor.
        self.stats.events_ignored += 1;
        self.record_verdict(name, policy, "ignored");
        self.obs.record(RecordKind::EventDropped {
            app: name.to_string(),
        });
        let failure_class = failure_class(&failure);
        let ticket = self.tickets.file(
            now,
            name,
            event.clone(),
            failure,
            log,
            RecoveryTaken::Ignored,
        );
        self.obs.record(RecordKind::TicketFiled {
            app: name.to_string(),
            failure: failure_class.to_string(),
        });
        DispatchResult::Recovered {
            recovery: RecoveryTaken::Ignored,
            commands: Vec::new(),
            ticket,
        }
    }

    /// Journal the compromise-policy engine's verdict for an incident.
    fn record_verdict(&self, name: &str, policy: CompromisePolicy, verdict: &str) {
        self.obs.trace_event("policy", name, verdict);
        self.obs.record(RecordKind::PolicyDecision {
            app: name.to_string(),
            policy: policy.to_string(),
            verdict: verdict.to_string(),
        });
        self.obs
            .counter("crashpad", "policy_verdicts", verdict)
            .inc();
    }

    /// Restore the latest checkpoint and replay the delivered-event suffix.
    ///
    /// Commands emitted during replay are **discarded**: they were already
    /// executed against the network the first time around; replay only
    /// rebuilds app-internal state (the §5 checkpoint-every-N mechanism).
    fn restore_and_replay(
        &mut self,
        app: &mut dyn RecoverableApp,
        name: &str,
        topology: &TopologyView,
        devices: &DeviceView,
        now: SimTime,
    ) -> bool {
        let Some(plan) = self.checkpoints.recovery_plan(name) else {
            return false;
        };
        let restore_started = Instant::now();
        if app.restore(&plan.snapshot.bytes).is_err() {
            self.obs.trace_event("restore", name, "err");
            return false;
        }
        self.obs.trace_event("restore", name, "ok");
        let restore_ns = u64::try_from(restore_started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.obs.record(RecordKind::CheckpointRestored {
            app: name.to_string(),
            bytes: plan.snapshot.bytes.len() as u64,
            dur_ns: restore_ns,
        });
        self.obs
            .histogram("crashpad", "restore_ns", "")
            .observe(restore_ns);
        let replay_started = Instant::now();
        let mut replayed = 0u64;
        for ev in &plan.replay {
            match app.deliver(ev, topology, devices, now) {
                DeliveryResult::Ok(_) => {
                    self.stats.events_replayed += 1;
                    replayed += 1;
                }
                _ => {
                    // A replayed event crashed (non-deterministic bug, or
                    // state divergence). Restore the snapshot again and stop
                    // replaying — the app loses the suffix but lives.
                    self.stats.replay_failures += 1;
                    self.obs.counter("crashpad", "replay_failures", "").inc();
                    if app.restore(&plan.snapshot.bytes).is_err() {
                        return false;
                    }
                    break;
                }
            }
        }
        self.obs
            .trace_event("replay", name, &format!("replayed={replayed}"));
        self.obs.record(RecordKind::ReplayDone {
            app: name.to_string(),
            events_replayed: replayed,
            dur_ns: u64::try_from(replay_started.elapsed().as_nanos()).unwrap_or(u64::MAX),
        });
        true
    }
}

/// Stable export name for a failure kind (matches journal conventions).
fn failure_class(failure: &FailureKind) -> &'static str {
    match failure {
        FailureKind::FailStop { .. } => "fail_stop",
        FailureKind::CommFailure => "comm_failure",
        FailureKind::HeartbeatLoss => "heartbeat_loss",
        FailureKind::Byzantine { .. } => "byzantine",
    }
}

// -------------------------------------------------------------------------
// in-process sandbox
// -------------------------------------------------------------------------

/// An in-process [`RecoverableApp`]: the app runs on the caller's thread
/// with panic containment. After a panic the sandbox is *dead* — further
/// deliveries report [`DeliveryResult::Crashed`] without running the app —
/// until a successful [`RecoverableApp::restore`], mirroring process death
/// and CRIU revival.
pub struct LocalSandbox {
    app: Box<dyn SdnApp>,
    dead: bool,
}

impl LocalSandbox {
    /// Sandbox an app.
    #[must_use]
    pub fn new(app: Box<dyn SdnApp>) -> Self {
        LocalSandbox { app, dead: false }
    }

    /// The app's name.
    #[must_use]
    pub fn name(&self) -> &str {
        self.app.name()
    }

    /// Is the sandboxed app dead?
    #[must_use]
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Access the wrapped app (for assertions in tests).
    #[must_use]
    pub fn app(&self) -> &dyn SdnApp {
        self.app.as_ref()
    }
}

impl RecoverableApp for LocalSandbox {
    fn deliver(
        &mut self,
        event: &Event,
        topology: &TopologyView,
        devices: &DeviceView,
        now: SimTime,
    ) -> DeliveryResult {
        if self.dead {
            return DeliveryResult::Crashed {
                panic_message: "app is dead".into(),
            };
        }
        let mut ctx = Ctx::new(now, topology, devices);
        match catch_unwind(AssertUnwindSafe(|| self.app.on_event(event, &mut ctx))) {
            Ok(()) => DeliveryResult::Ok(ctx.into_commands()),
            Err(payload) => {
                self.dead = true;
                DeliveryResult::Crashed {
                    panic_message: panic_text(&*payload),
                }
            }
        }
    }

    fn snapshot(&mut self) -> Result<Vec<u8>, String> {
        if self.dead {
            return Err("app is dead".into());
        }
        Ok(self.app.snapshot())
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), String> {
        self.app.restore(bytes).map_err(|e| e.to_string())?;
        self.dead = false;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::CompromisePolicy;
    use legosdn_codec::Codec;
    use legosdn_controller::app::RestoreError;
    use legosdn_controller::event::EventKind;
    use legosdn_netsim::Endpoint;
    use legosdn_openflow::prelude::*;

    /// Counts events; crashes on SwitchDown. Deterministic.
    #[derive(Default)]
    struct Brittle {
        state: BrittleState,
    }

    #[derive(Clone, Debug, Default, Codec)]
    struct BrittleState {
        events: u64,
        link_downs: u64,
    }

    impl SdnApp for Brittle {
        fn name(&self) -> &str {
            "brittle"
        }
        fn subscriptions(&self) -> Vec<EventKind> {
            EventKind::ALL.to_vec()
        }
        fn on_event(&mut self, event: &Event, _ctx: &mut Ctx<'_>) {
            if matches!(event, Event::SwitchDown(_)) {
                panic!("brittle cannot handle switch-down");
            }
            self.state.events += 1;
            if matches!(event, Event::LinkDown { .. }) {
                self.state.link_downs += 1;
            }
        }
        fn snapshot(&self) -> Vec<u8> {
            legosdn_controller::snapshot::to_bytes(&self.state).unwrap()
        }
        fn restore(&mut self, bytes: &[u8]) -> Result<(), RestoreError> {
            self.state = legosdn_controller::snapshot::from_bytes(bytes)
                .map_err(|e| RestoreError(e.to_string()))?;
            Ok(())
        }
    }

    fn topo2() -> TopologyView {
        let mut t = TopologyView::default();
        t.switch_up(DatapathId(1), vec![]);
        t.switch_up(DatapathId(2), vec![]);
        t.link_up(
            Endpoint::new(DatapathId(1), 1),
            Endpoint::new(DatapathId(2), 1),
        );
        t
    }

    fn pad(policy: CompromisePolicy, interval: u64) -> CrashPad {
        CrashPad::new(CrashPadConfig {
            checkpoints: CheckpointPolicy {
                interval,
                history: 8,
                ..CheckpointPolicy::default()
            },
            policies: PolicyTable::with_default(policy),
            transform_direction: TransformDirection::Decompose,
        })
    }

    fn dispatch(
        pad: &mut CrashPad,
        sandbox: &mut LocalSandbox,
        ev: &Event,
        topo: &TopologyView,
    ) -> DispatchResult {
        let dev = DeviceView::default();
        let name = sandbox.name().to_string();
        pad.dispatch(sandbox, &name, ev, topo, &dev, SimTime::ZERO)
    }

    fn brittle_state(sandbox: &LocalSandbox) -> BrittleState {
        legosdn_controller::snapshot::from_bytes(&sandbox.app().snapshot()).unwrap()
    }

    #[test]
    fn healthy_dispatch_passes_through() {
        let mut pad = pad(CompromisePolicy::Absolute, 1);
        let mut sandbox = LocalSandbox::new(Box::new(Brittle::default()));
        let topo = topo2();
        let r = dispatch(
            &mut pad,
            &mut sandbox,
            &Event::SwitchUp(DatapathId(1)),
            &topo,
        );
        assert!(matches!(r, DispatchResult::Delivered(_)));
        assert_eq!(brittle_state(&sandbox).events, 1);
        assert_eq!(pad.stats().failures, 0);
    }

    #[test]
    fn split_halves_match_monolithic_dispatch() {
        // One pad dispatches monolithically, the other through the
        // prepare / deliver / complete halves; outcomes, stats, and
        // post-recovery app state must be identical.
        let mut mono = pad(CompromisePolicy::Absolute, 1);
        let mut split = pad(CompromisePolicy::Absolute, 1);
        let mut sandbox_a = LocalSandbox::new(Box::new(Brittle::default()));
        let mut sandbox_b = LocalSandbox::new(Box::new(Brittle::default()));
        let topo = topo2();
        let dev = DeviceView::default();
        let events = [
            Event::SwitchUp(DatapathId(1)),
            Event::SwitchDown(DatapathId(1)), // crashes Brittle
            Event::SwitchUp(DatapathId(2)),
        ];
        for ev in &events {
            let a = mono.dispatch(&mut sandbox_a, "brittle", ev, &topo, &dev, SimTime::ZERO);
            split.prepare(&mut sandbox_b, "brittle");
            let delivery = sandbox_b.deliver(ev, &topo, &dev, SimTime::ZERO);
            let b = split.complete(
                &mut sandbox_b,
                "brittle",
                ev,
                delivery,
                &topo,
                &dev,
                SimTime::ZERO,
            );
            assert_eq!(a, b);
        }
        assert_eq!(mono.stats(), split.stats());
        assert_eq!(
            brittle_state(&sandbox_a).events,
            brittle_state(&sandbox_b).events
        );
    }

    #[test]
    fn absolute_compromise_ignores_and_survives() {
        let mut pad = pad(CompromisePolicy::Absolute, 1);
        let mut sandbox = LocalSandbox::new(Box::new(Brittle::default()));
        let topo = topo2();
        dispatch(
            &mut pad,
            &mut sandbox,
            &Event::SwitchUp(DatapathId(1)),
            &topo,
        );
        let r = dispatch(
            &mut pad,
            &mut sandbox,
            &Event::SwitchDown(DatapathId(1)),
            &topo,
        );
        match r {
            DispatchResult::Recovered {
                recovery,
                commands,
                ticket,
            } => {
                assert_eq!(recovery, RecoveryTaken::Ignored);
                assert!(commands.is_empty());
                assert!(pad.tickets.get(ticket).is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(!sandbox.is_dead(), "restored and alive");
        // State is pre-crash: exactly one event seen, poison not counted.
        assert_eq!(brittle_state(&sandbox).events, 1);
        // And the app keeps working.
        let r = dispatch(
            &mut pad,
            &mut sandbox,
            &Event::SwitchUp(DatapathId(2)),
            &topo,
        );
        assert!(matches!(r, DispatchResult::Delivered(_)));
        assert_eq!(brittle_state(&sandbox).events, 2);
    }

    #[test]
    fn no_compromise_lets_the_app_die() {
        let mut pad = pad(CompromisePolicy::NoCompromise, 1);
        let mut sandbox = LocalSandbox::new(Box::new(Brittle::default()));
        let topo = topo2();
        let r = dispatch(
            &mut pad,
            &mut sandbox,
            &Event::SwitchDown(DatapathId(1)),
            &topo,
        );
        assert!(matches!(r, DispatchResult::AppDead { .. }));
        assert!(sandbox.is_dead());
        assert_eq!(pad.stats().apps_let_die, 1);
    }

    #[test]
    fn equivalence_transforms_switch_down_into_link_downs() {
        let mut pad = pad(CompromisePolicy::Equivalence, 1);
        let mut sandbox = LocalSandbox::new(Box::new(Brittle::default()));
        let topo = topo2();
        let r = dispatch(
            &mut pad,
            &mut sandbox,
            &Event::SwitchDown(DatapathId(1)),
            &topo,
        );
        match r {
            DispatchResult::Recovered { recovery, .. } => {
                assert_eq!(recovery, RecoveryTaken::Transformed);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Brittle handles LinkDown fine: it saw the equivalent event.
        let st = brittle_state(&sandbox);
        assert_eq!(st.link_downs, 1, "switch 1 had one link");
        assert_eq!(pad.stats().events_transformed, 1);
    }

    #[test]
    fn equivalence_falls_back_to_ignore_when_no_equivalent() {
        let mut pad = pad(CompromisePolicy::Equivalence, 1);
        // Tick has no equivalent; Brittle crashes on SwitchDown only — use
        // an app that crashes on Tick.
        struct TickBomb;
        impl SdnApp for TickBomb {
            fn name(&self) -> &str {
                "tickbomb"
            }
            fn subscriptions(&self) -> Vec<EventKind> {
                EventKind::ALL.to_vec()
            }
            fn on_event(&mut self, event: &Event, _ctx: &mut Ctx<'_>) {
                if matches!(event, Event::Tick(_)) {
                    panic!("tick bomb");
                }
            }
            fn snapshot(&self) -> Vec<u8> {
                vec![]
            }
            fn restore(&mut self, _: &[u8]) -> Result<(), RestoreError> {
                Ok(())
            }
        }
        let mut sandbox = LocalSandbox::new(Box::new(TickBomb));
        let topo = topo2();
        let dev = DeviceView::default();
        let r = pad.dispatch(
            &mut sandbox,
            "tickbomb",
            &Event::Tick(SimTime::ZERO),
            &topo,
            &dev,
            SimTime::ZERO,
        );
        match r {
            DispatchResult::Recovered { recovery, .. } => {
                assert_eq!(recovery, RecoveryTaken::Ignored);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(pad.stats().transform_fallbacks, 1);
        assert!(!sandbox.is_dead());
    }

    #[test]
    fn checkpoint_every_n_replays_suffix() {
        let mut pad = pad(CompromisePolicy::Absolute, 5);
        let mut sandbox = LocalSandbox::new(Box::new(Brittle::default()));
        let topo = topo2();
        // 3 healthy events (snapshot taken before the 1st only).
        for i in 0..3 {
            dispatch(
                &mut pad,
                &mut sandbox,
                &Event::SwitchUp(DatapathId(i)),
                &topo,
            );
        }
        assert_eq!(pad.checkpoints.snapshots_taken, 1);
        // Crash: restore to snapshot (state=0 events) + replay 3.
        let r = dispatch(
            &mut pad,
            &mut sandbox,
            &Event::SwitchDown(DatapathId(1)),
            &topo,
        );
        assert!(matches!(r, DispatchResult::Recovered { .. }));
        assert_eq!(pad.stats().events_replayed, 3);
        assert_eq!(
            brittle_state(&sandbox).events,
            3,
            "suffix replay rebuilt state"
        );
    }

    #[test]
    fn deterministic_bug_recurs_and_is_survived_every_time() {
        let mut pad = pad(CompromisePolicy::Absolute, 1);
        let mut sandbox = LocalSandbox::new(Box::new(Brittle::default()));
        let topo = topo2();
        for _ in 0..5 {
            let r = dispatch(
                &mut pad,
                &mut sandbox,
                &Event::SwitchDown(DatapathId(1)),
                &topo,
            );
            assert!(matches!(r, DispatchResult::Recovered { .. }));
        }
        assert_eq!(pad.stats().failures, 5);
        assert_eq!(pad.stats().recoveries, 5);
        assert_eq!(pad.tickets.len(), 5);
        assert!(!sandbox.is_dead());
    }

    #[test]
    fn byzantine_recovery_rolls_app_state_back() {
        let mut pad = pad(CompromisePolicy::Absolute, 1);
        let mut sandbox = LocalSandbox::new(Box::new(Brittle::default()));
        let topo = topo2();
        let dev = DeviceView::default();
        // Healthy event that the GATE rejects (simulated byzantine).
        let ev = Event::SwitchUp(DatapathId(1));
        let r = pad.dispatch(&mut sandbox, "brittle", &ev, &topo, &dev, SimTime::ZERO);
        assert!(matches!(r, DispatchResult::Delivered(_)));
        assert_eq!(brittle_state(&sandbox).events, 1);
        // Pretend its output violated 2 invariants: recover.
        let r = pad.recover_byzantine(&mut sandbox, "brittle", &ev, 2, &topo, &dev, SimTime::ZERO);
        assert!(matches!(r, DispatchResult::Recovered { .. }));
        // State rolled back to before the byzantine event...
        assert_eq!(
            brittle_state(&sandbox).events,
            1,
            "replay rebuilt the pre-crash suffix"
        );
        assert_eq!(pad.stats().byzantine_failures, 1);
    }

    #[test]
    fn per_app_policy_overrides_default() {
        let mut config = CrashPadConfig {
            policies: PolicyTable::with_default(CompromisePolicy::Absolute),
            ..CrashPadConfig::default()
        };
        config
            .policies
            .set_app("brittle", CompromisePolicy::NoCompromise);
        let mut pad = CrashPad::new(config);
        let mut sandbox = LocalSandbox::new(Box::new(Brittle::default()));
        let topo = topo2();
        let r = dispatch(
            &mut pad,
            &mut sandbox,
            &Event::SwitchDown(DatapathId(1)),
            &topo,
        );
        assert!(matches!(r, DispatchResult::AppDead { .. }));
    }

    #[test]
    fn ticket_records_offending_event_and_failure() {
        let mut pad = pad(CompromisePolicy::Absolute, 1);
        let mut sandbox = LocalSandbox::new(Box::new(Brittle::default()));
        let topo = topo2();
        let r = dispatch(
            &mut pad,
            &mut sandbox,
            &Event::SwitchDown(DatapathId(7)),
            &topo,
        );
        let DispatchResult::Recovered { ticket, .. } = r else {
            panic!("expected recovery")
        };
        let t = pad.tickets.get(ticket).unwrap();
        assert_eq!(t.app, "brittle");
        assert!(matches!(t.offending_event, Event::SwitchDown(d) if d == DatapathId(7)));
        assert!(matches!(&t.failure, FailureKind::FailStop { panic_message }
            if panic_message.contains("switch-down")));
    }
}
