//! The availability–correctness policy language (paper §3.3).
//!
//! "Crash-Pad can support a simple policy language that allows operators to
//! specify, on a per application basis, the set of events, if any, that
//! they are willing to compromise on."
//!
//! Three compromise levels, most-specific rule wins:
//!
//! - **Absolute Compromise** — ignore the offending event; the app is
//!   failure-oblivious.
//! - **No Compromise** — let the app die; correctness over availability
//!   (the right setting for security apps).
//! - **Equivalence Compromise** — transform the event into equivalent ones
//!   (e.g. switch-down → per-link link-downs).

use legosdn_codec::Codec;
use legosdn_controller::event::EventKind;
use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

/// The three §3.3 compromise levels.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Codec)]
pub enum CompromisePolicy {
    Absolute,
    NoCompromise,
    Equivalence,
}

impl fmt::Display for CompromisePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompromisePolicy::Absolute => write!(f, "absolute"),
            CompromisePolicy::NoCompromise => write!(f, "no-compromise"),
            CompromisePolicy::Equivalence => write!(f, "equivalence"),
        }
    }
}

impl FromStr for CompromisePolicy {
    type Err = PolicyParseError;
    fn from_str(s: &str) -> Result<Self, PolicyParseError> {
        match s.to_ascii_lowercase().as_str() {
            "absolute" => Ok(CompromisePolicy::Absolute),
            "no-compromise" | "nocompromise" | "none" => Ok(CompromisePolicy::NoCompromise),
            "equivalence" | "equivalent" => Ok(CompromisePolicy::Equivalence),
            other => Err(PolicyParseError(format!("unknown policy '{other}'"))),
        }
    }
}

/// Parse failure for the policy language.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PolicyParseError(pub String);

impl fmt::Display for PolicyParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "policy parse error: {}", self.0)
    }
}

impl std::error::Error for PolicyParseError {}

fn parse_event_kind(s: &str) -> Result<EventKind, PolicyParseError> {
    Ok(match s.to_ascii_lowercase().as_str() {
        "switchup" | "switch-up" => EventKind::SwitchUp,
        "switchdown" | "switch-down" => EventKind::SwitchDown,
        "linkup" | "link-up" => EventKind::LinkUp,
        "linkdown" | "link-down" => EventKind::LinkDown,
        "portstatus" | "port-status" => EventKind::PortStatus,
        "packetin" | "packet-in" => EventKind::PacketIn,
        "flowremoved" | "flow-removed" => EventKind::FlowRemoved,
        "statsreply" | "stats-reply" => EventKind::StatsReply,
        "error" => EventKind::Error,
        "tick" => EventKind::Tick,
        other => return Err(PolicyParseError(format!("unknown event kind '{other}'"))),
    })
}

/// Operator policy table: default → per-app → per-(app, event kind).
#[derive(Clone, Debug, PartialEq, Codec)]
pub struct PolicyTable {
    pub default: CompromisePolicy,
    per_app: BTreeMap<String, CompromisePolicy>,
    per_app_event: BTreeMap<(String, EventKind), CompromisePolicy>,
}

impl Default for PolicyTable {
    fn default() -> Self {
        PolicyTable {
            default: CompromisePolicy::Absolute,
            per_app: BTreeMap::new(),
            per_app_event: BTreeMap::new(),
        }
    }
}

impl PolicyTable {
    /// A table with the given default.
    #[must_use]
    pub fn with_default(default: CompromisePolicy) -> Self {
        PolicyTable {
            default,
            ..PolicyTable::default()
        }
    }

    /// Set an app-wide policy.
    pub fn set_app(&mut self, app: &str, policy: CompromisePolicy) -> &mut Self {
        self.per_app.insert(app.to_string(), policy);
        self
    }

    /// Set a per-(app, event-kind) policy.
    pub fn set_app_event(
        &mut self,
        app: &str,
        kind: EventKind,
        policy: CompromisePolicy,
    ) -> &mut Self {
        self.per_app_event.insert((app.to_string(), kind), policy);
        self
    }

    /// Resolve the policy for an app crashing on an event kind.
    #[must_use]
    pub fn lookup(&self, app: &str, kind: EventKind) -> CompromisePolicy {
        if let Some(p) = self.per_app_event.get(&(app.to_string(), kind)) {
            return *p;
        }
        if let Some(p) = self.per_app.get(app) {
            return *p;
        }
        self.default
    }

    /// Parse the operator policy language. One directive per line:
    ///
    /// ```text
    /// # comments and blank lines are ignored
    /// default absolute
    /// app firewall use no-compromise
    /// app router on switch-down use equivalence
    /// ```
    pub fn parse(text: &str) -> Result<PolicyTable, PolicyParseError> {
        let mut table = PolicyTable::default();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let words: Vec<&str> = line.split_whitespace().collect();
            let fail = |msg: &str| {
                Err(PolicyParseError(format!(
                    "line {}: {msg}: '{line}'",
                    lineno + 1
                )))
            };
            match words.as_slice() {
                ["default", policy] => {
                    table.default = policy.parse()?;
                }
                ["app", name, "use", policy] => {
                    table.per_app.insert((*name).to_string(), policy.parse()?);
                }
                ["app", name, "on", kind, "use", policy] => {
                    table.per_app_event.insert(
                        ((*name).to_string(), parse_event_kind(kind)?),
                        policy.parse()?,
                    );
                }
                _ => return fail("unrecognized directive"),
            }
        }
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_specificity_order() {
        let mut t = PolicyTable::with_default(CompromisePolicy::Absolute);
        t.set_app("router", CompromisePolicy::Equivalence);
        t.set_app_event(
            "router",
            EventKind::PacketIn,
            CompromisePolicy::NoCompromise,
        );
        assert_eq!(
            t.lookup("router", EventKind::PacketIn),
            CompromisePolicy::NoCompromise
        );
        assert_eq!(
            t.lookup("router", EventKind::SwitchDown),
            CompromisePolicy::Equivalence
        );
        assert_eq!(
            t.lookup("hub", EventKind::PacketIn),
            CompromisePolicy::Absolute
        );
    }

    #[test]
    fn parse_full_language() {
        let text = r"
            # operator policy
            default equivalence
            app firewall use no-compromise
            app router on switch-down use equivalence
            app router on packet-in use absolute
        ";
        let t = PolicyTable::parse(text).unwrap();
        assert_eq!(t.default, CompromisePolicy::Equivalence);
        assert_eq!(
            t.lookup("firewall", EventKind::PacketIn),
            CompromisePolicy::NoCompromise
        );
        assert_eq!(
            t.lookup("router", EventKind::SwitchDown),
            CompromisePolicy::Equivalence
        );
        assert_eq!(
            t.lookup("router", EventKind::PacketIn),
            CompromisePolicy::Absolute
        );
        assert_eq!(
            t.lookup("router", EventKind::LinkUp),
            CompromisePolicy::Equivalence
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(PolicyTable::parse("defualt absolute").is_err());
        assert!(PolicyTable::parse("default sometimes").is_err());
        assert!(PolicyTable::parse("app x on nonsense use absolute").is_err());
        let err = PolicyTable::parse("default absolute\nbogus line here").unwrap_err();
        assert!(err.0.contains("line 2"));
    }

    #[test]
    fn policy_names_roundtrip() {
        for p in [
            CompromisePolicy::Absolute,
            CompromisePolicy::NoCompromise,
            CompromisePolicy::Equivalence,
        ] {
            assert_eq!(p.to_string().parse::<CompromisePolicy>().unwrap(), p);
        }
    }

    #[test]
    fn event_kind_names_parse() {
        assert_eq!(
            parse_event_kind("Switch-Down").unwrap(),
            EventKind::SwitchDown
        );
        assert_eq!(parse_event_kind("packetin").unwrap(), EventKind::PacketIn);
        assert!(parse_event_kind("flow").is_err());
    }
}
