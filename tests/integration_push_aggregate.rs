//! Fleet-level push/aggregate pipeline, end to end over real TCP:
//!
//! one `Aggregator` endpoint plus two concurrent campaign runtimes, each
//! with a private `Obs` wired at construction and a `PushExporter`
//! shipping snapshots. Asserts the acceptance criteria of the push
//! pipeline:
//!
//! - the merged `/metrics` carries per-campaign labels and a `_fleet`
//!   roll-up whose counters are monotone across scrapes;
//! - `/incidents` shows incidents from both campaigns in one total
//!   cross-campaign order (nondecreasing arrival epochs);
//! - `/healthz` reports both campaigns alive while they push;
//! - killing the aggregator mid-run never stalls a campaign — rounds keep
//!   advancing, pushes fail fast with backoff — and after a restart *on
//!   the same address* the exporters resume and re-deliver what their
//!   journal rings retained.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use legosdn::crashpad::{CheckpointPolicy, CrashPadConfig, PolicyTable, TransformDirection};
use legosdn::obs::{AggregateConfig, Aggregator, ObsServer, PushConfig, PushExporter};
use legosdn::prelude::*;

/// Scrape `path`, reading exactly `Content-Length` body bytes and closing
/// first so `TIME_WAIT` stays client-side (the aggregator's port must
/// remain immediately re-bindable after a kill).
fn scrape(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to aggregator");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").as_bytes())
        .expect("send scrape");
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        let n = stream.read(&mut chunk).expect("read response head");
        assert!(n > 0, "aggregator closed before responding");
        buf.extend_from_slice(&chunk[..n]);
        if let Some(end) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break end;
        }
    };
    let head = std::str::from_utf8(&buf[..head_end]).expect("utf8 head");
    let content_length: usize = head
        .lines()
        .filter_map(|l| l.split_once(':'))
        .find(|(n, _)| n.trim().eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.trim().parse().ok())
        .expect("Content-Length header");
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).expect("read response body");
        assert!(n > 0, "short body");
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    String::from_utf8(body).expect("utf8 body")
    // stream drops here: client closes first.
}

/// Poll until `pred` passes or the deadline expires; returns the last
/// scraped value either way.
fn poll_until(
    addr: SocketAddr,
    path: &str,
    deadline: Duration,
    pred: impl Fn(&str) -> bool,
) -> String {
    let begun = Instant::now();
    loop {
        let body = scrape(addr, path);
        if pred(&body) || begun.elapsed() > deadline {
            return body;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// The value of the first sample line whose name starts with `prefix`.
fn sample(body: &str, prefix: &str) -> Option<u64> {
    body.lines()
        .find(|l| l.starts_with(prefix))
        .and_then(|l| l.rsplit(' ').next()?.parse().ok())
}

/// One campaign runtime driving fault rounds on a worker thread until
/// stopped, with a private obs instance pushed to `target`.
struct CampaignThread {
    rounds: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl CampaignThread {
    fn spawn(name: &'static str, target: SocketAddr) -> CampaignThread {
        let rounds = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        let thread_rounds = Arc::clone(&rounds);
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name(format!("campaign-{name}"))
            .spawn(move || run_campaign(name, target, &thread_rounds, &thread_stop))
            .expect("spawn campaign thread");
        CampaignThread {
            rounds,
            stop,
            handle: Some(handle),
        }
    }

    fn rounds(&self) -> u64 {
        self.rounds.load(Ordering::Acquire)
    }

    fn finish(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            h.join().expect("campaign thread panicked");
        }
    }
}

fn run_campaign(
    name: &'static str,
    target: SocketAddr,
    rounds: &Arc<AtomicU64>,
    stop: &Arc<AtomicBool>,
) {
    let topo = Topology::linear(3, 1);
    let mut net = Network::new(&topo);
    let mut rt = LegoSdnRuntime::new(LegoSdnConfig {
        crashpad: CrashPadConfig {
            checkpoints: CheckpointPolicy {
                interval: 2,
                history: 8,
                ..CheckpointPolicy::default()
            },
            policies: PolicyTable::with_default(CompromisePolicy::Absolute),
            transform_direction: TransformDirection::Decompose,
        },
        checker: Some(Checker::new(vec![
            Invariant::NoBlackHoles,
            Invariant::NoLoops,
        ])),
        obs: ObsConfig::instance(Obs::new()),
        ..LegoSdnConfig::default()
    });
    let poison = topo.hosts[2].mac;
    rt.attach(Box::new(LearningSwitch::new())).unwrap();
    rt.attach(Box::new(FaultyApp::new(
        Box::new(ShortestPathRouter::new()),
        BugTrigger::OnEventKind(EventKind::SwitchDown),
        BugEffect::Crash,
    )))
    .unwrap();
    rt.run_cycle(&mut net);

    let mut cfg = PushConfig::new(target, name);
    cfg.period = Duration::from_millis(20);
    cfg.deadline = Duration::from_millis(500);
    cfg.backoff_initial = Duration::from_millis(20);
    cfg.backoff_max = Duration::from_millis(100);
    let exporter = PushExporter::start(rt.obs(), cfg);

    let (a, b) = (topo.hosts[0].mac, topo.hosts[1].mac);
    while !stop.load(Ordering::Acquire) {
        for _ in 0..2 {
            let _ = net.inject(a, Packet::ethernet(a, b));
            rt.run_cycle(&mut net);
        }
        let _ = net.inject(a, Packet::ethernet(a, poison));
        rt.run_cycle(&mut net);
        let _ = net.set_switch_up(DatapathId(2), false);
        rt.run_cycle(&mut net);
        let _ = net.set_switch_up(DatapathId(2), true);
        rt.run_cycle(&mut net);
        rounds.fetch_add(1, Ordering::Release);
        std::thread::sleep(Duration::from_millis(5));
    }
    exporter.shutdown();
}

fn start_aggregator(addr: SocketAddr) -> (Arc<Aggregator>, ObsServer) {
    let aggregator = Arc::new(Aggregator::new(AggregateConfig {
        liveness_window: Duration::from_millis(500),
        ..AggregateConfig::default()
    }));
    // close_grace: responses wait for the client FIN, keeping the listening
    // port free of TIME_WAIT so the kill/restart below can re-bind it.
    let server = ObsServer::builder()
        .addr(addr)
        .close_grace(Duration::from_secs(1))
        .start_with(aggregator.clone(), aggregator.obs())
        .expect("bind aggregator");
    (aggregator, server)
}

#[test]
fn fleet_pipeline_two_campaigns_survive_aggregator_restart() {
    // Injected crashes are contained by design; keep test output readable.
    std::panic::set_hook(Box::new(|_| {}));

    let (_aggregator, server) = start_aggregator(SocketAddr::from(([127, 0, 0, 1], 0)));
    let addr = server.local_addr();

    let alpha = CampaignThread::spawn("alpha", addr);
    let beta = CampaignThread::spawn("beta", addr);

    // Phase 1 — both campaigns visible in the merged view.
    let metrics = poll_until(addr, "/metrics", Duration::from_secs(10), |m| {
        m.contains("campaign=\"alpha\"")
            && m.contains("campaign=\"beta\"")
            && m.contains("campaign=\"_fleet\"")
    });
    assert!(
        metrics.contains("campaign=\"alpha\"") && metrics.contains("campaign=\"beta\""),
        "both campaign labels in merged /metrics:\n{metrics}"
    );
    assert!(
        metrics.contains("# TYPE"),
        "exposition carries TYPE comments"
    );

    // Merged fleet counters are monotone between scrapes.
    let fleet_key = "legosdn_core_dispatches{campaign=\"_fleet\"}";
    let first = sample(&metrics, fleet_key).expect("fleet dispatches sample");
    let later = poll_until(addr, "/metrics", Duration::from_secs(10), |m| {
        sample(m, fleet_key).is_some_and(|v| v > first)
    });
    let second = sample(&later, fleet_key).expect("fleet dispatches sample (second)");
    assert!(
        second > first,
        "fleet counter is monotone: {first} then {second}"
    );

    // Incidents from both campaigns, in one total (epoch, seq) order.
    let incidents = poll_until(addr, "/metrics.json", Duration::from_secs(10), |j| {
        j.contains("\"campaign\":\"alpha\",\"epoch\":")
            && j.contains("\"campaign\":\"beta\",\"epoch\":")
    });
    let epochs: Vec<u64> = incidents
        .lines()
        .filter(|l| l.contains("\"epoch\":"))
        .filter_map(|l| {
            let rest = l.split("\"epoch\":").nth(1)?;
            rest.split(',').next()?.trim().parse().ok()
        })
        .collect();
    assert!(
        epochs.len() >= 2,
        "incidents from both campaigns:\n{incidents}"
    );
    assert!(
        epochs.windows(2).all(|w| w[0] <= w[1]),
        "incident epochs are nondecreasing (total order): {epochs:?}"
    );

    // Healthz: both alive.
    let health = poll_until(addr, "/healthz", Duration::from_secs(5), |h| {
        h.contains("campaign=alpha alive=true") && h.contains("campaign=beta alive=true")
    });
    assert!(health.starts_with("ok"), "healthy fleet:\n{health}");

    // Phase 2 — kill the aggregator mid-run. Campaigns must keep making
    // progress while their pushes fail and back off.
    server.shutdown();
    let rounds_at_kill = (alpha.rounds(), beta.rounds());
    std::thread::sleep(Duration::from_millis(400));
    assert!(
        alpha.rounds() > rounds_at_kill.0 && beta.rounds() > rounds_at_kill.1,
        "campaigns never stall on a dead aggregator: {rounds_at_kill:?} then \
         ({}, {})",
        alpha.rounds(),
        beta.rounds()
    );

    // Phase 3 — restart on the SAME address (fresh state). Exporters must
    // reconnect, get rewound by the low ack, and re-deliver retained
    // journal records.
    let begun = Instant::now();
    let (_aggregator2, server2) = loop {
        match std::panic::catch_unwind(|| start_aggregator(addr)) {
            Ok(pair) => break pair,
            Err(_) if begun.elapsed() < Duration::from_secs(5) => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => std::panic::resume_unwind(e),
        }
    };
    let metrics = poll_until(addr, "/metrics", Duration::from_secs(10), |m| {
        m.contains("campaign=\"alpha\"") && m.contains("campaign=\"beta\"")
    });
    assert!(
        metrics.contains("campaign=\"alpha\"") && metrics.contains("campaign=\"beta\""),
        "pushes resumed after restart:\n{metrics}"
    );
    let incidents = poll_until(addr, "/incidents", Duration::from_secs(10), |i| {
        i.contains("campaign=alpha") && i.contains("campaign=beta")
    });
    assert!(
        incidents.contains("campaign=alpha") && incidents.contains("campaign=beta"),
        "rewound exporters re-delivered incident records:\n{incidents}"
    );

    alpha.finish();
    beta.finish();
    server2.shutdown();
}
