//! Integration: AppVisor isolation end-to-end (E2) — real apps behind the
//! proxy over both transports, crash containment, comm-failure detection,
//! and checkpoint/restore through the RPC plane.

use legosdn::appvisor::{AppVisorProxy, DeliverOutcome, ProxyConfig, StubConfig, TransportKind};
use legosdn::prelude::*;
use std::time::Duration;

fn proxy(report_crashes: bool) -> AppVisorProxy {
    AppVisorProxy::new(ProxyConfig {
        deliver_timeout: Duration::from_millis(300),
        rpc_timeout: Duration::from_secs(2),
        heartbeat_timeout: Duration::from_millis(100),
        stub: StubConfig {
            heartbeat_period: Duration::from_millis(10),
            report_crashes,
        },
        ..Default::default()
    })
}

fn packet_in_event(dst: u64) -> Event {
    Event::PacketIn(
        DatapathId(1),
        PacketIn {
            buffer_id: BufferId::NONE,
            in_port: PortNo::Phys(1),
            reason: PacketInReason::NoMatch,
            packet: Packet::ethernet(MacAddr::from_index(1), MacAddr::from_index(dst)),
        },
    )
}

fn deliver_over(kind: TransportKind) {
    let mut p = proxy(true);
    let h = p.launch_app(Box::new(LearningSwitch::new()), kind).unwrap();
    assert_eq!(p.app_name(h).unwrap(), "learning-switch");
    let topo = legosdn::controller::services::TopologyView::default();
    let dev = legosdn::controller::services::DeviceView::default();
    // Unknown destination → the app answers with a flood packet-out.
    match p
        .deliver(h, &packet_in_event(9), &topo, &dev, SimTime::ZERO)
        .unwrap()
    {
        DeliverOutcome::Commands(cmds) => {
            assert_eq!(cmds.len(), 1);
            assert!(matches!(cmds[0].msg, Message::PacketOut(_)));
        }
        other => panic!("unexpected {other:?}"),
    }
    let stats = p.wire_stats(h).unwrap();
    assert!(stats.bytes_sent > 0 && stats.bytes_received > 0);
    let reports = p.shutdown();
    assert_eq!(reports[0].events_processed, 1);
}

#[test]
fn real_app_behind_channel_transport() {
    deliver_over(TransportKind::Channel);
}

#[test]
fn real_app_behind_udp_transport() {
    deliver_over(TransportKind::Udp);
}

#[test]
fn real_app_behind_tcp_transport() {
    deliver_over(TransportKind::Tcp);
}

#[test]
fn crash_containment_with_explicit_report() {
    let mut p = proxy(true);
    let h = p
        .launch_app(
            Box::new(FaultyApp::new(
                Box::new(Hub::new()),
                BugTrigger::OnPacketToMac(MacAddr::from_index(13)),
                BugEffect::Crash,
            )),
            TransportKind::Channel,
        )
        .unwrap();
    let topo = legosdn::controller::services::TopologyView::default();
    let dev = legosdn::controller::services::DeviceView::default();

    // The paper's discipline: snapshot before every dispatch.
    let checkpoint = p.snapshot(h).unwrap();
    assert!(matches!(
        p.deliver(h, &packet_in_event(2), &topo, &dev, SimTime::ZERO)
            .unwrap(),
        DeliverOutcome::Commands(_)
    ));
    let checkpoint2 = p.snapshot(h).unwrap();
    match p
        .deliver(h, &packet_in_event(13), &topo, &dev, SimTime::ZERO)
        .unwrap()
    {
        DeliverOutcome::Crashed { panic_message } => {
            assert!(panic_message.contains("injected bug"));
        }
        other => panic!("unexpected {other:?}"),
    }
    assert!(!p.is_alive(h).unwrap());
    // Restore-and-retry reproduces (deterministic bug).
    assert!(p.restore(h, &checkpoint2).unwrap());
    assert!(matches!(
        p.deliver(h, &packet_in_event(13), &topo, &dev, SimTime::ZERO)
            .unwrap(),
        DeliverOutcome::Crashed { .. }
    ));
    // Restore to the pre-traffic checkpoint and ignore the poison: alive.
    assert!(p.restore(h, &checkpoint).unwrap());
    assert!(matches!(
        p.deliver(h, &packet_in_event(2), &topo, &dev, SimTime::ZERO)
            .unwrap(),
        DeliverOutcome::Commands(_)
    ));
    let _ = p.shutdown();
}

#[test]
fn silent_death_detected_as_comm_failure_over_udp() {
    let mut p = proxy(false); // stub dies silently, like a real process
    let h = p
        .launch_app(
            Box::new(FaultyApp::new(
                Box::new(Hub::new()),
                BugTrigger::OnNthEvent(1),
                BugEffect::Crash,
            )),
            TransportKind::Udp,
        )
        .unwrap();
    let topo = legosdn::controller::services::TopologyView::default();
    let dev = legosdn::controller::services::DeviceView::default();
    let outcome = p
        .deliver(h, &packet_in_event(2), &topo, &dev, SimTime::ZERO)
        .unwrap();
    assert_eq!(outcome, DeliverOutcome::CommFailure);
    assert_eq!(p.wire_stats(h).unwrap().comm_failures, 1);
    // Restore revives even a silent corpse. A FaultyApp snapshot nests the
    // inner app's, so use a freshly built FaultyApp's snapshot as donor.
    let donor = FaultyApp::new(
        Box::new(Hub::new()),
        BugTrigger::OnNthEvent(1),
        BugEffect::Crash,
    );
    assert!(p.restore(h, &donor.snapshot()).unwrap());
    // The app is alive again, but the deterministic OnNthEvent(1) trigger
    // re-fires on its (restored) first event — silence again.
    let outcome = p
        .deliver(h, &packet_in_event(2), &topo, &dev, SimTime::ZERO)
        .unwrap();
    assert_eq!(outcome, DeliverOutcome::CommFailure);
    let _ = p.shutdown();
}

#[test]
fn many_apps_one_proxy_independent_fault_domains() {
    let mut p = proxy(true);
    let crashy = p
        .launch_app(
            Box::new(FaultyApp::new(
                Box::new(Hub::new()),
                BugTrigger::OnEventKind(EventKind::PacketIn),
                BugEffect::Crash,
            )),
            TransportKind::Channel,
        )
        .unwrap();
    let healthy = p
        .launch_app(Box::new(LearningSwitch::new()), TransportKind::Channel)
        .unwrap();
    let topo = legosdn::controller::services::TopologyView::default();
    let dev = legosdn::controller::services::DeviceView::default();

    assert!(matches!(
        p.deliver(crashy, &packet_in_event(2), &topo, &dev, SimTime::ZERO)
            .unwrap(),
        DeliverOutcome::Crashed { .. }
    ));
    // The other app is untouched.
    assert!(p.is_alive(healthy).unwrap());
    assert!(matches!(
        p.deliver(healthy, &packet_in_event(2), &topo, &dev, SimTime::ZERO)
            .unwrap(),
        DeliverOutcome::Commands(_)
    ));
    let _ = p.shutdown();
}

#[test]
fn lossy_transport_degrades_to_comm_failures_not_hangs() {
    use legosdn::appvisor::{spawn_stub, ChannelTransport, FlakyTransport};
    // 40% frame loss in each direction: some deliveries ack, some time out
    // as comm failures; nothing hangs, panics, or poisons the proxy.
    let mut p = AppVisorProxy::new(ProxyConfig {
        deliver_timeout: Duration::from_millis(80),
        rpc_timeout: Duration::from_secs(2),
        heartbeat_timeout: Duration::from_millis(200),
        stub: StubConfig {
            heartbeat_period: Duration::from_millis(10),
            report_crashes: true,
        },
        ..Default::default()
    });
    let (proxy_side, stub_side) = ChannelTransport::pair();
    let proxy_side = FlakyTransport::new(proxy_side, 400, 7);
    let stub_side = FlakyTransport::new(stub_side, 400, 8);
    let handle = spawn_stub(
        stub_side,
        Box::new(Hub::new()),
        StubConfig {
            heartbeat_period: Duration::from_millis(10),
            report_crashes: true,
        },
    );
    // Registration itself may need retries under loss: register_transport
    // waits for the Register frame; at 40% loss it may be eaten, in which
    // case we accept the failure and end the test (the stub exits when the
    // proxy side drops).
    let Ok(h) = p.register_transport(Box::new(proxy_side), Some(handle)) else {
        return;
    };
    let topo = legosdn::controller::services::TopologyView::default();
    let dev = legosdn::controller::services::DeviceView::default();
    let mut acked = 0;
    let mut failed = 0;
    for i in 0..30u64 {
        match p.deliver(h, &packet_in_event(i + 2), &topo, &dev, SimTime::ZERO) {
            Ok(DeliverOutcome::Commands(_)) => acked += 1,
            Ok(_) => failed += 1,
            Err(_) => failed += 1,
        }
    }
    assert_eq!(acked + failed, 30);
    assert!(failed > 0, "40% loss must surface as comm failures");
    let _ = p.shutdown();
}

#[test]
fn isolated_runtime_end_to_end_over_udp() {
    // The full LegoSDN runtime with every app behind UDP stubs — the exact
    // paper prototype shape — surviving a deterministic crash.
    let topo = Topology::linear(2, 1);
    let mut net = Network::new(&topo);
    let mut rt = LegoSdnRuntime::new(LegoSdnConfig {
        isolation: IsolationMode::Udp,
        ..LegoSdnConfig::default()
    });
    let poison = topo.hosts[1].mac;
    rt.attach(Box::new(FaultyApp::new(
        Box::new(LearningSwitch::new()),
        BugTrigger::OnPacketToMac(poison),
        BugEffect::Crash,
    )))
    .unwrap();
    rt.run_cycle(&mut net);
    let a = topo.hosts[0].mac;
    net.inject(a, Packet::ethernet(a, poison)).unwrap();
    let report = rt.run_cycle(&mut net);
    assert!(report.recoveries >= 1, "{report:?}");
    // Clean traffic still works after recovery.
    net.inject(a, Packet::ethernet(a, MacAddr::from_index(50)))
        .unwrap();
    let report = rt.run_cycle(&mut net);
    assert!(report.commands > 0, "{report:?}");
    rt.shutdown();
}
