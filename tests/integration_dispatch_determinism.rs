//! Pipelined dispatch must be observationally identical to sequential
//! dispatch: same final flow tables, same NetLog transaction order, same
//! recovery counts — for local sandboxes and isolated stubs alike. The
//! pipeline overlaps app *processing* only; everything that touches the
//! network stays serialized in attach order (see DESIGN.md §9).

use legosdn::crashpad::{CheckpointPolicy, CrashPadConfig, PolicyTable, TransformDirection};
use legosdn::netlog::TxRecord;
use legosdn::netsim::FlowEntry;
use legosdn::prelude::*;

/// Everything one campaign run leaves behind that an operator could
/// observe: network state, transaction log, runtime counters.
#[derive(Debug, PartialEq)]
struct Residue {
    flow_tables: Vec<(DatapathId, Vec<FlowEntry>)>,
    txlog: Vec<TxRecord>,
    stats: RuntimeStats,
    recoveries: usize,
    byzantine_blocked: usize,
    commands: usize,
}

/// One fixed fault campaign — healthy traffic, a byzantine poke, a
/// fail-stop crash with recovery, more traffic, a tick — executed under
/// the given dispatch/isolation pair.
fn run_campaign(dispatch: DispatchMode, isolation: IsolationMode) -> Residue {
    let topo = Topology::linear(3, 2);
    let mut net = Network::new(&topo);
    let mut rt = LegoSdnRuntime::new(
        LegoSdnConfig {
            isolation,
            crashpad: CrashPadConfig {
                checkpoints: CheckpointPolicy {
                    interval: 2,
                    history: 8,
                    ..CheckpointPolicy::default()
                },
                policies: PolicyTable::with_default(CompromisePolicy::Absolute),
                transform_direction: TransformDirection::Decompose,
            },
            checker: Some(Checker::new(vec![
                Invariant::NoBlackHoles,
                Invariant::NoLoops,
            ])),
            ..LegoSdnConfig::default()
        }
        .with_obs(Obs::new())
        .with_dispatch(dispatch),
    );

    let poison = topo.hosts[topo.hosts.len() - 1].mac;
    // Roster: ≥4 apps, mixing healthy, fail-stop, and byzantine.
    rt.attach(Box::new(LearningSwitch::new())).unwrap();
    rt.attach(Box::new(Hub::new())).unwrap();
    rt.attach(Box::new(FaultyApp::new(
        Box::new(ShortestPathRouter::new()),
        BugTrigger::OnEventKind(EventKind::SwitchDown),
        BugEffect::Crash,
    )))
    .unwrap();
    rt.attach(Box::new(FaultyApp::new(
        Box::new(Hub::new()),
        BugTrigger::OnPacketToMac(poison),
        BugEffect::Blackhole,
    )))
    .unwrap();

    rt.run_cycle(&mut net); // handshake + discovery
    let (a, b) = (topo.hosts[0].mac, topo.hosts[1].mac);
    let bounce = DatapathId(3);
    let mut recoveries = 0;
    let mut byzantine_blocked = 0;
    let mut commands = 0;
    let mut absorb = |r: LegoCycleReport| {
        recoveries += r.recoveries;
        byzantine_blocked += r.byzantine_blocked;
        commands += r.commands;
    };
    for round in 0..3 {
        for _ in 0..3 {
            let _ = net.inject(a, Packet::ethernet(a, b));
            absorb(rt.run_cycle(&mut net));
        }
        let _ = net.inject(a, Packet::ethernet(a, poison));
        absorb(rt.run_cycle(&mut net));
        let _ = net.set_switch_up(bounce, false);
        absorb(rt.run_cycle(&mut net));
        let _ = net.set_switch_up(bounce, true);
        absorb(rt.run_cycle(&mut net));
        if round == 1 {
            absorb(rt.tick_apps(&mut net));
        }
    }

    let mut flow_tables: Vec<(DatapathId, Vec<FlowEntry>)> = net
        .switches()
        .map(|sw| (sw.dpid(), sw.table().iter().cloned().collect()))
        .collect();
    flow_tables.sort_by_key(|(dpid, _)| *dpid);
    let txlog = rt.netlog().log().iter().cloned().collect();
    let stats = rt.stats();
    rt.shutdown();
    Residue {
        flow_tables,
        txlog,
        stats,
        recoveries,
        byzantine_blocked,
        commands,
    }
}

fn assert_identical(isolation: IsolationMode) {
    let seq = run_campaign(DispatchMode::Sequential, isolation);
    let pipe = run_campaign(DispatchMode::Pipelined, isolation);
    // The campaign must actually exercise the interesting paths, or this
    // test proves nothing.
    assert!(
        seq.recoveries > 0,
        "campaign produced no fail-stop recovery"
    );
    assert!(
        seq.byzantine_blocked > 0,
        "campaign produced no byzantine block"
    );
    assert!(seq.commands > 0, "campaign produced no network commands");
    assert!(!seq.txlog.is_empty(), "campaign produced no transactions");
    assert_eq!(
        seq.flow_tables, pipe.flow_tables,
        "{isolation:?}: flow tables diverge between dispatch modes"
    );
    assert_eq!(
        seq.txlog, pipe.txlog,
        "{isolation:?}: NetLog transaction order diverges between dispatch modes"
    );
    assert_eq!(
        seq.stats, pipe.stats,
        "{isolation:?}: runtime counters diverge between dispatch modes"
    );
    assert_eq!(
        (seq.recoveries, seq.byzantine_blocked, seq.commands),
        (pipe.recoveries, pipe.byzantine_blocked, pipe.commands),
        "{isolation:?}: per-cycle reports diverge between dispatch modes"
    );
}

#[test]
fn pipelined_dispatch_is_deterministic_with_local_sandboxes() {
    assert_identical(IsolationMode::Local);
}

#[test]
fn pipelined_dispatch_is_deterministic_with_isolated_stubs() {
    assert_identical(IsolationMode::Channel);
}

#[test]
fn pipelined_matches_sequential_across_repeated_runs() {
    // Stub scheduling varies run to run; determinism must not depend on
    // a lucky interleaving.
    let reference = run_campaign(DispatchMode::Sequential, IsolationMode::Channel);
    for _ in 0..3 {
        let pipe = run_campaign(DispatchMode::Pipelined, IsolationMode::Channel);
        assert_eq!(reference.flow_tables, pipe.flow_tables);
        assert_eq!(reference.txlog, pipe.txlog);
        assert_eq!(reference.stats, pipe.stats);
    }
}
