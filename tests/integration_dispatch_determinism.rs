//! Pipelined dispatch must be observationally identical to sequential
//! dispatch: same final flow tables, same NetLog transaction order, same
//! recovery counts — for local sandboxes and isolated stubs alike. The
//! pipeline overlaps app *processing* only; everything that touches the
//! network stays serialized in attach order (see DESIGN.md §9). The
//! cross-event window (DESIGN.md §10) must preserve the same residue at
//! every depth, including across crash-triggered cancellation/re-send.

use legosdn::controller::app::{Ctx, RestoreError, SdnApp};
use legosdn::crashpad::{CheckpointPolicy, CrashPadConfig, PolicyTable, TransformDirection};
use legosdn::netlog::TxRecord;
use legosdn::netsim::FlowEntry;
use legosdn::prelude::*;

/// Everything one campaign run leaves behind that an operator could
/// observe: network state, transaction log, runtime counters.
#[derive(Debug, PartialEq)]
struct Residue {
    flow_tables: Vec<(DatapathId, Vec<FlowEntry>)>,
    txlog: Vec<TxRecord>,
    stats: RuntimeStats,
    recoveries: usize,
    byzantine_blocked: usize,
    commands: usize,
}

/// One fixed fault campaign — healthy traffic, a byzantine poke, a
/// fail-stop crash with recovery, more traffic, a tick — executed under
/// the given dispatch/isolation pair.
fn run_campaign(dispatch: DispatchMode, isolation: IsolationMode, depth: usize) -> Residue {
    run_campaign_io(dispatch, isolation, depth, IoMode::Blocking)
}

/// [`run_campaign`] with an explicit stub-I/O servicing mode (blocking
/// thread-per-stub vs the readiness-polled pools).
fn run_campaign_io(
    dispatch: DispatchMode,
    isolation: IsolationMode,
    depth: usize,
    io: IoMode,
) -> Residue {
    run_campaign_sharded(dispatch, isolation, depth, io, 1)
}

/// [`run_campaign_io`] with an explicit worker-shard count.
fn run_campaign_sharded(
    dispatch: DispatchMode,
    isolation: IsolationMode,
    depth: usize,
    io: IoMode,
    workers: usize,
) -> Residue {
    run_campaign_lookahead(dispatch, isolation, depth, io, workers, 1)
}

/// [`run_campaign_sharded`] with an explicit cross-cycle lookahead.
fn run_campaign_lookahead(
    dispatch: DispatchMode,
    isolation: IsolationMode,
    depth: usize,
    io: IoMode,
    workers: usize,
    lookahead: usize,
) -> Residue {
    let topo = Topology::linear(3, 2);
    let mut net = Network::new(&topo);
    let mut rt = LegoSdnRuntime::new(
        LegoSdnConfig {
            isolation,
            dispatch: DispatchConfig {
                mode: dispatch,
                ..DispatchConfig::default()
            }
            .window(depth)
            .workers(workers)
            .lookahead(lookahead),
            io: IoConfig {
                mode: io,
                ..IoConfig::default()
            },
            obs: ObsConfig::instance(Obs::new()),
            crashpad: CrashPadConfig {
                checkpoints: CheckpointPolicy {
                    interval: 2,
                    history: 8,
                    ..CheckpointPolicy::default()
                },
                policies: PolicyTable::with_default(CompromisePolicy::Absolute),
                transform_direction: TransformDirection::Decompose,
            },
            checker: Some(Checker::new(vec![
                Invariant::NoBlackHoles,
                Invariant::NoLoops,
            ])),
            ..LegoSdnConfig::default()
        }
        .build()
        .expect("valid campaign config"),
    );

    let poison = topo.hosts[topo.hosts.len() - 1].mac;
    // Roster: ≥4 apps, mixing healthy, fail-stop, and byzantine.
    rt.attach(Box::new(LearningSwitch::new())).unwrap();
    rt.attach(Box::new(Hub::new())).unwrap();
    rt.attach(Box::new(FaultyApp::new(
        Box::new(ShortestPathRouter::new()),
        BugTrigger::OnEventKind(EventKind::SwitchDown),
        BugEffect::Crash,
    )))
    .unwrap();
    rt.attach(Box::new(FaultyApp::new(
        Box::new(Hub::new()),
        BugTrigger::OnPacketToMac(poison),
        BugEffect::Blackhole,
    )))
    .unwrap();

    rt.run_cycle(&mut net); // handshake + discovery
    let (a, b) = (topo.hosts[0].mac, topo.hosts[1].mac);
    let bounce = DatapathId(3);
    let mut recoveries = 0;
    let mut byzantine_blocked = 0;
    let mut commands = 0;
    let mut absorb = |r: LegoCycleReport| {
        recoveries += r.recoveries;
        byzantine_blocked += r.byzantine_blocked;
        commands += r.commands;
    };
    for round in 0..3 {
        for _ in 0..3 {
            let _ = net.inject(a, Packet::ethernet(a, b));
            absorb(rt.run_cycle(&mut net));
        }
        // A multi-packet burst in one cycle with the poison mid-burst:
        // at depth > 1 the window must cancel and re-send across the
        // byzantine recovery without changing what lands.
        let _ = net.inject(a, Packet::ethernet(a, b));
        let _ = net.inject(a, Packet::ethernet(a, poison));
        let _ = net.inject(b, Packet::ethernet(b, a));
        absorb(rt.run_cycle(&mut net));
        let _ = net.set_switch_up(bounce, false);
        absorb(rt.run_cycle(&mut net));
        let _ = net.set_switch_up(bounce, true);
        absorb(rt.run_cycle(&mut net));
        if round == 1 {
            absorb(rt.tick_apps(&mut net));
        }
    }

    let mut flow_tables: Vec<(DatapathId, Vec<FlowEntry>)> = net
        .switches()
        .map(|sw| (sw.dpid(), sw.table().iter().cloned().collect()))
        .collect();
    flow_tables.sort_by_key(|(dpid, _)| *dpid);
    let txlog = rt.netlog().log().iter().cloned().collect();
    let stats = rt.stats();
    rt.shutdown();
    Residue {
        flow_tables,
        txlog,
        stats,
        recoveries,
        byzantine_blocked,
        commands,
    }
}

fn assert_identical(isolation: IsolationMode) {
    let seq = run_campaign(DispatchMode::Sequential, isolation, 1);
    let pipe = run_campaign(DispatchMode::Pipelined, isolation, 1);
    // The campaign must actually exercise the interesting paths, or this
    // test proves nothing.
    assert!(
        seq.recoveries > 0,
        "campaign produced no fail-stop recovery"
    );
    assert!(
        seq.byzantine_blocked > 0,
        "campaign produced no byzantine block"
    );
    assert!(seq.commands > 0, "campaign produced no network commands");
    assert!(!seq.txlog.is_empty(), "campaign produced no transactions");
    assert_eq!(
        seq.flow_tables, pipe.flow_tables,
        "{isolation:?}: flow tables diverge between dispatch modes"
    );
    assert_eq!(
        seq.txlog, pipe.txlog,
        "{isolation:?}: NetLog transaction order diverges between dispatch modes"
    );
    assert_eq!(
        seq.stats, pipe.stats,
        "{isolation:?}: runtime counters diverge between dispatch modes"
    );
    assert_eq!(
        (seq.recoveries, seq.byzantine_blocked, seq.commands),
        (pipe.recoveries, pipe.byzantine_blocked, pipe.commands),
        "{isolation:?}: per-cycle reports diverge between dispatch modes"
    );
}

#[test]
fn pipelined_dispatch_is_deterministic_with_local_sandboxes() {
    assert_identical(IsolationMode::Local);
}

#[test]
fn pipelined_dispatch_is_deterministic_with_isolated_stubs() {
    assert_identical(IsolationMode::Channel);
}

#[test]
fn pipelined_matches_sequential_across_repeated_runs() {
    // Stub scheduling varies run to run; determinism must not depend on
    // a lucky interleaving.
    let reference = run_campaign(DispatchMode::Sequential, IsolationMode::Channel, 1);
    for _ in 0..3 {
        let pipe = run_campaign(DispatchMode::Pipelined, IsolationMode::Channel, 1);
        assert_eq!(reference.flow_tables, pipe.flow_tables);
        assert_eq!(reference.txlog, pipe.txlog);
        assert_eq!(reference.stats, pipe.stats);
    }
}

#[test]
fn windowed_dispatch_is_deterministic_across_depths() {
    for isolation in [IsolationMode::Local, IsolationMode::Channel] {
        let reference = run_campaign(DispatchMode::Sequential, isolation, 1);
        for depth in [1usize, 2, 8] {
            let win = run_campaign(DispatchMode::Pipelined, isolation, depth);
            assert_eq!(
                reference.flow_tables, win.flow_tables,
                "{isolation:?} depth {depth}: flow tables diverge"
            );
            assert_eq!(
                reference.txlog, win.txlog,
                "{isolation:?} depth {depth}: NetLog transaction order diverges"
            );
            assert_eq!(
                reference.stats, win.stats,
                "{isolation:?} depth {depth}: runtime counters diverge"
            );
            assert_eq!(
                (
                    reference.recoveries,
                    reference.byzantine_blocked,
                    reference.commands
                ),
                (win.recoveries, win.byzantine_blocked, win.commands),
                "{isolation:?} depth {depth}: per-cycle reports diverge"
            );
        }
    }
}

#[test]
fn polled_transport_preserves_the_dispatch_residue() {
    // The poller changes only *how* stub frames reach the proxy — a
    // fixed pool of readiness-polled threads instead of one blocking
    // thread per stub — never what they say. Every {io mode} × {window
    // depth} combination must leave the exact residue of the sequential
    // blocking reference.
    let reference = run_campaign(DispatchMode::Sequential, IsolationMode::Channel, 1);
    for io in [IoMode::Blocking, IoMode::Polled { io_threads: 2 }] {
        for depth in [1usize, 8] {
            let run = run_campaign_io(DispatchMode::Pipelined, IsolationMode::Channel, depth, io);
            assert_eq!(
                reference.flow_tables, run.flow_tables,
                "{io:?} depth {depth}: flow tables diverge"
            );
            assert_eq!(
                reference.txlog, run.txlog,
                "{io:?} depth {depth}: NetLog transaction order diverges"
            );
            assert_eq!(
                reference.stats, run.stats,
                "{io:?} depth {depth}: runtime counters diverge"
            );
            assert_eq!(
                (
                    reference.recoveries,
                    reference.byzantine_blocked,
                    reference.commands
                ),
                (run.recoveries, run.byzantine_blocked, run.commands),
                "{io:?} depth {depth}: per-cycle reports diverge"
            );
        }
    }
}

#[test]
fn sharded_dispatch_preserves_the_residue_across_worker_counts() {
    // The tentpole determinism oracle (DESIGN.md §13): sharding the apps
    // across worker threads changes only *where* they run. For every
    // {worker count} × {io mode} × {window depth} combination the residue
    // — flow tables, NetLog transaction order, runtime counters, per-
    // cycle reports — must be bit-identical to the single-threaded
    // sequential reference.
    let reference = run_campaign(DispatchMode::Sequential, IsolationMode::Channel, 1);
    for workers in [1usize, 2, 4] {
        for io in [IoMode::Blocking, IoMode::Polled { io_threads: 2 }] {
            for depth in [1usize, 8] {
                let run = run_campaign_sharded(
                    DispatchMode::Pipelined,
                    IsolationMode::Channel,
                    depth,
                    io,
                    workers,
                );
                assert_eq!(
                    reference.flow_tables, run.flow_tables,
                    "workers {workers} {io:?} depth {depth}: flow tables diverge"
                );
                assert_eq!(
                    reference.txlog, run.txlog,
                    "workers {workers} {io:?} depth {depth}: NetLog transaction order diverges"
                );
                assert_eq!(
                    reference.stats, run.stats,
                    "workers {workers} {io:?} depth {depth}: runtime counters diverge"
                );
                assert_eq!(
                    (
                        reference.recoveries,
                        reference.byzantine_blocked,
                        reference.commands
                    ),
                    (run.recoveries, run.byzantine_blocked, run.commands),
                    "workers {workers} {io:?} depth {depth}: per-cycle reports diverge"
                );
            }
        }
    }
}

#[test]
fn cross_cycle_lookahead_preserves_the_residue() {
    // Cross-cycle windowing (DESIGN.md §15) changes which run_cycle call
    // consumes an event — the send cursor runs ahead into raws enqueued by
    // this cycle's own commits — so the oracle for lookahead L is
    // *sequential dispatch at the same L*, not at L = 1. At every swept
    // {workers × depth} point the residue must be bit-identical to that
    // matching-lookahead sequential reference.
    for lookahead in [1usize, 2] {
        let reference = run_campaign_lookahead(
            DispatchMode::Sequential,
            IsolationMode::Channel,
            1,
            IoMode::Blocking,
            1,
            lookahead,
        );
        assert!(
            reference.recoveries > 0,
            "lookahead {lookahead}: campaign produced no recovery"
        );
        assert!(
            reference.byzantine_blocked > 0,
            "lookahead {lookahead}: campaign produced no byzantine block"
        );
        for workers in [1usize, 2, 4] {
            for depth in [1usize, 8] {
                let run = run_campaign_lookahead(
                    DispatchMode::Pipelined,
                    IsolationMode::Channel,
                    depth,
                    IoMode::Blocking,
                    workers,
                    lookahead,
                );
                assert_eq!(
                    reference.flow_tables, run.flow_tables,
                    "workers {workers} depth {depth} lookahead {lookahead}: flow tables diverge"
                );
                assert_eq!(
                    reference.txlog, run.txlog,
                    "workers {workers} depth {depth} lookahead {lookahead}: NetLog order diverges"
                );
                assert_eq!(
                    reference.stats, run.stats,
                    "workers {workers} depth {depth} lookahead {lookahead}: counters diverge"
                );
                assert_eq!(
                    (
                        reference.recoveries,
                        reference.byzantine_blocked,
                        reference.commands
                    ),
                    (run.recoveries, run.byzantine_blocked, run.commands),
                    "workers {workers} depth {depth} lookahead {lookahead}: reports diverge"
                );
            }
        }
    }
}

#[test]
fn sharded_dispatch_is_stable_across_repeated_runs() {
    // Thread scheduling varies run to run; sharded determinism must not
    // depend on a lucky interleaving.
    let reference = run_campaign(DispatchMode::Sequential, IsolationMode::Local, 1);
    for _ in 0..3 {
        let run = run_campaign_sharded(
            DispatchMode::Pipelined,
            IsolationMode::Local,
            4,
            IoMode::Blocking,
            4,
        );
        assert_eq!(reference.flow_tables, run.flow_tables);
        assert_eq!(reference.txlog, run.txlog);
        assert_eq!(reference.stats, run.stats);
    }
}

/// Installs one uniquely-matched drop flow per packet-in, tagging the
/// match's `eth_src` with a synthetic per-delivery serial. No real packet
/// carries a synthetic source, so installs never suppress later
/// packet-ins — and same-priority flows keep insertion order, so the
/// ingress switch's table *is* the app's observed delivery order.
struct OrderProbe {
    count: u64,
}

const PROBE_TAG_BASE: u64 = 5000;

impl SdnApp for OrderProbe {
    fn name(&self) -> &str {
        "order-probe"
    }

    fn subscriptions(&self) -> Vec<EventKind> {
        vec![EventKind::PacketIn]
    }

    fn on_event(&mut self, event: &Event, ctx: &mut Ctx<'_>) {
        if let Event::PacketIn(dpid, pi) = event {
            let mut mat = Match::from_packet(&pi.packet, pi.in_port);
            mat.eth_src = Some(MacAddr::from_index(PROBE_TAG_BASE + self.count));
            self.count += 1;
            ctx.send(*dpid, Message::FlowMod(FlowMod::add(mat)));
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        self.count.to_le_bytes().to_vec()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), RestoreError> {
        let arr: [u8; 8] = bytes
            .try_into()
            .map_err(|_| RestoreError("bad snapshot".into()))?;
        self.count = u64::from_le_bytes(arr);
        Ok(())
    }
}

/// Deterministic xorshift64 — the test's only randomness source, so every
/// failure reproduces from its seed.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

#[test]
fn per_app_delivery_order_equals_translation_order_under_random_crashes() {
    // Property: for a healthy app, windowed dispatch delivers each
    // cycle's events in translation order, no matter where a neighboring
    // app's crashes land in the burst. The probe's flow installs on the
    // ingress switch record the order it actually observed.
    for seed in [11u64, 47, 2026] {
        let mut rng = XorShift(seed);
        let topo = Topology::linear(2, 2);
        let mut net = Network::new(&topo);
        let poison = topo.hosts[topo.hosts.len() - 1].mac;
        let mut rt = LegoSdnRuntime::new(LegoSdnConfig {
            isolation: IsolationMode::Channel,
            dispatch: DispatchConfig::pipelined().window(8),
            obs: ObsConfig::instance(Obs::new()),
            crashpad: CrashPadConfig {
                checkpoints: CheckpointPolicy {
                    interval: 2,
                    history: 8,
                    ..CheckpointPolicy::default()
                },
                policies: PolicyTable::with_default(CompromisePolicy::Absolute),
                transform_direction: TransformDirection::Decompose,
            },
            ..LegoSdnConfig::default()
        });
        rt.attach(Box::new(OrderProbe { count: 0 })).unwrap();
        rt.attach(Box::new(FaultyApp::new(
            Box::new(Hub::new()),
            BugTrigger::OnPacketToMac(poison),
            BugEffect::Crash,
        )))
        .unwrap();
        rt.run_cycle(&mut net); // handshake + discovery

        let a = topo.hosts[0].mac;
        let ingress = DatapathId(1);
        let mut injected = Vec::new();
        for round in 0..3u64 {
            // A 6-packet burst with 1–2 poison packets at random slots.
            let poison_a = rng.next() % 6;
            let poison_b = rng.next() % 6;
            for slot in 0..6u64 {
                let dst = if slot == poison_a || slot == poison_b {
                    poison
                } else {
                    MacAddr::from_index(100 + round * 8 + slot)
                };
                let _ = net.inject(a, Packet::ethernet(a, dst));
                injected.push(dst);
            }
            let report = rt.run_cycle(&mut net);
            assert!(report.recoveries >= 1, "seed {seed}: no crash exercised");
        }
        assert!(!rt.is_crashed());

        // The probe installed one tagged flow per injected packet;
        // install order on the ingress switch must equal injection
        // (translation) order.
        let observed: Vec<MacAddr> = net
            .switch(ingress)
            .unwrap()
            .table()
            .iter()
            .filter(|entry| {
                entry
                    .mat
                    .eth_src
                    .is_some_and(|m| m >= MacAddr::from_index(PROBE_TAG_BASE))
            })
            .filter_map(|entry| entry.mat.eth_dst)
            .collect();
        assert_eq!(observed, injected, "seed {seed}: delivery order diverged");
        rt.shutdown();
    }
}
