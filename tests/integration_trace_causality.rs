//! Causal-trace property test: a seeded crash-injection campaign must
//! leave flight-recorder traces whose per-(event, app) phases are
//! causally ordered — fill before send before collect before commit —
//! with recovery (restore/replay/policy) nested strictly between the
//! failed delivery and the commit, at window depth 1 and 8 alike. The
//! depth-8 run must additionally reconstruct a crash-recovery episode as
//! a single causal trace (the PR's acceptance criterion) and record the
//! cross-event cancellation/re-send story in the cancelled events'
//! traces.

use legosdn::crashpad::{CheckpointPolicy, CrashPadConfig, PolicyTable, TransformDirection};
use legosdn::obs::Trace;
use legosdn::prelude::*;

/// Hand-rolled LCG (Numerical Recipes constants) so the campaign is
/// seeded and reproducible without pulling in a rand dependency.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Run a seeded fault campaign under Channel isolation at the given
/// window depth and hand back the recorder's traces.
fn run_traced_campaign(depth: usize, seed: u64) -> (Obs, Vec<Trace>) {
    let topo = Topology::linear(3, 2);
    let mut net = Network::new(&topo);
    let mut rt = LegoSdnRuntime::new(LegoSdnConfig {
        isolation: IsolationMode::Channel,
        dispatch: DispatchConfig::pipelined().window(depth),
        obs: ObsConfig::instance(Obs::new()),
        crashpad: CrashPadConfig {
            checkpoints: CheckpointPolicy {
                interval: 2,
                history: 8,
                ..CheckpointPolicy::default()
            },
            policies: PolicyTable::with_default(CompromisePolicy::Absolute),
            transform_direction: TransformDirection::Decompose,
        },
        checker: Some(Checker::new(vec![
            Invariant::NoBlackHoles,
            Invariant::NoLoops,
        ])),
        ..LegoSdnConfig::default()
    });
    let obs = rt.obs();

    let poison = topo.hosts[topo.hosts.len() - 1].mac;
    rt.attach(Box::new(LearningSwitch::new())).unwrap();
    rt.attach(Box::new(Hub::new())).unwrap();
    rt.attach(Box::new(FaultyApp::new(
        Box::new(ShortestPathRouter::new()),
        BugTrigger::OnEventKind(EventKind::SwitchDown),
        BugEffect::Crash,
    )))
    .unwrap();
    rt.attach(Box::new(FaultyApp::new(
        Box::new(Hub::new()),
        BugTrigger::OnPacketToMac(poison),
        BugEffect::Blackhole,
    )))
    .unwrap();
    rt.run_cycle(&mut net); // handshake + discovery

    let mut rng = Lcg(seed);
    let bounce = DatapathId(3);
    for round in 0..4 {
        // Seeded traffic so the window fills with packet-ins, then a
        // switch bounce injected *mid-burst*: the SwitchDown crash lands
        // while later events are already queued, exercising
        // cancellation/re-send at depth > 1.
        for _ in 0..3 {
            let src = topo.hosts[rng.pick(topo.hosts.len())].mac;
            let dst = topo.hosts[rng.pick(topo.hosts.len())].mac;
            let _ = net.inject(src, Packet::ethernet(src, dst));
        }
        let _ = net.set_switch_up(bounce, false);
        for _ in 0..2 {
            let src = topo.hosts[rng.pick(2)].mac;
            let _ = net.inject(src, Packet::ethernet(src, poison));
        }
        rt.run_cycle(&mut net);
        let _ = net.set_switch_up(bounce, true);
        rt.run_cycle(&mut net);
        if round == 1 {
            rt.tick_apps(&mut net);
        }
    }

    let traces = obs.traces();
    rt.shutdown();
    (obs, traces)
}

fn first_index(t: &Trace, app: &str, phase: &str) -> Option<usize> {
    t.events
        .iter()
        .position(|e| e.app == app && e.phase == phase)
}

fn last_index(t: &Trace, app: &str, phase: &str) -> Option<usize> {
    t.events
        .iter()
        .rposition(|e| e.app == app && e.phase == phase)
}

/// Every trace must order each app's first fill ≤ send ≤ collect ≤
/// commit, nest recovery between the failed delivery and the commit, and
/// follow any cancellation with a re-selection.
fn assert_causal(traces: &[Trace], depth: usize) {
    let apps: Vec<String> = traces
        .iter()
        .flat_map(|t| t.events.iter().map(|e| e.app.clone()))
        .filter(|a| !a.is_empty())
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    assert!(!apps.is_empty(), "depth {depth}: traces saw no apps at all");

    for t in traces {
        for app in &apps {
            let fill = first_index(t, app, "fill");
            let send = first_index(t, app, "send");
            let collect = first_index(t, app, "collect");
            let commit = first_index(t, app, "commit");
            if let (Some(f), Some(s)) = (fill, send) {
                assert!(f < s, "depth {depth} {}: fill after send for {app}", t.id);
            }
            if let (Some(s), Some(c)) = (send, collect) {
                assert!(
                    s < c,
                    "depth {depth} {}: send after collect for {app}",
                    t.id
                );
            }
            if let (Some(c), Some(k)) = (collect, commit) {
                assert!(
                    c < k,
                    "depth {depth} {}: collect after commit for {app}",
                    t.id
                );
            }

            // Recovery follows the failed delivery, and when the event
            // commits as "recovered" the recovery is nested strictly
            // before that commit. (After a "delivered" commit, recovery
            // may still legitimately appear — a post-commit checkpoint
            // or invariant rollback crashing the app — so the nesting is
            // only required for recovered commits.)
            let recovered_commit = t
                .events
                .iter()
                .position(|e| e.app == *app && e.phase == "commit" && e.outcome == "recovered");
            if let Some(df) = first_index(t, app, "deliver_fail") {
                for phase in ["restore", "replay", "policy"] {
                    if let Some(r) = first_index(t, app, phase) {
                        assert!(
                            df < r,
                            "depth {depth} {}: {phase} before the failed delivery for {app}",
                            t.id
                        );
                        if let Some(k) = recovered_commit {
                            assert!(
                                r < k,
                                "depth {depth} {}: {phase} after the recovered commit for {app}",
                                t.id
                            );
                        }
                    }
                }
            }

            // A cancelled speculative delivery must be re-sent from the
            // recovered state: the cancel is followed by a fresh send.
            if let Some(cx) = first_index(t, app, "cancel") {
                let resent = last_index(t, app, "send");
                assert!(
                    resent.is_some_and(|s| s > cx),
                    "depth {depth} {}: cancel without a later re-send for {app}",
                    t.id
                );
                assert!(
                    first_index(t, app, "resend").is_some_and(|r| r > cx),
                    "depth {depth} {}: cancel without a resend marker for {app}",
                    t.id
                );
            }
        }
    }
}

/// The full crash-recovery episode — failed delivery, restore, policy
/// verdict, recovered commit — must appear inside one trace.
fn recovery_trace(traces: &[Trace]) -> Option<&Trace> {
    traces.iter().find(|t| {
        t.events.iter().any(|e| e.phase == "deliver_fail")
            && t.events.iter().any(|e| e.phase == "restore")
            && t.events
                .iter()
                .any(|e| e.phase == "commit" && e.outcome == "recovered")
    })
}

#[test]
fn depth1_traces_are_causally_ordered() {
    let (_obs, traces) = run_traced_campaign(1, 0x5eed_0001);
    assert!(!traces.is_empty(), "depth 1 recorded no traces");
    assert_causal(&traces, 1);
    assert!(
        recovery_trace(&traces).is_some(),
        "depth 1: no single trace holds a full crash-recovery episode"
    );
}

#[test]
fn depth8_traces_are_causally_ordered_across_the_window() {
    let (obs, traces) = run_traced_campaign(8, 0x5eed_0008);
    assert!(!traces.is_empty(), "depth 8 recorded no traces");
    assert_causal(&traces, 8);

    // Acceptance: a depth-8 crash-recovery episode reconstructs as a
    // single causal trace, and that trace is retrievable by id.
    let episode = recovery_trace(&traces)
        .expect("depth 8: no single trace holds a full crash-recovery episode");
    let fetched = obs
        .trace(episode.id)
        .expect("the episode trace is fetchable by id");
    assert_eq!(fetched.trace_seq, episode.trace_seq);

    // The mid-window crash cancelled queued later deliveries; their
    // traces must carry the cancel (re-send ordering is asserted per
    // trace above).
    assert!(
        traces
            .iter()
            .any(|t| t.events.iter().any(|e| e.phase == "cancel")),
        "depth 8: no trace recorded a cross-event cancellation"
    );
}

/// Sharded dispatch must not silence the flight recorder: with four
/// worker threads each recording under its own per-thread trace scope,
/// a fully sampled run still reconstructs causally ordered per-app
/// phase stories, and commits still land in the traces.
#[test]
fn sharded_workers_still_feed_the_flight_recorder() {
    let topo = Topology::linear(2, 1);
    let mut net = Network::new(&topo);
    let mut rt = LegoSdnRuntime::new(LegoSdnConfig {
        isolation: IsolationMode::Channel,
        dispatch: DispatchConfig::pipelined().window(2).workers(4),
        obs: ObsConfig::instance(Obs::new()).trace_sample(1),
        ..LegoSdnConfig::default()
    });
    let obs = rt.obs();
    rt.attach(Box::new(LearningSwitch::new())).unwrap();
    rt.attach(Box::new(ShortestPathRouter::new())).unwrap();
    for _ in 0..4 {
        rt.attach(Box::new(Hub::new())).unwrap();
    }
    rt.run_cycle(&mut net); // handshake + discovery
    let (a, b) = (topo.hosts[0].mac, topo.hosts[1].mac);
    for _ in 0..4 {
        let _ = net.inject(a, Packet::ethernet(a, b));
        let _ = net.inject(b, Packet::ethernet(b, a));
        rt.run_cycle(&mut net);
    }
    let traces = obs.traces();
    rt.shutdown();
    assert!(!traces.is_empty(), "workers=4 recorded no traces");
    assert_causal(&traces, 2);
    assert!(
        traces
            .iter()
            .any(|t| t.events.iter().any(|e| e.phase == "commit")),
        "workers=4: no trace recorded a commit phase"
    );
}

#[test]
fn sampling_thins_the_recorder_and_zero_disables_it() {
    let topo = Topology::linear(2, 1);
    let mut net = Network::new(&topo);
    for (sample, expect_any) in [(0u64, false), (4, true)] {
        let mut rt = LegoSdnRuntime::new(LegoSdnConfig {
            obs: ObsConfig::instance(Obs::new()).trace_sample(sample),
            ..LegoSdnConfig::default()
        });
        let obs = rt.obs();
        rt.attach(Box::new(Hub::new())).unwrap();
        rt.run_cycle(&mut net);
        let (a, b) = (topo.hosts[0].mac, topo.hosts[1].mac);
        for _ in 0..8 {
            let _ = net.inject(a, Packet::ethernet(a, b));
            rt.run_cycle(&mut net);
        }
        let traces = obs.traces();
        if expect_any {
            assert!(
                !traces.is_empty() && traces.len() < 8,
                "sample {sample}: expected a thinned, non-empty recorder, got {}",
                traces.len()
            );
        } else {
            assert!(traces.is_empty(), "sample 0 must disable tracing");
        }
    }
}
