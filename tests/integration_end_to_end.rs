//! Integration: the full stack on a fat-tree — router + firewall + load
//! balancer + monitor under LegoSDN, with faults injected across the run.
//! Verifies the system-level property the paper promises: operators can
//! "readily deploy new SDN-Apps in their networks without fear of crashing
//! the controller".

use legosdn::invariants::{Checker, Invariant};
use legosdn::prelude::*;

/// Converge reactive rules by replaying each flow until delivered (or give
/// up after a few rounds).
fn send_until_delivered(
    net: &mut Network,
    rt: &mut LegoSdnRuntime,
    src: MacAddr,
    dst: MacAddr,
) -> bool {
    for _ in 0..6 {
        let trace = net.inject(src, Packet::ethernet(src, dst)).unwrap();
        rt.run_cycle(net);
        if trace.delivered_to(dst) {
            return true;
        }
    }
    // One more after the last learning round.
    let trace = net.inject(src, Packet::ethernet(src, dst)).unwrap();
    rt.run_cycle(net);
    trace.delivered_to(dst)
}

#[test]
fn full_app_stack_on_fat_tree_with_crashing_router() {
    let topo = Topology::fat_tree(4);
    let mut net = Network::new(&topo);
    // Bound the invariant checker: all-pairs probing on a 16-host fat-tree
    // after every transaction is the naive-checker cost the paper's VeriFlow
    // citation exists to avoid.
    let checker = Checker {
        max_pairs: 24,
        ..Checker::default()
    };
    let mut rt = LegoSdnRuntime::new(LegoSdnConfig {
        checker: Some(checker),
        ..LegoSdnConfig::default()
    });

    // The production stack (Table 2's categories), one of them buggy: the
    // router panics on any packet toward the poisoned host. (An
    // input-keyed deterministic bug: every occurrence crashes, every other
    // input works — the recoverable shape. A count-keyed bug would re-fire
    // on every event after restore, which Absolute Compromise rightly
    // turns into "ignore all events from here on".)
    let poison = topo.hosts[15].mac;
    rt.attach(Box::new(FaultyApp::new(
        Box::new(ShortestPathRouter::new()),
        BugTrigger::OnPacketToMac(poison),
        BugEffect::Crash,
    )))
    .unwrap();
    rt.attach(Box::new(Firewall::new(vec![AclRule::deny_port(23)])))
        .unwrap();
    rt.attach(Box::new(StatsMonitor::new())).unwrap();

    rt.run_cycle(&mut net);
    assert_eq!(
        rt.translator().topology.n_links(),
        32,
        "fat-tree discovered"
    );

    // Every host announces itself (ARP-style broadcast) so the device
    // manager learns attachment points — the router can only compute paths
    // between known hosts.
    for h in &topo.hosts {
        net.inject(h.mac, Packet::ethernet(h.mac, MacAddr::BROADCAST))
            .unwrap();
        rt.run_cycle(&mut net);
    }

    // Cross-pod traffic among several host pairs, with poisoned packets
    // interleaved: each poison crashes the router, recovery kicks in, and
    // the clean pairs keep converging.
    let hosts = topo.hosts.clone();
    let mut delivered_pairs = 0;
    for i in 0..6 {
        let src = hosts[i].mac;
        let dst = hosts[(i + 8) % hosts.len()].mac;
        if i % 2 == 0 {
            net.inject(src, Packet::ethernet(src, poison)).unwrap();
            rt.run_cycle(&mut net);
        }
        if send_until_delivered(&mut net, &mut rt, src, dst) {
            delivered_pairs += 1;
        }
    }
    assert!(
        rt.stats().failstop_recoveries >= 1,
        "the bug fired: {:?}",
        rt.stats()
    );
    assert!(!rt.is_crashed());
    assert!(
        delivered_pairs >= 4,
        "most pairs must converge despite crashes: {delivered_pairs}/6"
    );

    // The firewall stayed correct throughout: telnet is still blocked.
    // (Aimed at a host with no installed route, so the first packet punts
    // and the firewall's higher-priority drop lands before any route —
    // flows that already ride a router rule never reach a reactive
    // firewall, a composition caveat this test deliberately sidesteps.)
    let src = hosts[0].clone();
    let dst = hosts[14].clone();
    let telnet = Packet::tcp(src.mac, dst.mac, src.ip, dst.ip, 40_000, 23);
    net.inject(src.mac, telnet.clone()).unwrap();
    rt.run_cycle(&mut net);
    let trace = net.inject(src.mac, telnet).unwrap();
    rt.run_cycle(&mut net);
    assert!(
        !trace.delivered_to(dst.mac),
        "firewall drop must hold: {trace:?}"
    );
}

#[test]
fn load_balancer_spreads_and_survives_neighbour_crashes() {
    let topo = Topology::star(2, 2); // core + 2 leaves, 2 hosts per leaf
    let mut net = Network::new(&topo);
    let backends: Vec<Backend> = topo.hosts[..2]
        .iter()
        .map(|h| Backend {
            mac: h.mac,
            ip: h.ip,
        })
        .collect();
    let vip = Ipv4Addr::new(10, 99, 0, 1);

    let mut rt = LegoSdnRuntime::new(LegoSdnConfig::default());
    rt.attach(Box::new(LoadBalancer::new(vip, backends)))
        .unwrap();
    rt.attach(Box::new(LearningSwitch::new())).unwrap();
    rt.attach(Box::new(FaultyApp::new(
        Box::new(Hub::new()),
        BugTrigger::OnEventKind(EventKind::PacketIn),
        BugEffect::Crash,
    )))
    .unwrap();
    rt.run_cycle(&mut net);

    // Teach the device manager where the backends are.
    for h in &topo.hosts[..2] {
        net.inject(h.mac, Packet::ethernet(h.mac, MacAddr::BROADCAST))
            .unwrap();
        rt.run_cycle(&mut net);
    }
    // Clients hit the VIP; the crashing hub fails on every packet-in.
    let clients = &topo.hosts[2..];
    for (i, c) in clients.iter().enumerate() {
        let pkt = Packet::tcp(
            c.mac,
            MacAddr::from_index(999),
            c.ip,
            vip,
            9000 + i as u16,
            80,
        );
        net.inject(c.mac, pkt).unwrap();
        rt.run_cycle(&mut net);
    }
    assert!(rt.stats().failstop_recoveries >= 2);
    // The LB did its job: flows were rewritten toward backends.
    let rewrites: usize = net
        .switches()
        .map(|s| {
            s.table()
                .iter()
                .filter(|e| e.actions.iter().any(|a| matches!(a, Action::SetIpDst(_))))
                .count()
        })
        .sum();
    assert!(rewrites >= 1, "VIP flows must be rewritten");
}

#[test]
fn invariants_hold_after_chaotic_run() {
    // Chaos run: byzantine + fail-stop apps, link flaps, switch bounce.
    // Afterwards, the network must be violation-free (the gate did its
    // job) and the controller alive.
    let topo = Topology::random(8, 4, 1, 1234);
    let mut net = Network::new(&topo);
    let mut rt = LegoSdnRuntime::new(LegoSdnConfig::default());
    rt.attach(Box::new(LearningSwitch::new())).unwrap();
    rt.attach(Box::new(FaultyApp::new(
        Box::new(Hub::new()),
        BugTrigger::OnNthOfKind(EventKind::PacketIn, 3),
        BugEffect::ForwardingLoop,
    )))
    .unwrap();
    rt.attach(Box::new(FaultyApp::new(
        Box::new(Flooder::new()),
        BugTrigger::OnNthOfKind(EventKind::PacketIn, 5),
        BugEffect::Blackhole,
    )))
    .unwrap();
    rt.run_cycle(&mut net);

    let hosts = topo.hosts.clone();
    for round in 0..10usize {
        let src = hosts[round % hosts.len()].mac;
        let dst = hosts[(round + 3) % hosts.len()].mac;
        net.inject(src, Packet::ethernet(src, dst)).unwrap();
        rt.run_cycle(&mut net);
        match round {
            3 => {
                net.set_link_up(0, false).unwrap();
            }
            5 => {
                net.set_link_up(0, true).unwrap();
            }
            7 => {
                let d = hosts[0].attach.dpid;
                net.set_switch_up(d, false).unwrap();
                rt.run_cycle(&mut net);
                net.set_switch_up(d, true).unwrap();
            }
            _ => {}
        }
        rt.run_cycle(&mut net);
        net.tick(SimDuration::from_secs(1));
    }

    assert!(!rt.is_crashed());
    assert!(rt.stats().byzantine_blocked > 0, "{:?}", rt.stats());
    let checker = Checker::new(vec![Invariant::NoBlackHoles, Invariant::NoLoops]);
    let report = checker.check(&net);
    assert!(report.is_clean(), "violations leaked: {report:?}");
}

#[test]
fn deterministic_runs_are_reproducible() {
    // The whole stack is deterministic in Local isolation: two identical
    // runs end in identical stats and identical flow tables.
    let run = || {
        let topo = Topology::random(5, 2, 1, 77);
        let mut net = Network::new(&topo);
        let mut rt = LegoSdnRuntime::new(LegoSdnConfig::default());
        rt.attach(Box::new(LearningSwitch::new())).unwrap();
        rt.attach(Box::new(FaultyApp::new(
            Box::new(Hub::new()),
            BugTrigger::OnNthOfKind(EventKind::PacketIn, 2),
            BugEffect::Crash,
        )))
        .unwrap();
        rt.run_cycle(&mut net);
        let hosts = topo.hosts.clone();
        for i in 0..8usize {
            let src = hosts[i % hosts.len()].mac;
            let dst = hosts[(i + 1) % hosts.len()].mac;
            net.inject(src, Packet::ethernet(src, dst)).unwrap();
            rt.run_cycle(&mut net);
        }
        let tables: Vec<(u64, usize)> = net
            .switches()
            .map(|s| (s.dpid().0, s.table().len()))
            .collect();
        (rt.stats(), tables, net.delivery_counters())
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
}
