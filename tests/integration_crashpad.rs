//! Integration: Crash-Pad recovery policies end-to-end on a live network
//! (E5, E7) — the availability/correctness trade-off of §3.3 and the
//! equivalence transformation of switch-downs into link-downs.

use legosdn::crashpad::{CheckpointPolicy, CrashPadConfig, PolicyTable, TransformDirection};
use legosdn::prelude::*;

/// Router variant that crashes on SwitchDown — the paper's canonical
/// "offending event" example.
fn brittle_router() -> Box<FaultyApp> {
    Box::new(FaultyApp::new(
        Box::new(ShortestPathRouter::new()),
        BugTrigger::OnEventKind(EventKind::SwitchDown),
        BugEffect::Crash,
    ))
}

fn runtime_with(policy: CompromisePolicy) -> LegoSdnRuntime {
    LegoSdnRuntime::new(LegoSdnConfig {
        crashpad: CrashPadConfig {
            checkpoints: CheckpointPolicy::default(),
            policies: PolicyTable::with_default(policy),
            transform_direction: TransformDirection::Decompose,
        },
        ..LegoSdnConfig::default()
    })
}

/// Bring up a 3-switch line, route traffic, then kill the middle switch.
fn run_scenario(policy: CompromisePolicy) -> (LegoSdnRuntime, Network, Topology) {
    let topo = Topology::linear(3, 1);
    let mut net = Network::new(&topo);
    let mut rt = runtime_with(policy);
    rt.attach(brittle_router()).unwrap();
    rt.run_cycle(&mut net);
    // Teach the device manager where hosts live.
    for h in &topo.hosts {
        let peer = &topo.hosts
            [(topo.hosts.iter().position(|x| x.mac == h.mac).unwrap() + 1) % topo.hosts.len()];
        net.inject(h.mac, Packet::ethernet(h.mac, peer.mac))
            .unwrap();
        rt.run_cycle(&mut net);
    }
    // The poison: switch 2 goes down.
    net.set_switch_up(DatapathId(2), false).unwrap();
    rt.run_cycle(&mut net);
    (rt, net, topo)
}

#[test]
fn absolute_compromise_survives_but_misses_the_event() {
    let (rt, _, _) = run_scenario(CompromisePolicy::Absolute);
    let stats = rt.stats();
    assert!(stats.failstop_recoveries >= 1, "{stats:?}");
    assert_eq!(stats.apps_dead, 0);
    // The ticket trail says the event was ignored.
    assert!(rt
        .crashpad()
        .tickets
        .iter()
        .any(|t| t.recovery == legosdn::crashpad::RecoveryTaken::Ignored));
}

#[test]
fn no_compromise_sacrifices_the_app() {
    let (rt, _, _) = run_scenario(CompromisePolicy::NoCompromise);
    assert_eq!(rt.stats().apps_dead, 1);
    assert!(rt
        .crashpad()
        .tickets
        .iter()
        .any(|t| t.recovery == legosdn::crashpad::RecoveryTaken::LetDie));
    assert!(!rt.is_crashed(), "only the app dies, never the controller");
}

#[test]
fn equivalence_compromise_delivers_linkdowns_instead() {
    let (rt, _, _) = run_scenario(CompromisePolicy::Equivalence);
    let stats = rt.stats();
    assert_eq!(stats.apps_dead, 0);
    assert!(rt
        .crashpad()
        .tickets
        .iter()
        .any(|t| t.recovery == legosdn::crashpad::RecoveryTaken::Transformed));
    // The router processed the equivalent link-downs: its route teardown
    // logic ran (observable through the checkpoint event counter including
    // the transformed events).
    let delivered = rt
        .crashpad()
        .checkpoints
        .events_delivered("shortest-path-router#buggy");
    assert!(delivered > 0);
}

#[test]
fn equivalence_keeps_routing_consistent_after_switch_loss() {
    // The functional payoff: after the transformed link-downs, the router's
    // internal route table dropped paths through the dead switch, so it
    // won't emit commands toward it.
    let (mut rt, mut net, topo) = run_scenario(CompromisePolicy::Equivalence);
    // Traffic between the endpoints of the line (1 and 3) now has no path;
    // the router should drop rather than route through the corpse.
    let (a, c) = (topo.hosts[0].mac, topo.hosts[2].mac);
    net.inject(a, Packet::ethernet(a, c)).unwrap();
    let report = rt.run_cycle(&mut net);
    // No crash loop: the event is processed (packet-in to the router).
    assert!(report.events > 0);
    assert!(!rt.is_crashed());
}

#[test]
fn per_app_policy_language_drives_outcomes() {
    let text = r"
        default absolute
        app shortest-path-router#buggy on switch-down use no-compromise
    ";
    let policies = PolicyTable::parse(text).unwrap();
    let mut rt = LegoSdnRuntime::new(LegoSdnConfig {
        crashpad: CrashPadConfig {
            checkpoints: CheckpointPolicy::default(),
            policies,
            transform_direction: TransformDirection::Decompose,
        },
        ..LegoSdnConfig::default()
    });
    let topo = Topology::linear(3, 1);
    let mut net = Network::new(&topo);
    let id = rt.attach(brittle_router()).unwrap();
    rt.run_cycle(&mut net);
    net.set_switch_up(DatapathId(2), false).unwrap();
    rt.run_cycle(&mut net);
    assert_eq!(rt.app_status(id), Some(&AppStatus::Dead));
}

#[test]
fn checkpoint_interval_trades_snapshots_for_replay() {
    // Same crash scenario under interval 1 vs interval 8: fewer snapshots,
    // more replayed events at recovery.
    let run = |interval: u64| {
        let topo = Topology::linear(2, 1);
        let mut net = Network::new(&topo);
        let mut rt = LegoSdnRuntime::new(LegoSdnConfig {
            crashpad: CrashPadConfig {
                checkpoints: CheckpointPolicy {
                    interval,
                    history: 4,
                    ..CheckpointPolicy::default()
                },
                policies: PolicyTable::with_default(CompromisePolicy::Absolute),
                transform_direction: TransformDirection::Decompose,
            },
            ..LegoSdnConfig::default()
        });
        rt.attach(Box::new(FaultyApp::new(
            Box::new(Hub::new()),
            BugTrigger::OnPacketToMac(topo.hosts[1].mac),
            BugEffect::Crash,
        )))
        .unwrap();
        rt.run_cycle(&mut net);
        let (a, b) = (topo.hosts[0].mac, topo.hosts[1].mac);
        // 6 clean events, then the poison.
        for _ in 0..6 {
            net.inject(a, Packet::ethernet(a, MacAddr::from_index(77)))
                .unwrap();
            rt.run_cycle(&mut net);
        }
        net.inject(a, Packet::ethernet(a, b)).unwrap();
        rt.run_cycle(&mut net);
        let cp = &rt.crashpad().checkpoints;
        (cp.snapshots_taken, rt.stats().failstop_recoveries)
    };
    let (snaps_every, recovered_every) = run(1);
    let (snaps_sparse, recovered_sparse) = run(8);
    assert_eq!(recovered_every, 1);
    assert_eq!(recovered_sparse, 1);
    assert!(
        snaps_sparse < snaps_every,
        "interval-8 must checkpoint less: {snaps_sparse} vs {snaps_every}"
    );
}

#[test]
fn deterministic_crash_loop_generates_one_ticket_per_hit() {
    let topo = Topology::linear(2, 1);
    let mut net = Network::new(&topo);
    let mut rt = runtime_with(CompromisePolicy::Absolute);
    rt.attach(Box::new(FaultyApp::new(
        Box::new(Hub::new()),
        BugTrigger::OnEventKind(EventKind::PacketIn),
        BugEffect::Crash,
    )))
    .unwrap();
    rt.run_cycle(&mut net);
    let (a, b) = (topo.hosts[0].mac, topo.hosts[1].mac);
    for _ in 0..7 {
        net.inject(a, Packet::ethernet(a, b)).unwrap();
        rt.run_cycle(&mut net);
    }
    assert_eq!(rt.crashpad().tickets.len(), 7);
    // Tickets carry distinct ids and the same diagnosis.
    let ids: std::collections::BTreeSet<u64> = rt.crashpad().tickets.iter().map(|t| t.id).collect();
    assert_eq!(ids.len(), 7);
}
