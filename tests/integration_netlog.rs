//! Integration: NetLog transactions against a live network (E4, E9) —
//! all-or-nothing semantics, rollback fidelity including timeouts and the
//! counter-cache, and the buffered-prototype ablation.

use legosdn::netlog::{NetLog, TxMode};
use legosdn::prelude::*;

fn setup() -> (Network, Topology) {
    let topo = Topology::linear(3, 1);
    (Network::new(&topo), topo)
}

fn add_flow(dst: u64, port: u16) -> Message {
    Message::FlowMod(
        FlowMod::add(Match::eth_dst(MacAddr::from_index(dst)))
            .action(Action::Output(PortNo::Phys(port))),
    )
}

fn total_flows(net: &Network) -> usize {
    net.switches().map(|s| s.table().len()).sum()
}

#[test]
fn committed_transaction_is_durable_across_switches() {
    let (mut net, _) = setup();
    let mut nl = NetLog::new(TxMode::Immediate);
    let mut tx = nl.begin();
    for d in 1..=3u64 {
        nl.execute(&mut tx, &mut net, DatapathId(d), &add_flow(100, 1))
            .unwrap();
    }
    nl.commit(tx, &mut net).unwrap();
    assert_eq!(total_flows(&net), 3);
}

#[test]
fn aborted_transaction_leaves_no_trace_anywhere() {
    let (mut net, _) = setup();
    // Pre-existing state that must survive untouched.
    net.apply(DatapathId(2), &add_flow(7, 1)).unwrap();
    let baseline: Vec<_> = net
        .switches()
        .map(|s| (s.dpid(), s.table().iter().cloned().collect::<Vec<_>>()))
        .collect();

    let mut nl = NetLog::new(TxMode::Immediate);
    let mut tx = nl.begin();
    for d in 1..=3u64 {
        for i in 0..5u64 {
            nl.execute(&mut tx, &mut net, DatapathId(d), &add_flow(200 + i, 1))
                .unwrap();
        }
    }
    // And a delete of the pre-existing flow, mid-transaction.
    nl.execute(
        &mut tx,
        &mut net,
        DatapathId(2),
        &Message::FlowMod(FlowMod::delete(Match::eth_dst(MacAddr::from_index(7)))),
    )
    .unwrap();
    assert_eq!(total_flows(&net), 15, "adds applied, pre-existing deleted");

    let report = nl.abort(tx, &mut net).unwrap();
    assert_eq!(report.undo_failures, 0);

    let after: Vec<_> = net
        .switches()
        .map(|s| (s.dpid(), s.table().iter().cloned().collect::<Vec<_>>()))
        .collect();
    // Flow tables must be semantically identical to the baseline (installed
    // times shift, so compare match/priority/actions).
    for ((d1, before), (d2, now)) in baseline.iter().zip(&after) {
        assert_eq!(d1, d2);
        assert_eq!(before.len(), now.len(), "{d1:?}");
        for (b, n) in before.iter().zip(now) {
            assert_eq!(b.mat, n.mat);
            assert_eq!(b.priority, n.priority);
            assert_eq!(b.actions, n.actions);
        }
    }
}

#[test]
fn rollback_restores_traffic_continuity_with_counter_cache() {
    let (mut net, topo) = setup();
    let host = topo.hosts[0].clone();
    let dpid = host.attach.dpid;
    let dst = MacAddr::from_index(42);

    // A flow carrying real traffic.
    net.apply(
        dpid,
        &Message::FlowMod(
            FlowMod::add(Match::eth_dst(dst)).action(Action::Output(PortNo::Phys(1))),
        ),
    )
    .unwrap();
    for _ in 0..25 {
        net.inject(host.mac, Packet::ethernet(host.mac, dst))
            .unwrap();
    }

    // A buggy transaction flushes the table, then gets rolled back.
    let mut nl = NetLog::new(TxMode::Immediate);
    let mut tx = nl.begin();
    nl.execute(
        &mut tx,
        &mut net,
        dpid,
        &Message::FlowMod(FlowMod::delete(Match::any())),
    )
    .unwrap();
    nl.abort(tx, &mut net).unwrap();

    // Post-rollback traffic accrues on the restored entry.
    for _ in 0..5 {
        net.inject(host.mac, Packet::ethernet(host.mac, dst))
            .unwrap();
    }
    // Raw switch counters restarted, but NetLog-adjusted stats continue.
    let out = net
        .apply(
            dpid,
            &Message::StatsRequest(StatsRequest::Flow {
                mat: Match::any(),
                out_port: PortNo::None,
            }),
        )
        .unwrap();
    let mut reply = match &out.replies[0] {
        Message::StatsReply(sr) => sr.clone(),
        other => panic!("unexpected {other:?}"),
    };
    nl.adjust_stats(dpid, &mut reply);
    match reply {
        StatsReply::Flow(flows) => {
            assert_eq!(flows.len(), 1);
            assert_eq!(flows[0].packet_count, 30, "25 pre-delete + 5 post-restore");
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn buffered_mode_discards_on_abort_without_rollback_messages() {
    let (mut net, _) = setup();
    let mut nl = NetLog::new(TxMode::Buffered);
    let mut tx = nl.begin();
    for d in 1..=3u64 {
        nl.execute(&mut tx, &mut net, DatapathId(d), &add_flow(1, 1))
            .unwrap();
    }
    assert_eq!(total_flows(&net), 0, "nothing touched the network yet");
    let report = nl.abort(tx, &mut net).unwrap();
    assert_eq!(report.undo_messages, 0, "abort is free in buffered mode");
    assert_eq!(total_flows(&net), 0);
}

#[test]
fn buffered_mode_cannot_read_its_own_writes_immediate_can() {
    // The paper's stated reason the buffer prototype is "not practical":
    // within a transaction, a stats read in buffered mode misses the
    // transaction's own installs.
    let (mut net, _) = setup();
    let stats_req = Message::StatsRequest(StatsRequest::Aggregate {
        mat: Match::any(),
        out_port: PortNo::None,
    });

    let mut nl = NetLog::new(TxMode::Buffered);
    let mut tx = nl.begin();
    nl.execute(&mut tx, &mut net, DatapathId(1), &add_flow(5, 1))
        .unwrap();
    let replies = nl
        .execute(&mut tx, &mut net, DatapathId(1), &stats_req)
        .unwrap();
    assert!(
        replies.is_empty(),
        "buffered reads return nothing until commit"
    );
    nl.commit(tx, &mut net).unwrap();

    let mut nl = NetLog::new(TxMode::Immediate);
    let mut tx = nl.begin();
    nl.execute(&mut tx, &mut net, DatapathId(2), &add_flow(5, 1))
        .unwrap();
    let replies = nl
        .execute(&mut tx, &mut net, DatapathId(2), &stats_req)
        .unwrap();
    match replies.first() {
        Some(Message::StatsReply(StatsReply::Aggregate { flow_count, .. })) => {
            assert_eq!(*flow_count, 1, "immediate mode sees its own writes");
        }
        other => panic!("unexpected {other:?}"),
    }
    nl.commit(tx, &mut net).unwrap();
}

#[test]
fn partial_install_ambiguity_is_resolved_by_abort() {
    // §3.4: "When an application crashes after installing a few rules, it
    // is not clear whether the few rules issued were part of a larger set."
    // With NetLog the open transaction at crash time IS the answer: abort
    // rolls back exactly the partial prefix.
    let (mut net, _) = setup();
    let mut nl = NetLog::new(TxMode::Immediate);
    let mut tx = nl.begin();
    // The app intended 6 rules but "crashed" after 3.
    for i in 0..3u64 {
        nl.execute(&mut tx, &mut net, DatapathId(1), &add_flow(300 + i, 1))
            .unwrap();
    }
    assert_eq!(total_flows(&net), 3, "partial prefix visible pre-abort");
    nl.abort(tx, &mut net).unwrap();
    assert_eq!(total_flows(&net), 0, "no partial state survives");
    assert_eq!(nl.stats().aborted, 1);
}

#[test]
fn interleaved_transactions_roll_back_independently() {
    let (mut net, _) = setup();
    let mut nl = NetLog::new(TxMode::Immediate);
    let mut tx_keep = nl.begin();
    let mut tx_drop = nl.begin();
    nl.execute(&mut tx_keep, &mut net, DatapathId(1), &add_flow(1, 1))
        .unwrap();
    nl.execute(&mut tx_drop, &mut net, DatapathId(1), &add_flow(2, 1))
        .unwrap();
    nl.execute(&mut tx_keep, &mut net, DatapathId(2), &add_flow(1, 1))
        .unwrap();
    nl.execute(&mut tx_drop, &mut net, DatapathId(2), &add_flow(2, 1))
        .unwrap();
    nl.abort(tx_drop, &mut net).unwrap();
    nl.commit(tx_keep, &mut net).unwrap();
    // Only tx_keep's flows remain.
    for d in [1u64, 2] {
        let sw = net.switch(DatapathId(d)).unwrap();
        assert_eq!(sw.table().len(), 1);
        assert_eq!(
            sw.table().iter().next().unwrap().mat,
            Match::eth_dst(MacAddr::from_index(1))
        );
    }
}
