//! Integration: the paper's headline claim (E1). An app crash kills the
//! monolithic stack; under LegoSDN the controller, the other apps, and the
//! network all keep working.

use legosdn::prelude::*;

/// Drive `n` packets through the network, returning the network's total
/// end-to-end deliveries (hub-style apps deliver via packet-out floods
/// executed during the controller cycle, so the lifetime counter is the
/// right availability metric).
fn drive_traffic<R>(
    net: &mut Network,
    topo: &Topology,
    n: usize,
    mut cycle: impl FnMut(&mut Network) -> R,
) -> u64 {
    let hosts = topo.hosts.clone();
    for i in 0..n {
        let src = &hosts[i % hosts.len()];
        let dst = &hosts[(i + 1) % hosts.len()];
        net.inject(src.mac, Packet::ethernet(src.mac, dst.mac))
            .unwrap();
        cycle(net);
    }
    net.delivery_counters().0
}

fn poisoned_flooder(poison: MacAddr) -> Box<FaultyApp> {
    Box::new(FaultyApp::new(
        Box::new(Hub::new()),
        BugTrigger::OnPacketToMac(poison),
        BugEffect::Crash,
    ))
}

#[test]
fn monolithic_controller_dies_with_its_app() {
    let topo = Topology::linear(3, 1);
    let mut net = Network::new(&topo);
    let poison = topo.hosts[2].mac;
    let mut ctl = MonolithicController::new();
    ctl.attach(poisoned_flooder(poison));
    ctl.attach(Box::new(LearningSwitch::new()));
    ctl.run_cycle(&mut net);
    assert!(!ctl.is_crashed());

    // Traffic to the poisoned destination kills the whole stack.
    let a = topo.hosts[0].mac;
    net.inject(a, Packet::ethernet(a, poison)).unwrap();
    let report = ctl.run_cycle(&mut net);
    assert!(report.crash.is_some());
    assert!(ctl.is_crashed());

    // Everything after is lost: no app sees events, no commands flow.
    let before = ctl.stats().commands_executed;
    net.inject(a, Packet::ethernet(a, topo.hosts[1].mac))
        .unwrap();
    ctl.run_cycle(&mut net);
    assert_eq!(ctl.stats().commands_executed, before);
    assert!(ctl.stats().events_lost_while_down > 0);
}

#[test]
fn legosdn_survives_the_same_bug() {
    let topo = Topology::linear(3, 1);
    let mut net = Network::new(&topo);
    let poison = topo.hosts[2].mac;
    let mut rt = LegoSdnRuntime::new(LegoSdnConfig::default());
    rt.attach(poisoned_flooder(poison)).unwrap();
    rt.attach(Box::new(LearningSwitch::new())).unwrap();
    rt.run_cycle(&mut net);

    let a = topo.hosts[0].mac;
    net.inject(a, Packet::ethernet(a, poison)).unwrap();
    let report = rt.run_cycle(&mut net);
    assert!(report.recoveries >= 1);
    assert!(!rt.is_crashed());

    // The controller keeps executing commands afterwards.
    let before = rt.stats().commands_executed;
    net.inject(a, Packet::ethernet(a, topo.hosts[1].mac))
        .unwrap();
    rt.run_cycle(&mut net);
    assert!(rt.stats().commands_executed > before);
}

#[test]
fn network_availability_gap_is_measurable() {
    // The quantitative shape behind Figure 1: deliveries under a recurring
    // crash trigger, monolithic vs LegoSDN, same workload. Traffic rotates
    // over three hosts; packets toward host 3 are poisoned, so a third of
    // the events trigger the bug.
    let build = || {
        let topo = Topology::linear(3, 1);
        let net = Network::new(&topo);
        (topo, net)
    };

    // Monolithic: the first poisoned packet kills everything.
    let (topo, mut net) = build();
    let poison = topo.hosts[2].mac;
    let mut ctl = MonolithicController::new();
    ctl.attach(poisoned_flooder(poison));
    ctl.run_cycle(&mut net);
    let mono_delivered = drive_traffic(&mut net, &topo, 30, |n| {
        ctl.run_cycle(n);
    });

    // LegoSDN: identical apps, identical traffic; only the poisoned third
    // of events is compromised away.
    let (topo, mut net) = build();
    let mut rt = LegoSdnRuntime::new(LegoSdnConfig::default());
    rt.attach(poisoned_flooder(poison)).unwrap();
    rt.run_cycle(&mut net);
    let lego_delivered = drive_traffic(&mut net, &topo, 30, |n| {
        rt.run_cycle(n);
    });

    assert!(
        lego_delivered > mono_delivered,
        "LegoSDN delivered {lego_delivered}, monolithic {mono_delivered}"
    );
    assert!(ctl.is_crashed());
    assert!(!rt.is_crashed());
}

#[test]
fn innocent_apps_keep_their_state_across_a_neighbors_crashes() {
    let topo = Topology::linear(2, 1);
    let mut net = Network::new(&topo);
    let mut rt = LegoSdnRuntime::new(LegoSdnConfig::default());
    rt.attach(Box::new(FaultyApp::new(
        Box::new(Hub::new()),
        BugTrigger::OnEventKind(EventKind::PacketIn),
        BugEffect::Crash,
    )))
    .unwrap();
    rt.attach(Box::new(LearningSwitch::new())).unwrap();
    rt.run_cycle(&mut net);

    let (a, b) = (topo.hosts[0].mac, topo.hosts[1].mac);
    // Several poisoned events: the faulty app crashes every time; the
    // learning switch keeps learning (its checkpoint event counter grows).
    for _ in 0..4 {
        net.inject(a, Packet::ethernet(a, b)).unwrap();
        rt.run_cycle(&mut net);
        net.inject(b, Packet::ethernet(b, a)).unwrap();
        rt.run_cycle(&mut net);
    }
    assert!(rt.stats().failstop_recoveries >= 4);
    let ls_events = rt
        .crashpad()
        .checkpoints
        .events_delivered("learning-switch");
    assert!(ls_events >= 4, "learning switch starved: {ls_events}");
    // After learning both sides, traffic flows switch-locally.
    let trace = net.inject(a, Packet::ethernet(a, b)).unwrap();
    assert!(trace.delivered_to(b), "{trace:?}");
}

#[test]
fn byzantine_app_cannot_blackhole_the_network() {
    let topo = Topology::linear(2, 1);
    let (a, b) = (topo.hosts[0].mac, topo.hosts[1].mac);

    // Monolithic: the byzantine rule lands and traffic dies.
    let mut net = Network::new(&topo);
    let mut ctl = MonolithicController::new();
    ctl.attach(Box::new(FaultyApp::new(
        Box::new(LearningSwitch::new()),
        BugTrigger::OnEventKind(EventKind::PacketIn),
        BugEffect::Blackhole,
    )));
    ctl.run_cycle(&mut net);
    net.inject(a, Packet::ethernet(a, b)).unwrap();
    ctl.run_cycle(&mut net);
    let mono_blackholed = net.switches().any(|s| {
        s.table()
            .iter()
            .any(|e| e.priority == u16::MAX && e.actions.is_empty())
    });
    assert!(mono_blackholed, "monolithic installs the bad rule");

    // LegoSDN: the gate rejects it.
    let mut net = Network::new(&topo);
    let mut rt = LegoSdnRuntime::new(LegoSdnConfig::default());
    rt.attach(Box::new(FaultyApp::new(
        Box::new(LearningSwitch::new()),
        BugTrigger::OnEventKind(EventKind::PacketIn),
        BugEffect::Blackhole,
    )))
    .unwrap();
    rt.run_cycle(&mut net);
    net.inject(a, Packet::ethernet(a, b)).unwrap();
    rt.run_cycle(&mut net);
    assert!(rt.stats().byzantine_blocked >= 1);
    let lego_blackholed = net.switches().any(|s| {
        s.table()
            .iter()
            .any(|e| e.priority == u16::MAX && e.actions.is_empty())
    });
    assert!(!lego_blackholed, "LegoSDN must keep the bad rule out");
}
