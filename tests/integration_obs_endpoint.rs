//! Integration: the live ops endpoint over a real TCP socket.
//!
//! Starts `ObsServer` on an ephemeral port, drives a small fault campaign
//! through a full `LegoSdnRuntime`, and verifies what an external scraper
//! would see: `/metrics` parses under the Prometheus text grammar (with
//! hostile label values escaped), counters strictly increase between
//! scrapes, `/healthz` answers while live, and graceful shutdown joins
//! every thread and closes the listener.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use legosdn::crashpad::{CheckpointPolicy, CrashPadConfig, PolicyTable, TransformDirection};
use legosdn::prelude::*;

/// Raw-TCP fetch (the `curl` equivalent): returns `(status, body)`.
fn scrape(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to ops endpoint");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").as_bytes())
        .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .expect("header/body separator");
    (status, body)
}

fn is_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    (first.is_ascii_alphabetic() || first == '_' || first == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Validate one `{...}` interior: `name="value"` pairs, comma-separated,
/// values escaping `\\`, `\"` and `\n` and containing no raw newline.
fn assert_valid_labels(s: &str, line: &str) {
    let mut chars = s.chars().peekable();
    loop {
        let mut name = String::new();
        while let Some(&c) = chars.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                name.push(c);
                chars.next();
            } else {
                break;
            }
        }
        assert!(is_metric_name(&name), "bad label name in {line:?}");
        assert_eq!(chars.next(), Some('='), "expected '=' in {line:?}");
        assert_eq!(
            chars.next(),
            Some('"'),
            "expected opening quote in {line:?}"
        );
        loop {
            match chars.next() {
                Some('\\') => {
                    let esc = chars.next();
                    assert!(
                        matches!(esc, Some('\\' | '"' | 'n')),
                        "invalid escape \\{esc:?} in {line:?}"
                    );
                }
                Some('"') => break,
                Some(c) => assert_ne!(c, '\n', "raw newline inside label value: {line:?}"),
                None => panic!("unterminated label value in {line:?}"),
            }
        }
        match chars.next() {
            Some(',') => {}
            None => break,
            other => panic!("expected ',' or end after label, got {other:?} in {line:?}"),
        }
    }
}

/// Every line of the exposition must be a `# TYPE` comment or a
/// `name[{labels}] value` sample.
fn assert_valid_exposition(text: &str) {
    assert!(!text.is_empty(), "empty exposition");
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let parts: Vec<&str> = rest.split(' ').collect();
            assert_eq!(parts.len(), 2, "malformed TYPE comment: {line:?}");
            assert!(is_metric_name(parts[0]), "bad name in TYPE: {line:?}");
            assert!(
                matches!(parts[1], "counter" | "gauge" | "histogram"),
                "unknown metric type: {line:?}"
            );
            continue;
        }
        assert!(!line.starts_with('#'), "unexpected comment form: {line:?}");
        let (series, value) = line.rsplit_once(' ').expect("sample needs a value");
        assert!(
            value.parse::<f64>().is_ok(),
            "unparseable sample value in {line:?}"
        );
        match series.split_once('{') {
            None => assert!(is_metric_name(series), "bad metric name: {line:?}"),
            Some((name, labels)) => {
                assert!(is_metric_name(name), "bad metric name: {line:?}");
                let labels = labels.strip_suffix('}').expect("unclosed label braces");
                assert_valid_labels(labels, line);
            }
        }
    }
}

/// Parse every sample into `(series, value)` pairs for cross-scrape
/// comparison.
fn samples(text: &str) -> Vec<(String, f64)> {
    text.lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
        .filter_map(|l| {
            let (series, value) = l.rsplit_once(' ')?;
            Some((series.to_string(), value.parse().ok()?))
        })
        .collect()
}

fn sample(text: &str, series: &str) -> f64 {
    samples(text)
        .into_iter()
        .find(|(s, _)| s == series)
        .map(|(_, v)| v)
        .unwrap_or_else(|| panic!("series {series} not found"))
}

struct Campaign {
    net: Network,
    rt: LegoSdnRuntime,
    poison: MacAddr,
    src: MacAddr,
    dst: MacAddr,
}

impl Campaign {
    fn new() -> Self {
        let topo = Topology::linear(3, 1);
        let mut net = Network::new(&topo);
        // Private obs instance (construction-time wiring): the endpoint
        // must serve exactly this campaign, isolated from other tests in
        // the process.
        let mut rt = LegoSdnRuntime::new(LegoSdnConfig {
            crashpad: CrashPadConfig {
                checkpoints: CheckpointPolicy {
                    interval: 2,
                    history: 8,
                    ..CheckpointPolicy::default()
                },
                policies: PolicyTable::with_default(CompromisePolicy::Absolute),
                transform_direction: TransformDirection::Decompose,
            },
            checker: Some(Checker::new(vec![
                Invariant::NoBlackHoles,
                Invariant::NoLoops,
            ])),
            obs: legosdn::ObsConfig::instance(legosdn::obs::Obs::new()),
            ..LegoSdnConfig::default()
        });
        let poison = topo.hosts[2].mac;
        rt.attach(Box::new(LearningSwitch::new())).unwrap();
        rt.attach(Box::new(FaultyApp::new(
            Box::new(ShortestPathRouter::new()),
            BugTrigger::OnEventKind(EventKind::SwitchDown),
            BugEffect::Crash,
        )))
        .unwrap();
        rt.run_cycle(&mut net);
        Campaign {
            src: topo.hosts[0].mac,
            dst: topo.hosts[1].mac,
            net,
            rt,
            poison,
        }
    }

    /// One campaign round: healthy traffic, a poisoned packet, and a
    /// switch bounce (the fail-stop trigger).
    fn round(&mut self) {
        for _ in 0..3 {
            self.net
                .inject(self.src, Packet::ethernet(self.src, self.dst))
                .unwrap();
            self.rt.run_cycle(&mut self.net);
        }
        self.net
            .inject(self.src, Packet::ethernet(self.src, self.poison))
            .unwrap();
        self.rt.run_cycle(&mut self.net);
        self.net.set_switch_up(DatapathId(2), false).unwrap();
        self.rt.run_cycle(&mut self.net);
        self.net.set_switch_up(DatapathId(2), true).unwrap();
        self.rt.run_cycle(&mut self.net);
    }
}

#[test]
fn live_endpoint_serves_a_fault_campaign() {
    let mut campaign = Campaign::new();
    let obs = campaign.rt.obs();
    // A hostile label exercising every escape the exposition format
    // defines: double-quote, backslash, newline.
    obs.counter("campaign", "weird_label_total", "a\"b\\c\nd")
        .inc();

    let server = ObsServer::start(obs.clone(), ServeConfig::ephemeral()).expect("bind endpoint");
    let addr = server.local_addr();

    campaign.round();

    // Liveness while the campaign runs.
    let (status, body) = scrape(addr, "/healthz");
    assert_eq!((status, body.as_str()), (200, "ok\n"));

    // First scrape: grammar-valid, hostile label escaped onto one line.
    let (status, first) = scrape(addr, "/metrics");
    assert_eq!(status, 200);
    assert_valid_exposition(&first);
    assert!(
        first.contains("legosdn_campaign_weird_label_total{label=\"a\\\"b\\\\c\\nd\"} 1"),
        "escaped hostile label missing:\n{first}"
    );
    assert!(sample(&first, "legosdn_core_dispatches") >= 1.0);

    // The campaign produced at least one reconstructed incident.
    let (status, incidents) = scrape(addr, "/incidents");
    assert_eq!(status, 200);
    assert!(
        incidents.contains("incident app="),
        "no incidents:\n{incidents}"
    );

    let (status, json) = scrape(addr, "/metrics.json");
    assert_eq!(status, 200);
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert!(json.contains("\"incidents\""));

    // More campaign rounds, then a second scrape: counters from both the
    // runtime and the endpoint itself must strictly increase.
    campaign.round();
    campaign.round();
    let (_, second) = scrape(addr, "/metrics");
    assert_valid_exposition(&second);
    for series in [
        "legosdn_core_dispatches",
        "legosdn_obsd_http_requests_total{label=\"200\"}",
    ] {
        let (a, b) = (sample(&first, series), sample(&second, series));
        assert!(b > a, "{series} must strictly increase: {a} then {b}");
    }

    // Graceful shutdown ordering: every thread joins (accept + 2 default
    // workers, none panicked or leaked), then the listener is closed.
    let joined = server.shutdown();
    assert_eq!(joined, 3, "accept loop + worker pool all joined");
    assert!(
        TcpStream::connect(addr).is_err(),
        "listener must be closed after shutdown"
    );
}
