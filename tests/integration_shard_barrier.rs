//! Cross-shard commit synchronization: when apps on *different* worker
//! shards write the same switch, the commit barrier must serialize their
//! transactions into exactly the order sequential dispatch would have
//! produced — including while a neighboring app is crashing and being
//! replay-recovered mid-window (DESIGN.md §13).

use legosdn::controller::app::{Ctx, RestoreError, SdnApp};
use legosdn::crashpad::{CheckpointPolicy, CrashPadConfig, PolicyTable, TransformDirection};
use legosdn::netlog::TxRecord;
use legosdn::netsim::FlowEntry;
use legosdn::prelude::*;

/// Installs one uniquely-tagged flow on a FIXED switch per packet-in, no
/// matter where the packet arrived. Every instance targets the same
/// switch, so any two instances on different shards force a shared-switch
/// conflict at the barrier.
struct SharedSwitchWriter {
    id: u64,
    count: u64,
}

const TAG_BASE: u64 = 40_000;
const CONTESTED: DatapathId = DatapathId(1);

impl SdnApp for SharedSwitchWriter {
    fn name(&self) -> &str {
        "shared-switch-writer"
    }

    fn subscriptions(&self) -> Vec<EventKind> {
        vec![EventKind::PacketIn]
    }

    fn on_event(&mut self, event: &Event, ctx: &mut Ctx<'_>) {
        if let Event::PacketIn(_, pi) = event {
            let mut mat = Match::from_packet(&pi.packet, pi.in_port);
            // Unique per (instance, delivery): installs never shadow one
            // another, so the contested table records every commit.
            mat.eth_src = Some(MacAddr::from_index(
                TAG_BASE + self.id * 10_000 + self.count,
            ));
            self.count += 1;
            ctx.send(CONTESTED, Message::FlowMod(FlowMod::add(mat)));
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        self.count.to_le_bytes().to_vec()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), RestoreError> {
        let arr: [u8; 8] = bytes
            .try_into()
            .map_err(|_| RestoreError("bad snapshot".into()))?;
        self.count = u64::from_le_bytes(arr);
        Ok(())
    }
}

struct Residue {
    flow_tables: Vec<(DatapathId, Vec<FlowEntry>)>,
    txlog: Vec<TxRecord>,
    stats: RuntimeStats,
    recoveries: usize,
    worker_spread: usize,
    shared_switch_conflicts: u64,
}

/// Six contested-switch writers plus one recurring crasher, driven
/// through three rounds of bursts with a crash trigger in the middle of
/// each burst.
fn run(mode: DispatchMode, depth: usize, workers: usize) -> Residue {
    run_lookahead(mode, depth, workers, 1)
}

/// [`run`] with an explicit cross-cycle lookahead.
fn run_lookahead(mode: DispatchMode, depth: usize, workers: usize, lookahead: usize) -> Residue {
    let topo = Topology::linear(2, 2);
    let mut net = Network::new(&topo);
    let poison = topo.hosts[topo.hosts.len() - 1].mac;
    let obs = Obs::new();
    let mut rt = LegoSdnRuntime::new(
        LegoSdnConfig {
            isolation: IsolationMode::Channel,
            dispatch: DispatchConfig {
                mode,
                ..DispatchConfig::default()
            }
            .window(depth)
            .workers(workers)
            .lookahead(lookahead),
            obs: ObsConfig::instance(obs.clone()),
            crashpad: CrashPadConfig {
                checkpoints: CheckpointPolicy {
                    interval: 2,
                    history: 8,
                    ..CheckpointPolicy::default()
                },
                policies: PolicyTable::with_default(CompromisePolicy::Absolute),
                transform_direction: TransformDirection::Decompose,
            },
            ..LegoSdnConfig::default()
        }
        .build()
        .expect("valid config"),
    );

    let mut ids = Vec::new();
    for id in 0..6u64 {
        ids.push(
            rt.attach(Box::new(SharedSwitchWriter { id, count: 0 }))
                .unwrap(),
        );
    }
    // The crasher fires on every poison packet, so recovery (restore +
    // replay under the Absolute policy) interleaves with the writers'
    // contested commits in every round.
    rt.attach(Box::new(FaultyApp::new(
        Box::new(Hub::new()),
        BugTrigger::OnPacketToMac(poison),
        BugEffect::Crash,
    )))
    .unwrap();
    let worker_spread = ids
        .iter()
        .filter_map(|&id| rt.worker_of(id))
        .collect::<std::collections::BTreeSet<_>>()
        .len();

    rt.run_cycle(&mut net); // handshake + discovery
    let a = topo.hosts[0].mac;
    let mut recoveries = 0;
    for round in 0..3u64 {
        // A 5-packet burst with the crash trigger mid-burst: slots after
        // the crash are cancelled and re-sent from the restored state
        // while the writers keep committing against the contested switch.
        for slot in 0..5u64 {
            let dst = if slot == 2 {
                poison
            } else {
                MacAddr::from_index(600 + round * 8 + slot)
            };
            let _ = net.inject(a, Packet::ethernet(a, dst));
        }
        let report = rt.run_cycle(&mut net);
        recoveries += report.recoveries;
    }
    assert!(!rt.is_crashed());

    let mut flow_tables: Vec<(DatapathId, Vec<FlowEntry>)> = net
        .switches()
        .map(|sw| (sw.dpid(), sw.table().iter().cloned().collect()))
        .collect();
    flow_tables.sort_by_key(|(dpid, _)| *dpid);
    let txlog = rt.netlog().log().iter().cloned().collect();
    let stats = rt.stats();
    let shared_switch_conflicts = obs
        .counter("netlog", "barrier_shared_switch_conflicts", "")
        .get();
    rt.shutdown();
    Residue {
        flow_tables,
        txlog,
        stats,
        recoveries,
        worker_spread,
        shared_switch_conflicts,
    }
}

#[test]
fn cross_shard_writes_to_one_switch_commit_in_sequential_order() {
    let reference = run(DispatchMode::Sequential, 1, 1);
    assert!(
        reference.recoveries > 0,
        "campaign produced no crash recovery"
    );
    assert!(!reference.txlog.is_empty(), "campaign produced no txlog");
    for workers in [2usize, 4] {
        let sharded = run(DispatchMode::Pipelined, 4, workers);
        assert!(
            sharded.worker_spread > 1,
            "workers {workers}: all writers landed on one shard"
        );
        assert!(
            sharded.shared_switch_conflicts > 0,
            "workers {workers}: no shared-switch conflict ever reached the barrier"
        );
        assert!(
            sharded.recoveries > 0,
            "workers {workers}: the crasher never fired"
        );
        assert_eq!(
            reference.flow_tables, sharded.flow_tables,
            "workers {workers}: contested flow tables diverge from sequential"
        );
        assert_eq!(
            reference.txlog, sharded.txlog,
            "workers {workers}: NetLog transaction order diverges from sequential"
        );
        assert_eq!(
            reference.stats, sharded.stats,
            "workers {workers}: runtime counters diverge from sequential"
        );
    }
}

#[test]
fn crash_during_lookahead_replays_contested_commits_in_order() {
    // At lookahead 2 the per-stub send cursor runs ahead into raws this
    // cycle's own commits enqueue (flood replies arriving as fresh
    // packet-ins on the contested switch). The mid-burst crash must
    // cancel those cross-cycle in-flight tags and re-send them from the
    // restored state without perturbing the contested commit order.
    let reference = run_lookahead(DispatchMode::Sequential, 1, 1, 2);
    assert!(
        reference.recoveries > 0,
        "lookahead campaign produced no crash recovery"
    );
    assert!(!reference.txlog.is_empty(), "campaign produced no txlog");
    for workers in [2usize, 4] {
        let sharded = run_lookahead(DispatchMode::Pipelined, 4, workers, 2);
        assert!(
            sharded.worker_spread > 1,
            "workers {workers}: all writers landed on one shard"
        );
        assert!(
            sharded.recoveries > 0,
            "workers {workers}: the crasher never fired under lookahead"
        );
        assert_eq!(
            reference.flow_tables, sharded.flow_tables,
            "workers {workers}: lookahead flow tables diverge from sequential"
        );
        assert_eq!(
            reference.txlog, sharded.txlog,
            "workers {workers}: lookahead NetLog order diverges from sequential"
        );
        assert_eq!(
            reference.stats, sharded.stats,
            "workers {workers}: lookahead counters diverge from sequential"
        );
    }
}

#[test]
fn contested_commit_order_is_stable_across_repeated_sharded_runs() {
    let first = run(DispatchMode::Pipelined, 4, 4);
    for _ in 0..2 {
        let again = run(DispatchMode::Pipelined, 4, 4);
        assert_eq!(first.flow_tables, again.flow_tables);
        assert_eq!(first.txlog, again.txlog);
        assert_eq!(first.stats, again.stats);
    }
}
