//! Integration: the §3.4 novel use cases and the §5 extensions (E10) —
//! N-version voting, per-app resource limits, controller upgrades without
//! app restarts, clone-based non-determinism handling, and STS-guided
//! multi-event diagnosis.

use legosdn::clone_runner::ClonePair;
use legosdn::crashpad::{DeliveryResult, LocalSandbox, RecoverableApp};
use legosdn::nversion::NVersionApp;
use legosdn::prelude::*;
use legosdn::sts::{ddmin, AppReplayOracle};

#[test]
fn nversion_group_masks_a_buggy_version_in_the_runtime() {
    let topo = Topology::linear(2, 1);
    let mut net = Network::new(&topo);
    let mut rt = LegoSdnRuntime::new(LegoSdnConfig::default());
    let poison = topo.hosts[1].mac;
    let nv = NVersionApp::new(
        "hub-3v",
        vec![
            Box::new(Hub::new()),
            Box::new(Hub::new()),
            Box::new(FaultyApp::new(
                Box::new(Hub::new()),
                BugTrigger::OnPacketToMac(poison),
                BugEffect::Crash,
            )),
        ],
    );
    rt.attach(Box::new(nv)).unwrap();
    rt.run_cycle(&mut net);
    let a = topo.hosts[0].mac;
    // Poisoned packet: version 3 crashes *inside the group*, but the group
    // output (majority flood) still flows — no Crash-Pad recovery needed.
    net.inject(a, Packet::ethernet(a, poison)).unwrap();
    let report = rt.run_cycle(&mut net);
    assert_eq!(report.recoveries, 0, "group masked the crash internally");
    assert!(report.commands > 0);
    assert!(!rt.is_crashed());
}

#[test]
fn resource_limited_app_cannot_starve_the_controller() {
    let topo = Topology::linear(2, 1);
    let mut net = Network::new(&topo);
    let mut rt = LegoSdnRuntime::new(LegoSdnConfig::default());
    // The rogue app gets a tight command budget; the good app is unlimited.
    let rogue = rt
        .attach_with_limits(
            Box::new(Hub::new()),
            ResourceLimits {
                max_commands: Some(3),
                ..ResourceLimits::default()
            },
        )
        .unwrap();
    rt.attach(Box::new(LearningSwitch::new())).unwrap();
    rt.run_cycle(&mut net);
    let (a, b) = (topo.hosts[0].mac, topo.hosts[1].mac);
    for _ in 0..6 {
        net.inject(a, Packet::ethernet(a, b)).unwrap();
        rt.run_cycle(&mut net);
    }
    assert!(matches!(
        rt.app_status(rogue),
        Some(AppStatus::Suspended(_))
    ));
    assert!(rt.stats().commands_suppressed > 0);
    // The learning switch is unaffected.
    let usage = rt.app_usage(rogue).unwrap();
    assert!(usage.commands_emitted <= 3);
}

#[test]
fn controller_upgrade_vs_monolithic_reboot() {
    // §3.4: monolithic upgrade loses app state; LegoSDN upgrade doesn't.
    let topo = Topology::linear(2, 1);
    let (a, b) = (topo.hosts[0].mac, topo.hosts[1].mac);

    // Monolithic: learn, reboot, verify amnesia.
    let mut net = Network::new(&topo);
    let mut ctl = MonolithicController::new();
    ctl.attach(Box::new(LearningSwitch::new()));
    ctl.run_cycle(&mut net);
    net.inject(a, Packet::ethernet(a, b)).unwrap();
    net.inject(b, Packet::ethernet(b, a)).unwrap();
    ctl.run_cycle(&mut net);
    ctl.reboot();
    assert_eq!(
        ctl.translator().topology.n_links(),
        0,
        "monolithic forgets the topology"
    );

    // LegoSDN: learn, upgrade, verify continuity.
    let mut net = Network::new(&topo);
    let mut rt = LegoSdnRuntime::new(LegoSdnConfig::default());
    rt.attach(Box::new(LearningSwitch::new())).unwrap();
    rt.run_cycle(&mut net);
    net.inject(a, Packet::ethernet(a, b)).unwrap();
    net.inject(b, Packet::ethernet(b, a)).unwrap();
    rt.run_cycle(&mut net);
    let events_before = rt
        .crashpad()
        .checkpoints
        .events_delivered("learning-switch");
    rt.upgrade_controller(&mut net);
    assert!(
        rt.translator().topology.n_links() > 0,
        "LegoSDN re-handshakes inline"
    );
    assert_eq!(
        rt.crashpad()
            .checkpoints
            .events_delivered("learning-switch"),
        events_before,
        "apps were not restarted"
    );
    // Traffic continues immediately.
    net.inject(a, Packet::ethernet(a, b)).unwrap();
    let report = rt.run_cycle(&mut net);
    assert!(report.events > 0);
}

#[test]
fn clone_pair_survives_nondeterministic_bug_under_crashpad() {
    // The §5 mechanism end-to-end: a ClonePair under Crash-Pad. The
    // non-deterministic bug (RNG excluded from snapshots, diverging seeds)
    // fires on the primary; the clone's output is promoted.
    let make = |seed| {
        LocalSandbox::new(Box::new(FaultyApp::new(
            Box::new(Hub::new()),
            BugTrigger::WithProbability {
                per_mille: 400,
                seed,
            },
            BugEffect::Crash,
        )))
    };
    let mut pair = ClonePair::new(make(7), make(100_003));
    let topo = legosdn::controller::services::TopologyView::default();
    let dev = legosdn::controller::services::DeviceView::default();
    let mut processed = 0;
    for i in 0..60u64 {
        let ev = Event::PacketIn(
            DatapathId(1),
            PacketIn {
                buffer_id: BufferId::NONE,
                in_port: PortNo::Phys(1),
                reason: PacketInReason::NoMatch,
                packet: Packet::ethernet(MacAddr::from_index(1), MacAddr::from_index(i + 2)),
            },
        );
        match pair.deliver(&ev, &topo, &dev, SimTime::ZERO) {
            DeliveryResult::Ok(_) => processed += 1,
            _ => break,
        }
    }
    // With p=0.4 per replica per event, a lone app dies almost immediately;
    // the pair should absorb at least one failure or reach a double fault
    // far later than a single app's expectation (~2.5 events).
    assert!(
        pair.stats().switchovers > 0 || processed >= 3,
        "pair stats {:?}, processed {processed}",
        pair.stats()
    );
}

#[test]
fn sts_pinpoints_the_multi_event_trigger() {
    // §5: a crash caused by an accumulation of events. STS (ddmin) over the
    // history isolates the minimal causal sequence and thereby which
    // checkpoint to roll back to.
    use legosdn::controller::app::{Ctx, RestoreError, SdnApp};

    /// Crashes once it has seen 2 link-downs AND 1 switch-down.
    struct Accumulator {
        link_downs: u32,
        switch_downs: u32,
    }
    impl SdnApp for Accumulator {
        fn name(&self) -> &str {
            "accumulator"
        }
        fn subscriptions(&self) -> Vec<EventKind> {
            EventKind::ALL.to_vec()
        }
        fn on_event(&mut self, event: &Event, _ctx: &mut Ctx<'_>) {
            match event {
                Event::LinkDown { .. } => self.link_downs += 1,
                Event::SwitchDown(_) => self.switch_downs += 1,
                _ => {}
            }
            if self.link_downs >= 2 && self.switch_downs >= 1 {
                panic!("cumulative failure");
            }
        }
        fn snapshot(&self) -> Vec<u8> {
            vec![self.link_downs as u8, self.switch_downs as u8]
        }
        fn restore(&mut self, b: &[u8]) -> Result<(), RestoreError> {
            if b.len() != 2 {
                return Err(RestoreError("len".into()));
            }
            self.link_downs = u32::from(b[0]);
            self.switch_downs = u32::from(b[1]);
            Ok(())
        }
    }

    // A noisy 40-event history with the three culprits scattered in it.
    let ep = |d: u64, p: u16| legosdn::netsim::Endpoint::new(DatapathId(d), p);
    let mut history = Vec::new();
    for i in 0..40u64 {
        history.push(Event::SwitchUp(DatapathId(i)));
        if i == 7 || i == 21 {
            history.push(Event::LinkDown {
                a: ep(1, 1),
                b: ep(2, 1),
            });
        }
        if i == 33 {
            history.push(Event::SwitchDown(DatapathId(9)));
        }
    }
    let mut oracle = AppReplayOracle::new(
        || {
            Box::new(Accumulator {
                link_downs: 0,
                switch_downs: 0,
            })
        },
        legosdn::controller::services::TopologyView::default(),
        legosdn::controller::services::DeviceView::default(),
    );
    let report = ddmin(&history, &mut oracle).unwrap();
    assert_eq!(
        report.minimal.len(),
        3,
        "exactly the culprits: {:?}",
        report.minimal
    );
    assert_eq!(
        report
            .minimal
            .iter()
            .filter(|e| matches!(e, Event::LinkDown { .. }))
            .count(),
        2
    );
    assert_eq!(
        report
            .minimal
            .iter()
            .filter(|e| matches!(e, Event::SwitchDown(_)))
            .count(),
        1
    );
}

#[test]
fn runtime_diagnose_pinpoints_crash_cause() {
    // The full §5 loop inside the runtime: an app with a poisoned-input
    // bug crashes, Crash-Pad recovers it, and diagnose() reproduces and
    // minimizes the cause from the checkpoint history.
    let topo = Topology::linear(2, 1);
    let mut net = Network::new(&topo);
    let mut rt = LegoSdnRuntime::new(LegoSdnConfig::default());
    let poison = topo.hosts[1].mac;
    let id = rt
        .attach(Box::new(FaultyApp::new(
            Box::new(Hub::new()),
            BugTrigger::OnPacketToMac(poison),
            BugEffect::Crash,
        )))
        .unwrap();
    rt.run_cycle(&mut net);
    let a = topo.hosts[0].mac;
    // Clean traffic, then the poison (recovered via Absolute policy).
    for i in 0..5u64 {
        net.inject(a, Packet::ethernet(a, MacAddr::from_index(40 + i)))
            .unwrap();
        rt.run_cycle(&mut net);
    }
    net.inject(a, Packet::ethernet(a, poison)).unwrap();
    rt.run_cycle(&mut net);
    assert!(rt.stats().failstop_recoveries >= 1);

    // Diagnose from the ticket's offending event.
    let offending = rt
        .crashpad()
        .tickets
        .iter()
        .last()
        .expect("ticket filed")
        .offending_event
        .clone();
    let diagnosis = rt
        .diagnose(id, &offending, net.now())
        .expect("reproducible");
    assert_eq!(diagnosis.minimal.len(), 1, "{:?}", diagnosis.minimal);
    assert!(matches!(&diagnosis.minimal[0], Event::PacketIn(_, pi)
        if pi.packet.eth_dst == poison));
    // The app still works after being used as a diagnosis testbed.
    net.inject(a, Packet::ethernet(a, MacAddr::from_index(70)))
        .unwrap();
    let report = rt.run_cycle(&mut net);
    assert!(report.commands > 0);
}

#[test]
fn software_diversity_voting_rejects_byzantine_minority() {
    // §3.4 "Enabling Software and Data Diversity": the byzantine version's
    // output loses the vote; no recovery machinery even engages.
    let topo = Topology::linear(2, 1);
    let mut net = Network::new(&topo);
    let mut rt = LegoSdnRuntime::new(LegoSdnConfig::default());
    let nv = NVersionApp::new(
        "diverse-ls",
        vec![
            Box::new(LearningSwitch::new()),
            Box::new(LearningSwitch::new()),
            Box::new(FaultyApp::new(
                Box::new(LearningSwitch::new()),
                BugTrigger::OnEventKind(EventKind::PacketIn),
                BugEffect::Blackhole,
            )),
        ],
    );
    rt.attach(Box::new(nv)).unwrap();
    rt.run_cycle(&mut net);
    let (a, b) = (topo.hosts[0].mac, topo.hosts[1].mac);
    net.inject(a, Packet::ethernet(a, b)).unwrap();
    let report = rt.run_cycle(&mut net);
    assert_eq!(
        report.byzantine_blocked, 0,
        "vote filtered it before the gate"
    );
    for sw in net.switches() {
        assert!(sw.table().iter().all(|e| e.priority != u16::MAX));
    }
}
